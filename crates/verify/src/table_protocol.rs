//! A table-driven protocol, used to represent enumerated candidates.

use avc_population::{Opinion, Protocol, StateId};

/// A protocol given by an explicit transition table and output map.
///
/// Used by the [`enumerate`](crate::enumerate) module to materialize every
/// candidate protocol in a family, and handy for constructing ad-hoc
/// protocols in tests.
///
/// # Example
///
/// ```
/// use avc_verify::table_protocol::TableProtocol;
/// use avc_population::{Opinion, Protocol};
///
/// // A two-state protocol where the responder adopts the initiator's state.
/// let voter = TableProtocol::new(
///     2,
///     vec![(0, 0), (0, 0), (1, 1), (1, 1)], // row-major δ
///     vec![Opinion::A, Opinion::B],
///     (0, 1),
/// );
/// assert_eq!(voter.transition(0, 1), (0, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableProtocol {
    num_states: u32,
    /// Row-major `δ`: entry `a * num_states + b` is `δ(a, b)`.
    delta: Vec<(StateId, StateId)>,
    outputs: Vec<Opinion>,
    inputs: (StateId, StateId),
    name: String,
}

impl TableProtocol {
    /// Creates a protocol from its transition table.
    ///
    /// # Panics
    ///
    /// Panics if the table dimensions are inconsistent, a transition leaves
    /// the state space, or an input state is out of range.
    #[must_use]
    pub fn new(
        num_states: u32,
        delta: Vec<(StateId, StateId)>,
        outputs: Vec<Opinion>,
        inputs: (StateId, StateId),
    ) -> TableProtocol {
        let q = num_states as usize;
        assert_eq!(delta.len(), q * q, "transition table must be {q}x{q}");
        assert_eq!(outputs.len(), q, "output map must cover {q} states");
        assert!(
            delta.iter().all(|&(x, y)| x < num_states && y < num_states),
            "transition leaves the state space"
        );
        assert!(
            inputs.0 < num_states && inputs.1 < num_states,
            "input states out of range"
        );
        TableProtocol {
            num_states,
            delta,
            outputs,
            inputs,
            name: format!("table({num_states} states)"),
        }
    }

    /// Builds a *symmetric* protocol from transitions on unordered pairs.
    ///
    /// `rule(a, b)` is consulted once per unordered pair with `a ≤ b`; both
    /// orders of the pair produce the same unordered result.
    #[must_use]
    pub fn symmetric(
        num_states: u32,
        outputs: Vec<Opinion>,
        inputs: (StateId, StateId),
        rule: impl Fn(StateId, StateId) -> (StateId, StateId),
    ) -> TableProtocol {
        let q = num_states;
        let mut delta = vec![(0, 0); (q * q) as usize];
        for a in 0..q {
            for b in a..q {
                let (x, y) = rule(a, b);
                delta[(a * q + b) as usize] = (x, y);
                delta[(b * q + a) as usize] = (y, x);
            }
        }
        TableProtocol::new(num_states, delta, outputs, inputs)
    }
}

impl Protocol for TableProtocol {
    fn num_states(&self) -> u32 {
        self.num_states
    }

    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        self.delta[(initiator * self.num_states + responder) as usize]
    }

    fn output(&self, state: StateId) -> Opinion {
        self.outputs[state as usize]
    }

    fn input(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => self.inputs.0,
            Opinion::B => self.inputs.1,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_builder_mirrors_pairs() {
        // Annihilation on unordered pairs: (0,1) -> (2,2).
        let p = TableProtocol::symmetric(
            3,
            vec![Opinion::A, Opinion::B, Opinion::A],
            (0, 1),
            |a, b| if (a, b) == (0, 1) { (2, 2) } else { (a, b) },
        );
        assert_eq!(p.transition(0, 1), (2, 2));
        assert_eq!(p.transition(1, 0), (2, 2));
        assert!(p.is_silent(0, 2));
        assert!(p.is_silent(2, 0));
    }

    #[test]
    #[should_panic(expected = "must be 2x2")]
    fn rejects_ragged_table() {
        let _ = TableProtocol::new(2, vec![(0, 0)], vec![Opinion::A, Opinion::B], (0, 1));
    }

    #[test]
    #[should_panic(expected = "leaves the state space")]
    fn rejects_out_of_range_transition() {
        let _ = TableProtocol::new(1, vec![(1, 0)], vec![Opinion::A], (0, 0));
    }

    #[test]
    fn accessors() {
        let p = TableProtocol::new(
            2,
            vec![(0, 0), (0, 1), (1, 0), (1, 1)],
            vec![Opinion::A, Opinion::B],
            (0, 1),
        );
        assert_eq!(p.num_states(), 2);
        assert_eq!(p.input(Opinion::A), 0);
        assert_eq!(p.input(Opinion::B), 1);
        assert_eq!(p.output(1), Opinion::B);
        assert!(p.name().contains("table"));
    }
}
