//! Sweep specs for the lower-bound and ablation studies.

use super::{only_row, rule_name, scenario_params, trials_of_summary};
use crate::manifest::Manifest;
use crate::record::{f64_to_hex, CellResult, TrialSummary};
use crate::sweep::{Cell, Export, Plan};
use avc_analysis::cli::Args;
use avc_analysis::experiments::{
    ablation_d, four_state_scaling, graph_gap, robustness, three_state_error,
};
use avc_analysis::harness::run_indexed_with_stats;
use avc_analysis::stats::{loglog_slope, Summary};
use avc_analysis::table::{fmt_num, Table};
use avc_population::rngutil::SeedSequence;
use avc_verify::knowledge::{cover_steps, expected_cover_steps};
use std::collections::BTreeMap;

pub(super) fn lb_four_state_plan(args: &Args) -> Plan {
    let config = four_state_scaling::Config::from_args(args);
    let mut cells = Vec::new();
    for (i, &eps) in config.epsilons.iter().enumerate() {
        let label = format!("eps={eps:e}");
        let scenario = four_state_scaling::cell_scenario(&config, i);
        let manifest = Manifest::new(
            "lb_four_state",
            [
                ("cell", label.clone()),
                ("protocol", "four_state".to_string()),
                ("engine", scenario.engine.to_string()),
                ("rule", rule_name(scenario.rule).to_string()),
                ("n", config.n.to_string()),
                ("eps", f64_to_hex(eps)),
                ("eps_text", format!("{eps:e}")),
                ("runs", config.runs.to_string()),
                ("seed", scenario.seed.to_string()),
            ]
            .into_iter()
            .chain(scenario_params(&scenario)),
        );
        let config = config.clone();
        cells.push(Cell {
            manifest,
            label,
            run: Box::new(move |stats| {
                let point = four_state_scaling::run_point(&config, i, stats);
                // Row rendering is slope-independent; use a placeholder
                // outcome to reuse the canonical table builder.
                let shell = four_state_scaling::Outcome {
                    points: vec![point.clone()],
                    slope: 0.0,
                };
                CellResult {
                    trials: Some(trials_of_summary(&point.summary)),
                    tables: BTreeMap::from([(
                        "lb_four_state".to_string(),
                        vec![only_row(&four_state_scaling::table(&shell, config.n))],
                    )]),
                    values: BTreeMap::from([("achieved_eps".to_string(), point.epsilon)]),
                    ..CellResult::default()
                }
            }),
        });
    }

    let banner = format!(
        "four-state protocol time vs margin at n = {}, {} runs per margin",
        config.n, config.runs
    );
    let export_config = config;
    Plan {
        name: "lb_four_state".to_string(),
        banner,
        cells,
        export: Box::new(move |results| {
            let points: Vec<four_state_scaling::Point> = results
                .iter()
                .filter_map(|r| {
                    Some(four_state_scaling::Point {
                        epsilon: r.value("achieved_eps")?,
                        summary: r.trials.as_ref()?.summary()?,
                    })
                })
                .collect();
            let outcome = four_state_scaling::Outcome {
                slope: four_state_scaling::fit_slope(&points),
                points,
            };
            let mut table = four_state_scaling::table(
                &four_state_scaling::Outcome {
                    points: Vec::new(),
                    slope: outcome.slope,
                },
                export_config.n,
            );
            for r in results {
                for row in r.rows("lb_four_state") {
                    table.push_row(row.clone());
                }
            }
            let trailer = format!(
                "fitted log-log slope of time vs 1/eps: {:.3} (theory: Θ(1/eps) ⇒ 1)",
                outcome.slope
            );
            Export {
                tables: vec![("lb_four_state".to_string(), table)],
                trailer: vec![trailer],
            }
        }),
    }
}

/// The inline configuration of the `lb_info` study (it has no module in
/// `avc-analysis`: the experiment is a direct harness loop over
/// [`cover_steps`]).
#[derive(Debug, Clone)]
struct LbInfoConfig {
    ns: Vec<u64>,
    runs: u64,
    seed: u64,
    parallelism: avc_analysis::harness::Parallelism,
}

impl LbInfoConfig {
    fn from_args(args: &Args) -> LbInfoConfig {
        let default_ns: Vec<u64> = if args.flag("quick") {
            vec![100, 1_000, 10_000]
        } else {
            vec![100, 1_000, 10_000, 100_000, 1_000_000]
        };
        LbInfoConfig {
            ns: args.get_u64_list("ns", &default_ns),
            runs: args.get_u64("runs", 101),
            seed: args.get_u64("seed", 12),
            parallelism: args.parallelism(),
        }
    }
}

fn lb_info_table() -> Table {
    Table::new(
        "Information-propagation lower bound: steps until |K_t| = n",
        [
            "n",
            "mean_steps",
            "expected_steps_closed_form",
            "mean_parallel_time",
            "ln_n",
            "runs",
        ],
    )
}

pub(super) fn lb_info_plan(args: &Args) -> Plan {
    let config = LbInfoConfig::from_args(args);
    let mut cells = Vec::new();
    for (i, &n) in config.ns.iter().enumerate() {
        let label = format!("n={n}");
        let manifest = Manifest::new(
            "lb_info",
            [
                ("cell", label.clone()),
                ("kind", "knowledge_cover".to_string()),
                ("n", n.to_string()),
                ("runs", config.runs.to_string()),
                ("seed", config.seed.to_string()),
                ("seed_child", i.to_string()),
            ],
        );
        let config = config.clone();
        cells.push(Cell {
            manifest,
            label,
            run: Box::new(move |stats| {
                let cell_seeds = SeedSequence::new(config.seed).child(i as u64);
                let (samples, batch) =
                    run_indexed_with_stats(config.runs, config.parallelism, |t| {
                        let mut rng = cell_seeds.rng_for(t);
                        let steps = cover_steps(n, &mut rng);
                        (steps as f64, steps)
                    });
                stats.record(&batch);
                let summary = Summary::from_samples(&samples);
                let parallel = summary.mean / n as f64;
                let row = vec![
                    n.to_string(),
                    fmt_num(summary.mean),
                    fmt_num(expected_cover_steps(n)),
                    fmt_num(parallel),
                    fmt_num((n as f64).ln()),
                    config.runs.to_string(),
                ];
                CellResult {
                    trials: Some(trials_of_summary(&summary)),
                    tables: BTreeMap::from([("lb_info".to_string(), vec![row])]),
                    ..CellResult::default()
                }
            }),
        });
    }

    let banner = format!(
        "knowledge-set cover time, n in {:?}, {} runs per n",
        config.ns, config.runs
    );
    let export_config = config;
    Plan {
        name: "lb_info".to_string(),
        banner,
        cells,
        export: Box::new(move |results| {
            let mut table = lb_info_table();
            let mut lns = Vec::new();
            let mut times = Vec::new();
            for (i, r) in results.iter().enumerate() {
                for row in r.rows("lb_info") {
                    table.push_row(row.clone());
                }
                if let Some(summary) = r.trials.as_ref().and_then(|t| t.summary()) {
                    let n = export_config.ns[i] as f64;
                    lns.push(n.ln());
                    times.push(summary.mean / n);
                }
            }
            let slope = loglog_slope(&lns, &times);
            let trailer = format!(
                "log-log slope of parallel cover time vs ln n: {slope:.3} (theory: linear in ln n ⇒ 1)"
            );
            Export {
                tables: vec![("lb_info".to_string(), table)],
                trailer: vec![trailer],
            }
        }),
    }
}

pub(super) fn err_three_state_plan(args: &Args) -> Plan {
    let config = three_state_error::Config::from_args(args);
    let mut cells = Vec::new();
    for (ni, &n) in config.ns.iter().enumerate() {
        for (ei, &eps) in config.epsilons.iter().enumerate() {
            let label = format!("n={n}/eps={eps}");
            let scenario = three_state_error::cell_scenario(&config, ni, ei);
            let manifest = Manifest::new(
                "err_three_state",
                [
                    ("cell", label.clone()),
                    ("protocol", "three_state".to_string()),
                    ("engine", scenario.engine.to_string()),
                    ("rule", rule_name(scenario.rule).to_string()),
                    ("n", n.to_string()),
                    ("eps", f64_to_hex(eps)),
                    ("eps_text", format!("{eps}")),
                    ("runs", config.runs.to_string()),
                    ("seed", scenario.seed.to_string()),
                ]
                .into_iter()
                .chain(scenario_params(&scenario)),
            );
            let config = config.clone();
            cells.push(Cell {
                manifest,
                label,
                run: Box::new(move |stats| {
                    let point = three_state_error::run_point(&config, ni, ei, stats);
                    CellResult {
                        tables: BTreeMap::from([(
                            "err_three_state".to_string(),
                            vec![only_row(&three_state_error::table(std::slice::from_ref(
                                &point,
                            )))],
                        )]),
                        values: BTreeMap::from([
                            ("error_fraction".to_string(), point.error_fraction),
                            ("kl_bound".to_string(), point.kl_bound),
                        ]),
                        ..CellResult::default()
                    }
                }),
            });
        }
    }

    let banner = format!(
        "error fraction vs KL bound, n in {:?}, {} runs per point",
        config.ns, config.runs
    );
    Plan {
        name: "err_three_state".to_string(),
        banner,
        cells,
        export: Box::new(|results| {
            let mut table = three_state_error::table(&[]);
            for r in results {
                for row in r.rows("err_three_state") {
                    table.push_row(row.clone());
                }
            }
            Export {
                tables: vec![("err_three_state".to_string(), table)],
                trailer: vec![],
            }
        }),
    }
}

pub(super) fn ablation_d_plan(args: &Args) -> Plan {
    let config = ablation_d::Config::from_args(args);
    let mut cells = Vec::new();
    for (i, &d) in config.ds.iter().enumerate() {
        let label = format!("d={d}");
        let scenario = ablation_d::cell_scenario(&config, i);
        let manifest = Manifest::new(
            "ablation_d",
            [
                ("cell", label.clone()),
                ("protocol", "avc".to_string()),
                ("engine", scenario.engine.to_string()),
                ("rule", rule_name(scenario.rule).to_string()),
                ("n", config.n.to_string()),
                ("budget", config.state_budget.to_string()),
                ("d", d.to_string()),
                ("runs", config.runs.to_string()),
                ("seed", scenario.seed.to_string()),
            ]
            .into_iter()
            .chain(scenario_params(&scenario)),
        );
        let config = config.clone();
        cells.push(Cell {
            manifest,
            label,
            run: Box::new(move |stats| {
                let point = ablation_d::run_point(&config, i, stats);
                CellResult {
                    trials: Some(trials_of_summary(&point.summary)),
                    tables: BTreeMap::from([(
                        "ablation_d".to_string(),
                        vec![only_row(&ablation_d::table(
                            std::slice::from_ref(&point),
                            &config,
                        ))],
                    )]),
                    ..CellResult::default()
                }
            }),
        });
    }

    let banner = format!(
        "AVC with budget {} states split across d in {:?}, n = {}",
        config.state_budget, config.ds, config.n
    );
    let export_config = config;
    Plan {
        name: "ablation_d".to_string(),
        banner,
        cells,
        export: Box::new(move |results| {
            let mut table = ablation_d::table(&[], &export_config);
            for r in results {
                for row in r.rows("ablation_d") {
                    table.push_row(row.clone());
                }
            }
            Export {
                tables: vec![("ablation_d".to_string(), table)],
                trailer: vec![],
            }
        }),
    }
}

pub(super) fn graph_gap_plan(args: &Args) -> Plan {
    let config = graph_gap::Config::from_args(args);
    let mut cells = Vec::new();
    let topology_labels: Vec<String> = graph_gap::topologies(config.n, config.seed)
        .into_iter()
        .map(|(label, _)| label)
        .collect();
    for (gi, topology) in topology_labels.iter().enumerate() {
        let label = format!("graph={topology}");
        let manifest = Manifest::new(
            "graph_gap",
            [
                ("cell", label.clone()),
                ("protocol", "four_state".to_string()),
                ("engine", "agent".to_string()),
                ("topology", topology.clone()),
                ("topology_index", gi.to_string()),
                ("n", config.n.to_string()),
                ("eps", f64_to_hex(config.epsilon)),
                ("eps_text", format!("{}", config.epsilon)),
                ("runs", config.runs.to_string()),
                ("seed", config.seed.to_string()),
                ("max_steps", config.max_steps.to_string()),
            ],
        );
        let config = config.clone();
        cells.push(Cell {
            manifest,
            label,
            run: Box::new(move |stats| {
                let point = graph_gap::run_point(&config, gi, stats);
                CellResult {
                    trials: point.summary.as_ref().map(trials_of_summary),
                    tables: BTreeMap::from([(
                        "graph_gap".to_string(),
                        vec![only_row(&graph_gap::table(
                            std::slice::from_ref(&point),
                            &config,
                        ))],
                    )]),
                    values: BTreeMap::from([
                        ("spectral_gap".to_string(), point.gap),
                        ("timeouts".to_string(), point.timeouts as f64),
                    ]),
                    ..CellResult::default()
                }
            }),
        });
    }

    let banner = format!(
        "four-state protocol across topologies, n ≈ {}, eps = {}, {} runs",
        config.n, config.epsilon, config.runs
    );
    let export_config = config;
    Plan {
        name: "graph_gap".to_string(),
        banner,
        cells,
        export: Box::new(move |results| {
            let mut table = graph_gap::table(&[], &export_config);
            for r in results {
                for row in r.rows("graph_gap") {
                    table.push_row(row.clone());
                }
            }
            Export {
                tables: vec![("graph_gap".to_string(), table)],
                trailer: vec![],
            }
        }),
    }
}

pub(super) fn robustness_plan(args: &Args) -> Plan {
    let config = robustness::Config::from_args(args);
    let scenarios = robustness::scenarios(config.n);
    let mut cells = Vec::new();
    for (pi, protocol) in robustness::PROTOCOLS.iter().enumerate() {
        for (si, scenario) in scenarios.iter().enumerate() {
            let label = format!("{protocol}/{}", scenario.label);
            let run_scenario = robustness::cell_scenario(&config, pi, si);
            // The scheduler and fault configuration are part of the
            // manifest (via the canonical scenario JSON and its own
            // spec strings): a changed adversary is a different cell,
            // never a stale checkpoint hit.
            let manifest = Manifest::new(
                "robustness",
                [
                    ("cell", label.clone()),
                    ("protocol", (*protocol).to_string()),
                    ("engine", run_scenario.engine.to_string()),
                    ("scenario_label", scenario.label.clone()),
                    ("scheduler", scenario.scheduler_spec()),
                    ("faults", scenario.fault_spec()),
                    ("n", config.n.to_string()),
                    ("eps", f64_to_hex(config.epsilon)),
                    ("eps_text", format!("{}", config.epsilon)),
                    ("runs", config.runs.to_string()),
                    ("seed", config.seed.to_string()),
                    ("max_steps", config.max_steps.to_string()),
                ]
                .into_iter()
                .chain(scenario_params(&run_scenario)),
            );
            let config = config.clone();
            cells.push(Cell {
                manifest,
                label,
                run: Box::new(move |stats| {
                    let point = robustness::run_point(&config, pi, si, stats);
                    CellResult {
                        trials: point.summary.as_ref().map(trials_of_summary),
                        tables: BTreeMap::from([(
                            "robustness".to_string(),
                            vec![only_row(&robustness::table(
                                std::slice::from_ref(&point),
                                &config,
                            ))],
                        )]),
                        values: BTreeMap::from([
                            ("wrong_fraction".to_string(), point.wrong_fraction),
                            ("timeouts".to_string(), point.timeouts as f64),
                        ]),
                        ..CellResult::default()
                    }
                }),
            });
        }
    }

    let banner = format!(
        "AVC and four-state under adversarial schedulers and faults, n = {}, eps = {}, {} runs",
        config.n, config.epsilon, config.runs
    );
    let export_config = config;
    Plan {
        name: "robustness".to_string(),
        banner,
        cells,
        export: Box::new(move |results| {
            let mut table = robustness::table(&[], &export_config);
            for r in results {
                for row in r.rows("robustness") {
                    table.push_row(row.clone());
                }
            }
            // Slowdown factors vs each protocol's uniform baseline, from
            // the checkpointed trial means (cells are in protocol-major,
            // scenario-minor order).
            let num_scenarios = robustness::scenarios(export_config.n).len();
            let mut trailer = vec!["slowdown vs uniform (mean parallel time):".to_string()];
            for (pi, protocol) in robustness::PROTOCOLS.iter().enumerate() {
                let mean_of = |i: usize| {
                    results
                        .get(pi * num_scenarios + i)
                        .and_then(|r| r.trials.as_ref())
                        .and_then(TrialSummary::summary)
                        .map(|s| s.mean)
                };
                let Some(base) = mean_of(0) else { continue };
                for (si, scenario) in robustness::scenarios(export_config.n)
                    .iter()
                    .enumerate()
                    .skip(1)
                {
                    let factor = match mean_of(si) {
                        Some(mean) => format!("{:.2}x", mean / base),
                        None => "stalled (all runs timed out)".to_string(),
                    };
                    trailer.push(format!("  {protocol:11} {:17} {factor}", scenario.label));
                }
            }
            Export {
                tables: vec![("robustness".to_string(), table)],
                trailer: vec![trailer.join("\n")],
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use crate::specs::trials_of;

    #[test]
    fn trials_of_matches_results() {
        use avc_analysis::harness::{run_trials, EngineKind, TrialPlan};
        use avc_population::{ConvergenceRule, MajorityInstance};
        use avc_protocols::FourState;
        let plan = TrialPlan::new(MajorityInstance::one_extra(101))
            .runs(5)
            .seed(3);
        let results = run_trials(
            &FourState,
            &plan,
            EngineKind::Jump,
            ConvergenceRule::OutputConsensus,
        );
        let trials = trials_of(&results);
        assert_eq!(trials.total_runs, 5);
        assert_eq!(trials.error_fraction, 0.0);
        assert_eq!(trials.summary().unwrap(), results.summary());
    }
}
