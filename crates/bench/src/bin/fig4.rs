//! Regenerates **Figure 4**: AVC convergence time vs `ε` and `s`, plus the
//! `s·ε` collapse.
//!
//! Alias for `avc sweep fig4` followed by `avc export fig4`: same flags
//! (`--quick --runs --seed --n --states --serial/--threads --progress
//! --out`), same CSVs, plus checkpoint/resume through the result store.

fn main() {
    avc_store::cli::legacy("fig4");
}
