//! Property-based tests (proptest) over the core invariants:
//! Invariant 4.3, state-space closure, codec round-trips, engine-side count
//! conservation, and sampler correctness.

use avc::population::engine::{CountSim, JumpSim, Simulator};
use avc::population::sampler::FenwickSampler;
use avc::population::{Config, Opinion, Protocol};
use avc::protocols::{Avc, FourState, ThreeState};
use proptest::prelude::*;

/// Arbitrary valid AVC parameters: odd `m` in 1..=41, `d` in 1..=5.
fn avc_params() -> impl Strategy<Value = (u64, u32)> {
    (0u64..=20, 1u32..=5).prop_map(|(half, d)| (2 * half + 1, d))
}

proptest! {
    /// Invariant 4.3 holds for every single transition, for arbitrary
    /// parameters and state pairs.
    #[test]
    fn avc_value_sum_invariant((m, d) in avc_params(), a_seed in any::<u32>(), b_seed in any::<u32>()) {
        let avc = Avc::new(m, d).expect("valid parameters");
        let s = avc.num_states();
        let a = a_seed % s;
        let b = b_seed % s;
        let (x, y) = avc.transition(a, b);
        prop_assert!(x < s && y < s, "closure violated");
        prop_assert_eq!(
            avc.value_of(a) + avc.value_of(b),
            avc.value_of(x) + avc.value_of(y)
        );
    }

    /// Weights never leave `[0, m]` and levels never leave `[1, d]` —
    /// i.e. decode of any transition output is structurally valid (decode
    /// panics otherwise).
    #[test]
    fn avc_outputs_decode((m, d) in avc_params(), a_seed in any::<u32>(), b_seed in any::<u32>()) {
        let avc = Avc::new(m, d).expect("valid parameters");
        let s = avc.num_states();
        let (x, y) = avc.transition(a_seed % s, b_seed % s);
        let _ = avc.decode(x);
        let _ = avc.decode(y);
    }

    /// Encode/decode is a bijection on the full index range.
    #[test]
    fn avc_codec_roundtrip((m, d) in avc_params()) {
        let avc = Avc::new(m, d).expect("valid parameters");
        for id in 0..avc.num_states() {
            prop_assert_eq!(avc.encode(avc.decode(id)), id);
        }
    }

    /// Along random trajectories, the total value is conserved, and so is
    /// the population (checked through the engine's counts).
    #[test]
    fn avc_trajectory_conserves_value(
        (m, d) in avc_params(),
        a in 1u64..30,
        b in 1u64..30,
        seed in any::<u64>(),
        steps in 1u64..400,
    ) {
        use rand::SeedableRng;
        let avc = Avc::new(m, d).expect("valid parameters");
        let initial = Config::from_input(&avc, a, b);
        let expected = avc.total_value(initial.as_slice());
        let mut sim = CountSim::new(avc.clone(), initial);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..steps {
            sim.advance(&mut rng);
        }
        prop_assert_eq!(avc.total_value(sim.counts()), expected);
        prop_assert_eq!(sim.counts().iter().sum::<u64>(), a + b);
    }

    /// The jump engine conserves the same quantities while skipping steps.
    #[test]
    fn avc_jump_trajectory_conserves_value(
        (m, d) in avc_params(),
        a in 1u64..30,
        b in 1u64..30,
        seed in any::<u64>(),
        events in 1u64..100,
    ) {
        use rand::SeedableRng;
        let avc = Avc::new(m, d).expect("valid parameters");
        let initial = Config::from_input(&avc, a, b);
        let expected = avc.total_value(initial.as_slice());
        let mut sim = JumpSim::new(avc.clone(), initial);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..events {
            if sim.advance(&mut rng) == 0 {
                break;
            }
        }
        prop_assert_eq!(avc.total_value(sim.counts()), expected);
        prop_assert_eq!(sim.counts().iter().sum::<u64>(), a + b);
    }

    /// The four-state protocol preserves the strong-count difference — its
    /// own exactness invariant.
    #[test]
    fn four_state_strong_difference_invariant(a_seed in 0u32..4, b_seed in 0u32..4) {
        let p = FourState;
        let (x, y) = p.transition(a_seed, b_seed);
        prop_assert_eq!(
            p.value_of(a_seed) + p.value_of(b_seed),
            p.value_of(x) + p.value_of(y)
        );
    }

    /// The three-state initiator is never modified by an interaction.
    #[test]
    fn three_state_initiator_untouched(a in 0u32..3, b in 0u32..3) {
        let p = ThreeState::new();
        let (x, _) = p.transition(a, b);
        prop_assert_eq!(x, a);
    }

    /// Fenwick sampler matches a naive prefix-sum oracle under arbitrary
    /// weight updates.
    #[test]
    fn fenwick_matches_naive_oracle(
        initial in proptest::collection::vec(0u64..50, 1..40),
        updates in proptest::collection::vec((0usize..40, -20i64..20), 0..60),
    ) {
        let mut naive = initial.clone();
        let mut sampler = FenwickSampler::from_weights(&initial);
        for (idx, delta) in updates {
            let idx = idx % naive.len();
            let delta = delta.max(-(naive[idx] as i64));
            naive[idx] = (naive[idx] as i64 + delta) as u64;
            sampler.add(idx, delta);
        }
        let total: u64 = naive.iter().sum();
        prop_assert_eq!(sampler.total(), total);
        for (i, &w) in naive.iter().enumerate() {
            prop_assert_eq!(sampler.weight(i), w);
        }
        // Every cumulative boundary selects the right category.
        let mut acc = 0u64;
        for (i, &w) in naive.iter().enumerate() {
            if w > 0 {
                prop_assert_eq!(sampler.select(acc), i);
                prop_assert_eq!(sampler.select(acc + w - 1), i);
            }
            acc += w;
        }
    }

    /// AVC's output map is sign-consistent: positive value ⇒ A, negative ⇒
    /// B, and weak states follow their stored sign.
    #[test]
    fn avc_output_follows_sign((m, d) in avc_params()) {
        let avc = Avc::new(m, d).expect("valid parameters");
        for id in 0..avc.num_states() {
            let value = avc.value_of(id);
            let out = avc.output(id);
            if value > 0 {
                prop_assert_eq!(out, Opinion::A);
            } else if value < 0 {
                prop_assert_eq!(out, Opinion::B);
            }
        }
    }
}
