//! Run telemetry: the engines' [`Sink`] seam and a driver-level
//! [`Observer`] that measures chunk latency and
//! convergence.
//!
//! The metric substrate lives in the dependency-free `avc-telemetry` crate
//! and is re-exported here wholesale, so downstream code can write
//! `avc_population::telemetry::CountingSink` without a second dependency.
//! This module adds the one piece that needs driver types:
//! [`TelemetryObserver`], which plugs into [`Driver`](crate::driver::Driver)
//! runs and records per-chunk wall latency (nondeterministic, kept in the
//! `wall` registry) alongside per-chunk step sizes and convergence outcomes
//! (deterministic, kept in `sim` — see the `avc_telemetry` crate docs for
//! the split).

pub use avc_telemetry::*;

pub use cell::keys;

use crate::driver::{DriverEvent, Observer, SimView};
use crate::engine::AdvanceReport;

/// An [`Observer`] that turns driver progress into telemetry.
///
/// Records, per run:
/// * `sim.chunk_steps` — distribution of chunk step counts;
/// * `sim.convergence_steps` / `sim.trials` / `sim.trials_converged` —
///   convergence outcomes from [`DriverEvent::Finished`];
/// * `sim.faults` — [`DriverEvent::Fault`] injections;
/// * `wall.chunk_ns` — wall-clock latency between consecutive chunk
///   boundaries.
///
/// The observer draws no randomness and never touches the engine, so
/// attaching it leaves trajectories bit-identical. One observer can span
/// many runs; counts accumulate.
///
/// # Example
///
/// ```
/// use avc_population::driver::Driver;
/// use avc_population::engine::CountSim;
/// use avc_population::protocol::tests_support::Voter;
/// use avc_population::telemetry::TelemetryObserver;
/// use avc_population::{Config, ConvergenceRule};
/// use rand::SeedableRng;
///
/// let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 30, 20));
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let mut obs = TelemetryObserver::new();
/// Driver::new(ConvergenceRule::OutputConsensus).run(&mut sim, &mut rng, &mut obs);
/// let cell = obs.into_cell_telemetry();
/// assert_eq!(cell.sim.counter("sim.trials"), Some(1));
/// ```
#[derive(Debug, Default)]
pub struct TelemetryObserver {
    cadence: Option<u64>,
    chunk_steps: HistogramSnapshot,
    chunk_ns: HistogramSnapshot,
    convergence_steps: HistogramSnapshot,
    trials: u64,
    converged: u64,
    faults: u64,
    last_boundary: Option<Span>,
}

impl TelemetryObserver {
    /// An observer with no sampling cadence: chunks are bounded only by
    /// rule checkpoints, so the chunk histograms reflect the driver's
    /// natural chunking.
    #[must_use]
    pub fn new() -> TelemetryObserver {
        TelemetryObserver::default()
    }

    /// Requests a sampling cadence of `steps`, bounding every chunk at the
    /// next multiple (finer-grained latency histograms, more callbacks).
    #[must_use]
    pub fn with_cadence(mut self, steps: u64) -> TelemetryObserver {
        self.cadence = Some(steps);
        self
    }

    /// Runs observed so far.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The deterministic half of the recorded telemetry.
    #[must_use]
    pub fn sim_snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::new();
        snap.set(
            "sim.chunk_steps",
            MetricValue::Histogram(self.chunk_steps.clone()),
        );
        snap.set(
            keys::SIM_CONVERGENCE_STEPS,
            MetricValue::Histogram(self.convergence_steps.clone()),
        );
        snap.set(keys::SIM_TRIALS, MetricValue::Counter(self.trials));
        snap.set(
            keys::SIM_TRIALS_CONVERGED,
            MetricValue::Counter(self.converged),
        );
        snap.set("sim.faults", MetricValue::Counter(self.faults));
        snap
    }

    /// The wall-clock half of the recorded telemetry.
    #[must_use]
    pub fn wall_snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::new();
        snap.set(
            keys::WALL_CHUNK_NS,
            MetricValue::Histogram(self.chunk_ns.clone()),
        );
        snap
    }

    /// Packages both halves as a [`CellTelemetry`].
    #[must_use]
    pub fn into_cell_telemetry(self) -> CellTelemetry {
        CellTelemetry {
            sim: self.sim_snapshot(),
            wall: self.wall_snapshot(),
        }
    }
}

impl Observer for TelemetryObserver {
    fn cadence(&self) -> Option<u64> {
        self.cadence
    }

    fn on_chunk(&mut self, _view: &SimView<'_>, report: &AdvanceReport) {
        self.chunk_steps.record(report.steps);
        if let Some(span) = self.last_boundary {
            span.record_into(&mut self.chunk_ns);
        }
        self.last_boundary = Some(Span::start());
    }

    fn on_event(&mut self, view: &SimView<'_>, event: &DriverEvent) {
        match event {
            DriverEvent::Started => {
                self.last_boundary = Some(Span::start());
            }
            DriverEvent::Finished(verdict) => {
                self.trials += 1;
                if verdict.is_consensus() {
                    self.converged += 1;
                    self.convergence_steps.record(view.steps);
                }
                self.last_boundary = None;
            }
            DriverEvent::Fault(_) => {
                self.faults += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::driver::Driver;
    use crate::engine::{CountSim, Simulator};
    use crate::protocol::tests_support::Voter;
    use crate::spec::ConvergenceRule;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn observer_records_chunks_and_convergence() {
        let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 25, 15));
        let mut rng = SmallRng::seed_from_u64(2);
        let mut obs = TelemetryObserver::new().with_cadence(16);
        let out = Driver::new(ConvergenceRule::OutputConsensus).run(&mut sim, &mut rng, &mut obs);
        assert!(out.verdict.is_consensus());
        assert_eq!(obs.trials(), 1);
        let cell = obs.into_cell_telemetry();
        assert_eq!(cell.sim.counter("sim.trials_converged"), Some(1));
        let conv = cell.sim.histogram("sim.convergence_steps").unwrap();
        assert_eq!(conv.count, 1);
        assert_eq!(conv.sum, out.steps);
        let chunks = cell.sim.histogram("sim.chunk_steps").unwrap();
        assert_eq!(chunks.sum, out.steps);
        // Wall latencies were recorded for every chunk boundary pair.
        let ns = cell.wall.histogram("wall.chunk_ns").unwrap();
        assert_eq!(ns.count, chunks.count);
    }

    #[test]
    fn observer_is_rng_invisible() {
        let mk = || CountSim::new(Voter, Config::from_input(&Voter, 25, 15));
        let driver = Driver::new(ConvergenceRule::OutputConsensus);
        let (mut a, mut b) = (mk(), mk());
        let mut rng_a = SmallRng::seed_from_u64(3);
        let mut rng_b = SmallRng::seed_from_u64(3);
        let out_a = driver.run(&mut a, &mut rng_a, &mut crate::driver::NullObserver);
        let mut obs = TelemetryObserver::new().with_cadence(7);
        let out_b = driver.run(&mut b, &mut rng_b, &mut obs);
        assert_eq!(out_a, out_b);
        assert_eq!(a.counts(), b.counts());
    }
}
