//! End-to-end suite for the rival exact-majority protocols (BEF and
//! DEGSSU): exhaustive small-`n` model checks of the three exact-majority
//! properties, margin-1 exactness pins on every applicable engine,
//! RNG-stream determinism of the scenario harness, and the declarative
//! scenario strings the comparison grids are written in.

use avc::analysis::harness::ScenarioPlan;
use avc::population::spec::Verdict;
use avc::population::{EngineKind, MajorityInstance, ProtocolSpec, Scenario};
use avc::protocols::{Bef, Degssu};
use avc::verify::reach::check_exact_majority;

/// Exhaustive reachability check of Theorem B.1's three properties
/// (correct absorbing configuration reachable, wrong consensus never
/// stable, correctness always recoverable) for every split of every tiny
/// population — the strongest exactness statement short of a proof, and
/// scheduler-independent by construction.
fn assert_exhaustively_exact<P: avc::population::Protocol>(protocol: &P, label: &str) {
    for n in 1..=6u64 {
        for a in 0..=n {
            let verdict = check_exact_majority(protocol, a, n - a, 5_000_000)
                .unwrap_or_else(|e| panic!("{label} n={n} a={a}: state space too large: {e:?}"));
            assert!(
                verdict.is_correct(),
                "{label} fails exact majority at n={n}, a={a}: {verdict:?}"
            );
        }
    }
}

#[test]
fn bef_is_exhaustively_exact_on_small_populations() {
    let bef = Bef::new(2).expect("valid parameters");
    assert_exhaustively_exact(&bef, "bef(l=2)");
}

#[test]
fn degssu_is_exhaustively_exact_on_small_populations() {
    let degssu = Degssu::new(2, 1).expect("valid parameters");
    assert_exhaustively_exact(&degssu, "degssu(l=2,t=1)");
}

/// Builds the margin-1 scenario the engine matrix below runs.
fn margin1_scenario(protocol: ProtocolSpec, engine: EngineKind, seed: u64) -> Scenario {
    Scenario::new(protocol, MajorityInstance::one_extra(101))
        .engine(engine)
        .runs(7)
        .seed(seed)
        .max_steps(50_000_000)
}

/// Every run must converge to the true majority (A, since `a = b + 1`).
fn assert_all_correct(scenario: &Scenario, label: &str) {
    let results = ScenarioPlan::new(scenario.clone()).run();
    for outcome in results.outcomes() {
        assert_eq!(
            outcome.verdict,
            Verdict::Consensus(avc::population::Opinion::A),
            "{label}: {outcome:?}"
        );
    }
    assert_eq!(results.outcomes().len(), 7, "{label}");
}

/// Both rivals decide margin-1 majority correctly on every exact engine —
/// the count-space engines (with their dense cached transition tables at
/// these state counts), the jump chain, the per-agent engine, and the
/// adaptive/auto selectors. Tau-leaping is excluded: it is the one
/// deliberately approximate engine.
#[test]
fn rivals_converge_exactly_on_every_exact_engine() {
    let engines = [
        EngineKind::Auto,
        EngineKind::Count,
        EngineKind::Jump,
        EngineKind::Agent,
        EngineKind::Adaptive,
    ];
    for engine in engines {
        let bef = margin1_scenario(ProtocolSpec::Bef { levels: 7 }, engine, 71);
        assert_all_correct(&bef, &format!("bef on {engine}"));
        let degssu = margin1_scenario(
            ProtocolSpec::Degssu {
                levels: 7,
                phase: 3,
            },
            engine,
            72,
        );
        assert_all_correct(&degssu, &format!("degssu on {engine}"));
    }
}

/// The scenario harness is RNG-stream deterministic for the rivals: the
/// same scenario replayed twice yields identical verdicts and identical
/// step counts, run by run.
#[test]
fn rival_scenarios_replay_deterministically() {
    for protocol in [
        ProtocolSpec::Bef { levels: 6 },
        ProtocolSpec::Degssu {
            levels: 6,
            phase: 4,
        },
    ] {
        let scenario = margin1_scenario(protocol, EngineKind::Auto, 1234);
        let first = ScenarioPlan::new(scenario.clone()).run();
        let second = ScenarioPlan::new(scenario).run();
        assert_eq!(first.outcomes(), second.outcomes(), "{protocol}");
    }
}

/// The grid files drive the rivals purely through scenario strings; pin
/// the full declarative path — JSON text through `Scenario::parse`,
/// `build_erased`, and an adversarial scheduler on the agent engine — for
/// both protocols.
#[test]
fn rival_scenario_strings_run_under_adversarial_schedulers() {
    for (protocol, seed) in [("bef(l=5)", 51), ("degssu(l=5,t=2)", 52)] {
        let text = format!(
            r#"{{"schema": 1, "protocol": "{protocol}",
                "instance": {{"a": 26, "b": 25}},
                "engine": "agent",
                "scheduler": "biased(hot=6,bias=0.8)",
                "rule": "output_consensus",
                "max_steps": 10000000, "runs": 5, "seed": {seed}}}"#
        );
        let scenario = Scenario::parse(&text).expect("scenario string parses");
        let results = ScenarioPlan::new(scenario).run();
        for outcome in results.outcomes() {
            assert_eq!(
                outcome.verdict,
                Verdict::Consensus(avc::population::Opinion::A),
                "{protocol}: {outcome:?}"
            );
        }
    }
}

/// The state-count seam the sweep accounting relies on: the spec-level
/// formula, the harness resolution, and the concrete protocols agree.
#[test]
fn rival_state_counts_agree_across_the_seam() {
    use avc::population::Protocol;
    let bef = Bef::new(9).expect("valid parameters");
    let spec = ProtocolSpec::Bef { levels: 9 };
    assert_eq!(u64::from(bef.num_states()), spec.state_count());
    assert_eq!(avc::analysis::harness::spec_states(spec), bef.num_states());

    let degssu = Degssu::new(9, 4).expect("valid parameters");
    let spec = ProtocolSpec::Degssu {
        levels: 9,
        phase: 4,
    };
    assert_eq!(u64::from(degssu.num_states()), spec.state_count());
    assert_eq!(
        avc::analysis::harness::spec_states(spec),
        degssu.num_states()
    );
}
