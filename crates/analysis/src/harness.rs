//! Seeded multi-trial experiment runners.
//!
//! # Parallel determinism
//!
//! Batches run under a [`Parallelism`] knob (`Serial | Threads(n) | Auto`).
//! Every trial draws its RNG from its own [`SeedSequence`] stream, keyed by
//! the trial index alone, so a trial's outcome does not depend on which
//! worker ran it or in what order. Workers pull indices from a shared atomic
//! counter and results are scattered back by index, making the full
//! [`TrialResults`] — and therefore every [`Summary`] derived from it —
//! **bit-identical to a serial run for any worker count and any
//! scheduling**. `tests/parallel_determinism.rs` enforces this.

use crate::stats::{fraction, Summary};
use avc_population::cached::Cached;
use avc_population::driver::{Driver, NullObserver, Observer};
use avc_population::engine::ChunkedSimulator;
use avc_population::faults::{FaultEvent, FaultPlan};
use avc_population::rngutil::SeedSequence;
use avc_population::scenario::{build_erased, build_erased_with_sink};
use avc_population::spec::RunOutcome;
use avc_population::telemetry::{
    keys, CellTelemetry, CountingSink, HistogramSnapshot, MetricValue, Span, TelemetryObserver,
};
use avc_population::{
    Config, ConvergenceRule, MajorityInstance, Opinion, Protocol, ProtocolSpec, Scenario,
    SchedulerSpec,
};
use avc_protocols::{Avc, Bef, Degssu, FourState, ThreeState, Voter};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How to spread a batch of trials across OS threads.
///
/// Regardless of the choice, trial `i` always consumes seed stream `i`, so
/// the knob changes wall-clock time only — never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Run every trial on the calling thread.
    Serial,
    /// Shard across exactly `n` worker threads (`n ≥ 1`).
    Threads(usize),
    /// Shard across [`std::thread::available_parallelism`] workers.
    #[default]
    Auto,
}

impl Parallelism {
    /// The number of workers this setting resolves to on this machine.
    ///
    /// # Panics
    ///
    /// Panics on `Threads(0)`.
    #[must_use]
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => {
                assert!(n >= 1, "Threads(0) would have no workers");
                n
            }
            Parallelism::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// Throughput telemetry for one or more trial batches.
///
/// Wall-clock only — parallel workers race, so none of these numbers feed
/// back into results. Batches accumulate with [`BatchStats::absorb`].
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Trials completed.
    pub trials: u64,
    /// Scheduler events (interaction steps, including skipped null steps)
    /// simulated across all trials.
    pub events: u64,
    /// Wall-clock time, summed over batches.
    pub wall: Duration,
    /// Trials completed by each worker (indexed by worker).
    pub worker_trials: Vec<u64>,
    /// Events simulated by each worker.
    pub worker_events: Vec<u64>,
    /// Busy time of each worker (its loop duration, not the batch wall).
    pub worker_busy: Vec<Duration>,
}

impl BatchStats {
    /// Events simulated per wall-clock second (0 if no time elapsed).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }

    /// Per-worker utilization: busy time as a fraction of the wall clock.
    #[must_use]
    pub fn utilization(&self) -> Vec<f64> {
        let secs = self.wall.as_secs_f64();
        self.worker_busy
            .iter()
            .map(|b| {
                if secs > 0.0 {
                    b.as_secs_f64() / secs
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Accumulates another batch into this one (summing per-worker vectors
    /// element-wise, extending if the other batch used more workers).
    pub fn absorb(&mut self, other: &BatchStats) {
        self.trials += other.trials;
        self.events += other.events;
        self.wall += other.wall;
        grow_to(&mut self.worker_trials, other.worker_trials.len(), 0);
        grow_to(&mut self.worker_events, other.worker_events.len(), 0);
        grow_to(
            &mut self.worker_busy,
            other.worker_busy.len(),
            Duration::ZERO,
        );
        for (mine, theirs) in self.worker_trials.iter_mut().zip(&other.worker_trials) {
            *mine += theirs;
        }
        for (mine, theirs) in self.worker_events.iter_mut().zip(&other.worker_events) {
            *mine += theirs;
        }
        for (mine, theirs) in self.worker_busy.iter_mut().zip(&other.worker_busy) {
            *mine += *theirs;
        }
    }
}

fn grow_to<T: Clone>(v: &mut Vec<T>, len: usize, fill: T) {
    if v.len() < len {
        v.resize(len, fill);
    }
}

impl fmt::Display for BatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trials, {} events in {:.2?} ({:.3e} events/s)",
            self.trials,
            self.events,
            self.wall,
            self.events_per_sec()
        )?;
        if self.worker_busy.len() > 1 {
            write!(f, "; worker utilization")?;
            for u in self.utilization() {
                write!(f, " {:.0}%", u * 100.0)?;
            }
        }
        Ok(())
    }
}

/// A thread-safe accumulator of [`BatchStats`] across experiment cells —
/// the observability hook the CLI binaries print.
///
/// With [`StatsCollector::verbose`], each recorded batch also emits a
/// progress line to stderr (trials completed so far and the running event
/// rate), which is cheap enough to leave on for long sweeps.
#[derive(Debug, Default)]
pub struct StatsCollector {
    totals: Mutex<BatchStats>,
    verbose: bool,
}

impl StatsCollector {
    /// A quiet collector.
    #[must_use]
    pub fn new() -> StatsCollector {
        StatsCollector::default()
    }

    /// A collector that prints a progress line per recorded batch.
    #[must_use]
    pub fn verbose() -> StatsCollector {
        StatsCollector {
            totals: Mutex::new(BatchStats::default()),
            verbose: true,
        }
    }

    /// Folds one batch into the running totals.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a worker panicked).
    pub fn record(&self, batch: &BatchStats) {
        let mut totals = self.totals.lock().expect("stats lock poisoned");
        totals.absorb(batch);
        if self.verbose {
            eprintln!("[progress] {totals}");
        }
    }

    /// A copy of the accumulated totals.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a worker panicked).
    #[must_use]
    pub fn snapshot(&self) -> BatchStats {
        self.totals.lock().expect("stats lock poisoned").clone()
    }
}

/// Evaluates `task(i)` for `i ∈ 0..runs` under the given [`Parallelism`] and
/// returns the results in index order.
///
/// The output is identical for every parallelism setting; only wall-clock
/// time differs. `task` must therefore derive any randomness it needs from
/// the index alone (e.g. via [`SeedSequence::rng_for`]).
pub fn run_indexed<T, F>(runs: u64, parallelism: Parallelism, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_indexed_with_stats(runs, parallelism, |i| (task(i), 0)).0
}

/// As [`run_indexed`], but `task` also reports an event count per trial and
/// the call returns throughput telemetry alongside the results.
///
/// # Panics
///
/// Panics if a worker thread panics, propagating the failure.
pub fn run_indexed_with_stats<T, F>(
    runs: u64,
    parallelism: Parallelism,
    task: F,
) -> (Vec<T>, BatchStats)
where
    T: Send,
    F: Fn(u64) -> (T, u64) + Sync,
{
    run_indexed_with_ctx(runs, parallelism, || (), |(), i| task(i))
}

/// As [`run_indexed_with_stats`], but every worker lazily builds one
/// private context with `init` and threads it through each trial it claims
/// — the reuse seam behind zero-reallocation trial batches
/// ([`reset_erased`](avc_population::engine::ErasedChunkedSim::reset_erased) reinitializes a long-lived engine in
/// place between trials).
///
/// The context never crosses threads (workers are scoped and results travel
/// home without it), so `C` needs neither `Send` nor `Sync`. Determinism is
/// unaffected: trial `i` must still derive all randomness from its index
/// alone, and a correct context carries no trial-to-trial state — worker
/// assignment races, so anything leaking through the context would make
/// results scheduling-dependent.
///
/// # Panics
///
/// Panics if a worker thread panics, propagating the failure.
pub fn run_indexed_with_ctx<T, C, I, F>(
    runs: u64,
    parallelism: Parallelism,
    init: I,
    task: F,
) -> (Vec<T>, BatchStats)
where
    T: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, u64) -> (T, u64) + Sync,
{
    let workers = parallelism.worker_count().min(runs.max(1) as usize);
    let started = Span::start();

    if workers <= 1 {
        let mut out = Vec::with_capacity(runs as usize);
        let mut events = 0u64;
        let mut ctx: Option<C> = None;
        for i in 0..runs {
            let (value, e) = task(ctx.get_or_insert_with(&init), i);
            events += e;
            out.push(value);
        }
        let busy = started.elapsed();
        let stats = BatchStats {
            trials: runs,
            events,
            wall: busy,
            worker_trials: vec![runs],
            worker_events: vec![events],
            worker_busy: vec![busy],
        };
        return (out, stats);
    }

    // Dynamic sharding: workers pull the next unclaimed trial index from a
    // shared counter (so stragglers never idle the rest), and results carry
    // their index home for an order-restoring scatter below.
    type WorkerYield<T> = (Vec<(u64, T)>, u64, Duration);
    let next = AtomicU64::new(0);
    let per_worker: Vec<WorkerYield<T>> = std::thread::scope(|scope| {
        let next = &next;
        let init = &init;
        let task = &task;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let begun = Span::start();
                    let mut local = Vec::new();
                    let mut events = 0u64;
                    // Lazy so a worker that never claims a trial (possible
                    // under dynamic sharding) never pays for a context.
                    let mut ctx: Option<C> = None;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= runs {
                            break;
                        }
                        let (value, e) = task(ctx.get_or_insert_with(init), i);
                        events += e;
                        local.push((i, value));
                    }
                    (local, events, begun.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trial worker panicked"))
            .collect()
    });
    let wall = started.elapsed();

    let mut stats = BatchStats {
        trials: runs,
        events: 0,
        wall,
        worker_trials: Vec::with_capacity(workers),
        worker_events: Vec::with_capacity(workers),
        worker_busy: Vec::with_capacity(workers),
    };
    let mut slots: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    for (local, events, busy) in per_worker {
        stats.worker_trials.push(local.len() as u64);
        stats.worker_events.push(events);
        stats.worker_busy.push(busy);
        stats.events += events;
        for (i, value) in local {
            debug_assert!(slots[i as usize].is_none(), "trial {i} ran twice");
            slots[i as usize] = Some(value);
        }
    }
    let out = slots
        .into_iter()
        .map(|s| s.expect("every trial index is claimed by exactly one worker"))
        .collect();
    (out, stats)
}

pub use avc_population::scenario::EngineKind;

/// A batch of trials on one majority instance.
///
/// Built with a fluent API; see the [crate-level example](crate).
#[derive(Debug, Clone, Copy)]
pub struct TrialPlan {
    instance: MajorityInstance,
    runs: u64,
    seed: u64,
    max_steps: u64,
    parallelism: Parallelism,
}

impl TrialPlan {
    /// A plan with the paper's defaults: 101 runs, unlimited steps, seed 0,
    /// automatic parallelism (results are identical at any setting).
    #[must_use]
    pub fn new(instance: MajorityInstance) -> TrialPlan {
        TrialPlan {
            instance,
            runs: 101,
            seed: 0,
            max_steps: u64::MAX,
            parallelism: Parallelism::default(),
        }
    }

    /// Sets the number of independent runs.
    #[must_use]
    pub fn runs(mut self, runs: u64) -> TrialPlan {
        self.runs = runs;
        self
    }

    /// Sets the master seed; trial `i` uses stream `i` of the derived
    /// [`SeedSequence`], so results are independent of execution order.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> TrialPlan {
        self.seed = seed;
        self
    }

    /// Caps each run at `max_steps` scheduler steps.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> TrialPlan {
        self.max_steps = max_steps;
        self
    }

    /// Sets how trials are spread across threads. Outcomes are bit-identical
    /// for every setting; only the wall-clock time changes.
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> TrialPlan {
        self.parallelism = parallelism;
        self
    }

    /// The majority instance under test.
    #[must_use]
    pub fn instance(&self) -> MajorityInstance {
        self.instance
    }
}

/// Outcomes of a batch of trials, with the instance's expected winner.
#[derive(Debug, Clone)]
pub struct TrialResults {
    outcomes: Vec<RunOutcome>,
    expected: Option<Opinion>,
}

impl TrialResults {
    /// The raw per-run outcomes.
    #[must_use]
    pub fn outcomes(&self) -> &[RunOutcome] {
        &self.outcomes
    }

    /// Mean parallel convergence time over runs that converged.
    ///
    /// # Panics
    ///
    /// Panics if no run converged.
    #[must_use]
    pub fn mean_parallel_time(&self) -> f64 {
        self.summary().mean
    }

    /// Summary statistics of parallel convergence time over converged runs.
    ///
    /// # Panics
    ///
    /// Panics if no run converged.
    #[must_use]
    pub fn summary(&self) -> Summary {
        let times: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.verdict.is_consensus())
            .map(|o| o.parallel_time)
            .collect();
        Summary::from_samples(&times)
    }

    /// Fraction of runs that converged to the *wrong* opinion (the paper's
    /// "fraction of runs to error final state", Figure 3 right).
    ///
    /// Runs that did not converge count as errors; ties have no wrong
    /// answer, so the fraction is 0 for tied instances.
    #[must_use]
    pub fn error_fraction(&self) -> f64 {
        let Some(expected) = self.expected else {
            return 0.0;
        };
        fraction(&self.outcomes, |o| !o.verdict.is_correct(expected))
    }

    /// Fraction of runs that converged (to either opinion).
    #[must_use]
    pub fn convergence_fraction(&self) -> f64 {
        fraction(&self.outcomes, |o| o.verdict.is_consensus())
    }

    /// Parallel convergence times of the runs that converged.
    #[must_use]
    pub fn converged_times(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.is_consensus())
            .map(|o| o.parallel_time)
            .collect()
    }
}

/// Runs one simulation to convergence on the chosen engine.
///
/// Goes through [`Driver::run`] with the concrete `SmallRng`, so every
/// engine executes its fully monomorphized chunk loop — the trial hot path
/// has no per-step dynamic dispatch. Protocols whose state space fits under
/// [`Cached::MAX_TABLE_ENTRIES`](avc_population::cached::MAX_TABLE_ENTRIES)
/// are wrapped in a [`Cached`] dense transition table before the engine is
/// built; larger ones keep the arithmetic path. The wrap changes no RNG
/// draws and no results — only per-step cost.
pub fn run_one<P: Protocol + Clone>(
    protocol: &P,
    config: Config,
    engine: EngineKind,
    rule: ConvergenceRule,
    rng: &mut rand::rngs::SmallRng,
    max_steps: u64,
) -> RunOutcome {
    run_one_observed(
        protocol,
        config,
        engine,
        rule,
        rng,
        max_steps,
        &mut NullObserver,
    )
}

/// As [`run_one`], but feeding driver progress to `observer`.
pub fn run_one_observed<P: Protocol + Clone, O: Observer + ?Sized>(
    protocol: &P,
    config: Config,
    engine: EngineKind,
    rule: ConvergenceRule,
    rng: &mut rand::rngs::SmallRng,
    max_steps: u64,
    observer: &mut O,
) -> RunOutcome {
    match Cached::try_new(protocol.clone()) {
        Ok(cached) => run_engine_observed(&cached, config, engine, rule, rng, max_steps, observer),
        Err(plain) => run_engine_observed(&plain, config, engine, rule, rng, max_steps, observer),
    }
}

/// Everything a batch loop needs beyond the protocol value: a [`Scenario`]'s
/// execution fields plus the [`Parallelism`] knob (which is deliberately
/// *not* part of a scenario — it never affects results).
///
/// Both [`TrialPlan`] entry points and [`ScenarioPlan`] lower to this, so
/// there is exactly one batch loop and one seeding policy in the workspace.
struct BatchSpec<'s> {
    instance: MajorityInstance,
    engine: EngineKind,
    scheduler: &'s SchedulerSpec,
    faults: &'s [FaultEvent],
    rule: ConvergenceRule,
    max_steps: u64,
    runs: u64,
    seed: u64,
    seed_child: Option<u64>,
    parallelism: Parallelism,
}

impl<'s> BatchSpec<'s> {
    /// A plain uniform-scheduler, fault-free batch — the [`TrialPlan`]
    /// semantics, unchanged byte for byte.
    fn from_plan(
        plan: &TrialPlan,
        engine: EngineKind,
        rule: ConvergenceRule,
    ) -> BatchSpec<'static> {
        BatchSpec {
            instance: plan.instance,
            engine,
            scheduler: &SchedulerSpec::Uniform,
            faults: &[],
            rule,
            max_steps: plan.max_steps,
            runs: plan.runs,
            seed: plan.seed,
            seed_child: None,
            parallelism: plan.parallelism,
        }
    }

    fn from_scenario(scenario: &'s Scenario, parallelism: Parallelism) -> BatchSpec<'s> {
        BatchSpec {
            instance: scenario.instance,
            engine: scenario.engine,
            scheduler: &scenario.scheduler,
            faults: &scenario.faults,
            rule: scenario.rule,
            max_steps: scenario.max_steps,
            runs: scenario.runs,
            seed: scenario.seed,
            seed_child: scenario.seed_child,
            parallelism,
        }
    }

    /// The trial seed streams: the master sequence, or one of its child
    /// families when the scenario routes through `seed_child` (grid sweeps
    /// give each cell its own family this way).
    fn seeds(&self) -> SeedSequence {
        match self.seed_child {
            Some(child) => SeedSequence::new(self.seed).child(child),
            None => SeedSequence::new(self.seed),
        }
    }
}

/// Builds the spec's engine over an already-dispatched protocol (cached or
/// arithmetic) through the [`build_erased_with_sink`] seam and drives one
/// trial to convergence, with a [`CountingSink`] attached to the engine's
/// telemetry seam. `protocol` is taken by value so batch callers can pass a
/// `&Cached<P>` — engines over a shared reference reuse one table across
/// every trial of a batch. The sink is borrowed, so the caller keeps the
/// counts after the engine is dropped. Attaching it changes no RNG draws —
/// the seam records only quantities the engine already computes. Fault-free
/// specs run [`Driver::run_erased`]; faulted ones rebuild the per-trial
/// [`FaultPlan`] (cheap: a sort of a handful of events) and run
/// [`Driver::run_faulted_erased`].
fn run_spec_trial_instrumented<P: Protocol + Clone, O: Observer + ?Sized>(
    protocol: P,
    config: Config,
    spec: &BatchSpec<'_>,
    rng: &mut rand::rngs::SmallRng,
    observer: &mut O,
    sink: &mut CountingSink,
) -> RunOutcome {
    let driver = Driver::new(spec.rule).with_max_steps(spec.max_steps);
    let mut sim = build_erased_with_sink(protocol, config, spec.engine, spec.scheduler, sink)
        .unwrap_or_else(|e| panic!("unrunnable scenario: {e}"));
    if spec.faults.is_empty() {
        driver.run_erased(sim.as_mut(), rng, observer)
    } else {
        let mut faults = FaultPlan::from_events(spec.faults.to_vec());
        driver.run_faulted_erased(sim.as_mut(), rng, observer, &mut faults)
    }
}

/// Builds the chosen engine over an already-dispatched protocol and drives
/// it to convergence — the uniform-scheduler, fault-free special case of
/// [`run_spec_trial`] for the single-run entry points.
fn run_engine_observed<P: Protocol + Clone, O: Observer + ?Sized>(
    protocol: P,
    config: Config,
    engine: EngineKind,
    rule: ConvergenceRule,
    rng: &mut rand::rngs::SmallRng,
    max_steps: u64,
    observer: &mut O,
) -> RunOutcome {
    let mut sim = build_erased(protocol, config, engine, &SchedulerSpec::Uniform)
        .expect("the uniform scheduler is valid for every engine");
    Driver::new(rule)
        .with_max_steps(max_steps)
        .run_erased(sim.as_mut(), rng, observer)
}

/// Runs an already-constructed engine to convergence on the monomorphized
/// driver path (convenience for callers that build their own simulator,
/// e.g. on a non-clique graph).
pub fn drive_to_consensus<S: ChunkedSimulator + ?Sized>(
    sim: &mut S,
    rule: ConvergenceRule,
    rng: &mut rand::rngs::SmallRng,
    max_steps: u64,
) -> RunOutcome {
    Driver::new(rule)
        .with_max_steps(max_steps)
        .run(sim, rng, &mut NullObserver)
}

/// Runs a batch of independent trials of `protocol` on the plan's instance.
///
/// Trial `i` is seeded from stream `i` of `SeedSequence::new(plan.seed)`,
/// making every batch reproducible run-for-run — including across
/// [`Parallelism`] settings, which affect wall-clock time only.
pub fn run_trials<P: Protocol + Clone + Sync>(
    protocol: &P,
    plan: &TrialPlan,
    engine: EngineKind,
    rule: ConvergenceRule,
) -> TrialResults {
    run_trials_core(protocol, plan, engine, rule).0
}

/// As [`run_trials`], folding the batch's throughput telemetry into `stats`.
pub fn run_trials_with_stats<P: Protocol + Clone + Sync>(
    protocol: &P,
    plan: &TrialPlan,
    engine: EngineKind,
    rule: ConvergenceRule,
    stats: &StatsCollector,
) -> TrialResults {
    let (results, batch) = run_trials_core(protocol, plan, engine, rule);
    stats.record(&batch);
    results
}

/// As [`run_trials_with_stats`], additionally capturing per-trial telemetry
/// and returning it aggregated into one [`CellTelemetry`].
///
/// Each trial runs with a [`CountingSink`] on the engine's telemetry seam
/// (engine-level counters: steps, events, silent steps, chunk sizes,
/// Fenwick descents, phase switches) and a [`TelemetryObserver`] on the
/// driver's observer seam (wall-clock chunk latency). Convergence outcomes
/// are folded in from the [`RunOutcome`]s. Per-trial snapshots are merged
/// **in trial-index order after the batch completes**, so the `sim` half of
/// the result is bit-identical at every [`Parallelism`] setting — the same
/// guarantee [`TrialResults`] carries. The `wall` half (per-trial and
/// per-chunk latencies, whole-cell wall time) is nondeterministic by
/// nature and kept in the separate registry that exports can suppress.
///
/// The observer's deterministic half is deliberately discarded: its chunk
/// histogram duplicates the sink's (both see the same `advance_chunk`
/// reports), and double-counting would corrupt the merge.
pub fn run_trials_with_telemetry<P: Protocol + Clone + Sync>(
    protocol: &P,
    plan: &TrialPlan,
    engine: EngineKind,
    rule: ConvergenceRule,
    stats: &StatsCollector,
) -> (TrialResults, CellTelemetry) {
    run_batch_with_telemetry(protocol, &BatchSpec::from_plan(plan, engine, rule), stats)
}

/// The one instrumented batch loop behind [`run_trials_with_telemetry`] and
/// [`ScenarioPlan::run_with_telemetry`].
fn run_batch_with_telemetry<P: Protocol + Clone + Sync>(
    protocol: &P,
    spec: &BatchSpec<'_>,
    stats: &StatsCollector,
) -> (TrialResults, CellTelemetry) {
    let seeds = spec.seeds();
    let instance = spec.instance;
    let dispatch = Cached::try_new(protocol.clone());
    let (pairs, batch) = run_indexed_with_stats(spec.runs, spec.parallelism, |trial| {
        let trial_span = Span::start();
        let mut rng = seeds.rng_for(trial);
        let config = Config::from_input(protocol, instance.a(), instance.b());
        let mut sink = CountingSink::new();
        let mut observer = TelemetryObserver::new();
        let outcome = match &dispatch {
            Ok(cached) => run_spec_trial_instrumented(
                cached,
                config,
                spec,
                &mut rng,
                &mut observer,
                &mut sink,
            ),
            Err(plain) => {
                run_spec_trial_instrumented(plain, config, spec, &mut rng, &mut observer, &mut sink)
            }
        };
        let mut cell = CellTelemetry::new();
        cell.sim = sink.snapshot();
        let mut convergence = HistogramSnapshot::new();
        if outcome.verdict.is_consensus() {
            convergence.record(outcome.steps);
        }
        cell.sim.set(
            keys::SIM_CONVERGENCE_STEPS,
            MetricValue::Histogram(convergence),
        );
        cell.sim.set(keys::SIM_TRIALS, MetricValue::Counter(1));
        cell.sim.set(
            keys::SIM_TRIALS_CONVERGED,
            MetricValue::Counter(u64::from(outcome.verdict.is_consensus())),
        );
        cell.wall = observer.wall_snapshot();
        let mut trial_ns = HistogramSnapshot::new();
        trial_ns.record(trial_span.elapsed_ns());
        cell.wall
            .set(keys::WALL_TRIAL_NS, MetricValue::Histogram(trial_ns));
        let steps = outcome.steps;
        ((outcome, cell), steps)
    });
    let mut telemetry = CellTelemetry::new();
    let mut outcomes = Vec::with_capacity(pairs.len());
    for (outcome, cell) in pairs {
        telemetry.merge(&cell);
        outcomes.push(outcome);
    }
    telemetry.wall.set(
        keys::WALL_CELL_NS,
        MetricValue::Counter(u64::try_from(batch.wall.as_nanos()).unwrap_or(u64::MAX)),
    );
    stats.record(&batch);
    let results = TrialResults {
        outcomes,
        expected: instance.winner(),
    };
    (results, telemetry)
}

fn run_trials_core<P: Protocol + Clone + Sync>(
    protocol: &P,
    plan: &TrialPlan,
    engine: EngineKind,
    rule: ConvergenceRule,
) -> (TrialResults, BatchStats) {
    run_batch_core(protocol, &BatchSpec::from_plan(plan, engine, rule))
}

/// The one uninstrumented batch loop behind [`run_trials`] and
/// [`ScenarioPlan::run`].
///
/// Each worker builds the spec's engine **once** through the
/// [`build_erased`] seam and replays every trial it claims through it,
/// reinitializing in place with [`reset_erased`](avc_population::engine::ErasedChunkedSim::reset_erased) between
/// trials. Reset is fresh-equivalent (`tests/reuse_reset.rs` pins outcomes
/// *and* RNG stream position), so results are bit-identical to per-trial
/// construction at every [`Parallelism`] setting — only the per-trial
/// allocator traffic disappears. The instrumented loop
/// ([`run_batch_with_telemetry`]) keeps per-trial construction: its
/// engines borrow a per-trial [`CountingSink`], which cannot outlive one
/// trial, and telemetry batches are not on the sweep hot path.
fn run_batch_core<P: Protocol + Clone + Sync>(
    protocol: &P,
    spec: &BatchSpec<'_>,
) -> (TrialResults, BatchStats) {
    let seeds = spec.seeds();
    let instance = spec.instance;
    // Build the dense transition cache once per batch; worker threads share
    // it by reference, so even a maximal (128 MiB) table is paid for once.
    let dispatch = Cached::try_new(protocol.clone());
    let driver = Driver::new(spec.rule).with_max_steps(spec.max_steps);
    let build = || {
        let config = Config::from_input(protocol, instance.a(), instance.b());
        let sim = match &dispatch {
            Ok(cached) => build_erased(cached, config.clone(), spec.engine, spec.scheduler),
            Err(plain) => build_erased(plain, config.clone(), spec.engine, spec.scheduler),
        }
        .unwrap_or_else(|e| panic!("unrunnable scenario: {e}"));
        (sim, config)
    };
    let (outcomes, batch) =
        run_indexed_with_ctx(spec.runs, spec.parallelism, build, |ctx, trial| {
            let (sim, config) = ctx;
            let mut rng = seeds.rng_for(trial);
            // A freshly built engine is already in this state; resetting it
            // anyway keeps one uniform per-trial path.
            sim.reset_erased(config);
            let outcome = if spec.faults.is_empty() {
                driver.run_erased(sim.as_mut(), &mut rng, &mut NullObserver)
            } else {
                let mut faults = FaultPlan::from_events(spec.faults.to_vec());
                driver.run_faulted_erased(sim.as_mut(), &mut rng, &mut NullObserver, &mut faults)
            };
            (outcome, outcome.steps)
        });
    let results = TrialResults {
        outcomes,
        expected: instance.winner(),
    };
    (results, batch)
}

/// Resolves a [`ProtocolSpec`] to a concrete protocol value and runs `$body`
/// with it bound to `$protocol` — the spec-to-instance mapping the scenario
/// plane leaves to this crate (`avc-population` cannot depend on
/// `avc-protocols`).
macro_rules! with_resolved_protocol {
    ($spec:expr, |$protocol:ident| $body:expr) => {
        match $spec {
            ProtocolSpec::Avc { m, d } => {
                let $protocol = Avc::new(m, d).expect("scenario names a valid AVC instance");
                $body
            }
            ProtocolSpec::Bef { levels } => {
                let $protocol = Bef::new(levels).expect("scenario names a valid BEF instance");
                $body
            }
            ProtocolSpec::Degssu { levels, phase } => {
                let $protocol =
                    Degssu::new(levels, phase).expect("scenario names a valid DEGSSU instance");
                $body
            }
            ProtocolSpec::FourState => {
                let $protocol = FourState;
                $body
            }
            ProtocolSpec::ThreeState => {
                let $protocol = ThreeState::new();
                $body
            }
            ProtocolSpec::Voter => {
                let $protocol = Voter;
                $body
            }
        }
    };
}

/// Number of states of the protocol a [`ProtocolSpec`] names, resolved
/// through the real constructor (not the spec's arithmetic
/// [`ProtocolSpec::state_count`] formula) — the sweep tables' state-count
/// accounting goes through here so the two can be cross-checked.
///
/// # Panics
///
/// Panics on parameters the constructors reject; validate the spec first.
#[must_use]
pub fn spec_states(spec: ProtocolSpec) -> u32 {
    with_resolved_protocol!(spec, |protocol| Protocol::num_states(&protocol))
}

/// Runs any [`Scenario`] — scheduler and fault scenarios included — through
/// the deterministic parallel harness.
///
/// This is [`TrialPlan`] generalized: the scenario carries every
/// result-determining knob (protocol, engine, scheduler, faults, rule, step
/// budget, seed policy) and the plan adds only the [`Parallelism`] setting,
/// which never affects results. A uniform-scheduler, fault-free,
/// child-free scenario runs the *same* seed streams and RNG draws as the
/// equivalent [`TrialPlan`] call — the two entry points share one batch
/// loop.
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    scenario: Scenario,
    parallelism: Parallelism,
}

impl ScenarioPlan {
    /// A plan executing `scenario` under automatic parallelism.
    #[must_use]
    pub fn new(scenario: Scenario) -> ScenarioPlan {
        ScenarioPlan {
            scenario,
            parallelism: Parallelism::default(),
        }
    }

    /// Sets how trials are spread across threads. Outcomes are bit-identical
    /// for every setting; only the wall-clock time changes.
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> ScenarioPlan {
        self.parallelism = parallelism;
        self
    }

    /// The scenario this plan executes.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs the scenario's batch of trials.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is unrunnable: invalid AVC parameters, or a
    /// non-uniform scheduler on a non-`agent` engine (pre-check with
    /// [`avc_population::scenario::build_erased`] semantics via
    /// [`Scenario`] validation at parse sites).
    #[must_use]
    pub fn run(&self) -> TrialResults {
        self.run_core().0
    }

    /// As [`ScenarioPlan::run`], folding throughput telemetry into `stats`.
    #[must_use]
    pub fn run_with_stats(&self, stats: &StatsCollector) -> TrialResults {
        let (results, batch) = self.run_core();
        stats.record(&batch);
        results
    }

    /// As [`run_trials_with_telemetry`], for a scenario: per-trial
    /// [`CountingSink`]/[`TelemetryObserver`] capture merged in trial-index
    /// order into one [`CellTelemetry`].
    #[must_use]
    pub fn run_with_telemetry(&self, stats: &StatsCollector) -> (TrialResults, CellTelemetry) {
        let spec = BatchSpec::from_scenario(&self.scenario, self.parallelism);
        with_resolved_protocol!(self.scenario.protocol, |protocol| {
            run_batch_with_telemetry(&protocol, &spec, stats)
        })
    }

    fn run_core(&self) -> (TrialResults, BatchStats) {
        let spec = BatchSpec::from_scenario(&self.scenario, self.parallelism);
        with_resolved_protocol!(self.scenario.protocol, |protocol| {
            run_batch_core(&protocol, &spec)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_protocols::{FourState, ThreeState, Voter};

    #[test]
    fn spec_states_agrees_with_the_state_count_formulas() {
        for spec in [
            ProtocolSpec::Avc { m: 15, d: 3 },
            ProtocolSpec::Bef { levels: 10 },
            ProtocolSpec::Degssu {
                levels: 10,
                phase: 4,
            },
            ProtocolSpec::FourState,
            ProtocolSpec::ThreeState,
            ProtocolSpec::Voter,
        ] {
            assert_eq!(u64::from(spec_states(spec)), spec.state_count(), "{spec}");
        }
    }

    #[test]
    fn spec_validation_bounds_match_the_constructors() {
        // `ProtocolSpec::validate` (in avc-population, which cannot see the
        // constructors) must accept exactly what the constructors accept at
        // the boundary values, or valid scenarios would panic at resolution.
        assert_eq!(Bef::MAX_LEVELS, 32);
        assert_eq!(Degssu::MAX_LEVELS, 32);
        assert_eq!(Degssu::MAX_PHASE, 64);
        for levels in [1, Bef::MAX_LEVELS] {
            assert!(ProtocolSpec::Bef { levels }.validate().is_ok());
            assert!(Bef::new(levels).is_ok());
        }
        assert!(ProtocolSpec::Bef { levels: 33 }.validate().is_err());
        for (levels, phase) in [(1, 1), (Degssu::MAX_LEVELS, Degssu::MAX_PHASE)] {
            assert!(ProtocolSpec::Degssu { levels, phase }.validate().is_ok());
            assert!(Degssu::new(levels, phase).is_ok());
        }
        assert!(ProtocolSpec::Degssu {
            levels: 33,
            phase: 1
        }
        .validate()
        .is_err());
        assert!(ProtocolSpec::Degssu {
            levels: 1,
            phase: 65
        }
        .validate()
        .is_err());
    }

    #[test]
    fn trials_are_reproducible() {
        let plan = TrialPlan::new(MajorityInstance::new(8, 5)).runs(10).seed(3);
        let a = run_trials(
            &FourState,
            &plan,
            EngineKind::Jump,
            ConvergenceRule::OutputConsensus,
        );
        let b = run_trials(
            &FourState,
            &plan,
            EngineKind::Jump,
            ConvergenceRule::OutputConsensus,
        );
        assert_eq!(a.outcomes(), b.outcomes());
    }

    #[test]
    fn four_state_never_errs() {
        let plan = TrialPlan::new(MajorityInstance::one_extra(21)).runs(30);
        for engine in [
            EngineKind::Agent,
            EngineKind::Count,
            EngineKind::Jump,
            EngineKind::Adaptive,
        ] {
            let r = run_trials(&FourState, &plan, engine, ConvergenceRule::OutputConsensus);
            assert_eq!(r.error_fraction(), 0.0, "engine {engine:?}");
            assert_eq!(r.convergence_fraction(), 1.0);
        }
    }

    #[test]
    fn voter_errs_roughly_at_minority_fraction() {
        // P[error] = b/n = 5/20.
        let plan = TrialPlan::new(MajorityInstance::new(15, 5))
            .runs(300)
            .seed(1);
        let r = run_trials(
            &Voter,
            &plan,
            EngineKind::Count,
            ConvergenceRule::OutputConsensus,
        );
        assert!(
            (r.error_fraction() - 0.25).abs() < 0.08,
            "{}",
            r.error_fraction()
        );
    }

    #[test]
    fn tie_instances_have_zero_error_fraction() {
        let plan = TrialPlan::new(MajorityInstance::new(5, 5)).runs(5);
        let r = run_trials(
            &Voter,
            &plan,
            EngineKind::Count,
            ConvergenceRule::OutputConsensus,
        );
        assert_eq!(r.error_fraction(), 0.0);
    }

    #[test]
    fn max_steps_shows_up_as_non_convergence() {
        let plan = TrialPlan::new(MajorityInstance::new(50, 50))
            .runs(5)
            .max_steps(3);
        let r = run_trials(
            &Voter,
            &plan,
            EngineKind::Count,
            ConvergenceRule::OutputConsensus,
        );
        assert!(r.convergence_fraction() < 1.0);
    }

    #[test]
    fn three_state_runs_under_state_consensus() {
        let plan = TrialPlan::new(MajorityInstance::new(40, 20)).runs(20);
        let r = run_trials(
            &ThreeState::new(),
            &plan,
            EngineKind::Auto,
            ConvergenceRule::StateConsensus,
        );
        assert_eq!(r.convergence_fraction(), 1.0);
        assert!(r.summary().mean > 0.0);
    }

    #[test]
    fn run_indexed_preserves_index_order_at_any_width() {
        let expected: Vec<u64> = (0..97).map(|i| i * i).collect();
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(5),
            Parallelism::Auto,
        ] {
            let got = run_indexed(97, parallelism, |i| i * i);
            assert_eq!(got, expected, "{parallelism:?}");
        }
    }

    #[test]
    fn run_indexed_handles_more_workers_than_trials() {
        let got = run_indexed(3, Parallelism::Threads(16), |i| i);
        assert_eq!(got, vec![0, 1, 2]);
        assert!(run_indexed(0, Parallelism::Threads(4), |i| i).is_empty());
    }

    #[test]
    fn parallel_trials_match_serial_bit_for_bit() {
        let base = TrialPlan::new(MajorityInstance::new(30, 21))
            .runs(24)
            .seed(7);
        let serial = run_trials(
            &FourState,
            &base.parallelism(Parallelism::Serial),
            EngineKind::Count,
            ConvergenceRule::OutputConsensus,
        );
        for workers in [2, 3, 8] {
            let parallel = run_trials(
                &FourState,
                &base.parallelism(Parallelism::Threads(workers)),
                EngineKind::Count,
                ConvergenceRule::OutputConsensus,
            );
            assert_eq!(serial.outcomes(), parallel.outcomes(), "{workers} workers");
            assert_eq!(serial.summary(), parallel.summary(), "{workers} workers");
        }
    }

    #[test]
    fn stats_account_for_every_trial_and_event() {
        let plan = TrialPlan::new(MajorityInstance::new(10, 5))
            .runs(12)
            .seed(2)
            .parallelism(Parallelism::Threads(3));
        let collector = StatsCollector::new();
        let r = run_trials_with_stats(
            &Voter,
            &plan,
            EngineKind::Count,
            ConvergenceRule::OutputConsensus,
            &collector,
        );
        let stats = collector.snapshot();
        assert_eq!(stats.trials, 12);
        let total_steps: u64 = r.outcomes().iter().map(|o| o.steps).sum();
        assert_eq!(stats.events, total_steps);
        assert_eq!(stats.worker_trials.iter().sum::<u64>(), 12);
        assert_eq!(stats.worker_events.iter().sum::<u64>(), stats.events);
        assert_eq!(stats.worker_busy.len(), stats.worker_trials.len());
    }

    #[test]
    fn batch_stats_absorb_sums_across_batches() {
        let mut a = BatchStats {
            trials: 2,
            events: 10,
            wall: Duration::from_millis(4),
            worker_trials: vec![2],
            worker_events: vec![10],
            worker_busy: vec![Duration::from_millis(4)],
        };
        let b = BatchStats {
            trials: 3,
            events: 5,
            wall: Duration::from_millis(6),
            worker_trials: vec![1, 2],
            worker_events: vec![2, 3],
            worker_busy: vec![Duration::from_millis(3), Duration::from_millis(3)],
        };
        a.absorb(&b);
        assert_eq!(a.trials, 5);
        assert_eq!(a.events, 15);
        assert_eq!(a.wall, Duration::from_millis(10));
        assert_eq!(a.worker_trials, vec![3, 2]);
        assert_eq!(a.worker_events, vec![12, 3]);
        assert!(a.events_per_sec() > 0.0);
        assert_eq!(a.utilization().len(), 2);
    }

    #[test]
    #[should_panic(expected = "Threads(0)")]
    fn zero_threads_is_rejected() {
        let _ = Parallelism::Threads(0).worker_count();
    }

    #[test]
    fn telemetry_matches_outcomes_and_stats() {
        use avc_population::telemetry::keys;
        let plan = TrialPlan::new(MajorityInstance::new(20, 11))
            .runs(8)
            .seed(5);
        let collector = StatsCollector::new();
        let (r, telemetry) = run_trials_with_telemetry(
            &FourState,
            &plan,
            EngineKind::Count,
            ConvergenceRule::OutputConsensus,
            &collector,
        );
        let total_steps: u64 = r.outcomes().iter().map(|o| o.steps).sum();
        assert_eq!(telemetry.sim.counter(keys::SIM_STEPS), Some(total_steps));
        assert_eq!(telemetry.sim.counter(keys::SIM_TRIALS), Some(8));
        assert_eq!(telemetry.sim.counter(keys::SIM_TRIALS_CONVERGED), Some(8));
        let conv = telemetry
            .sim
            .histogram(keys::SIM_CONVERGENCE_STEPS)
            .unwrap();
        assert_eq!(conv.count, 8);
        assert_eq!(conv.sum, total_steps);
        assert_eq!(collector.snapshot().events, total_steps);
        // Wall half is populated and throughput is derivable.
        assert_eq!(
            telemetry.wall.histogram(keys::WALL_TRIAL_NS).unwrap().count,
            8
        );
        assert!(telemetry.wall.counter(keys::WALL_CELL_NS).is_some());
        assert!(telemetry.steps_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn telemetry_sim_half_is_parallelism_invariant() {
        use avc_population::telemetry::keys;
        let base = TrialPlan::new(MajorityInstance::new(25, 18))
            .runs(12)
            .seed(9);
        let run = |parallelism| {
            let collector = StatsCollector::new();
            run_trials_with_telemetry(
                &ThreeState::new(),
                &base.parallelism(parallelism),
                EngineKind::Adaptive,
                ConvergenceRule::StateConsensus,
                &collector,
            )
        };
        let (serial_r, serial_t) = run(Parallelism::Serial);
        for workers in [2, 5] {
            let (r, t) = run(Parallelism::Threads(workers));
            assert_eq!(serial_r.outcomes(), r.outcomes(), "{workers} workers");
            assert_eq!(serial_t.sim, t.sim, "{workers} workers");
        }
        // RNG-invisibility: the uninstrumented path sees identical outcomes.
        let plain = run_trials(
            &ThreeState::new(),
            &base,
            EngineKind::Adaptive,
            ConvergenceRule::StateConsensus,
        );
        assert_eq!(plain.outcomes(), serial_r.outcomes());
        assert!(serial_t.sim.counter(keys::SIM_STEPS).unwrap() > 0);
    }
}
