//! Ablation: sensitivity of AVC to the intermediate-level count `d`.
//!
//! The paper's analysis sets `d = Θ(log m · log n)` but its experiments use
//! `d = 1` and observe that "setting d > 1 does not significantly affect the
//! running time" (§6 discussion). This ablation fixes a state *budget* `s`
//! and reallocates it between `m` and `d` (`s = m + 2d + 1`), measuring the
//! convergence time at a hard margin for several splits.

use crate::harness::{Parallelism, ScenarioPlan, StatsCollector};
use crate::stats::Summary;
use crate::table::{fmt_num, Table};
use avc_population::{MajorityInstance, ProtocolSpec, Scenario};

/// Parameters for the `d` ablation.
#[derive(Debug, Clone)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// State budget `s` to split between `m` and `d`.
    pub state_budget: u64,
    /// Level counts to try.
    pub ds: Vec<u32>,
    /// Runs per point.
    pub runs: u64,
    /// Master seed.
    pub seed: u64,
    /// Thread sharding of each point's trials (results are unaffected).
    pub parallelism: Parallelism,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            n: 10_001,
            state_budget: 64,
            ds: vec![1, 2, 4, 8, 16],
            runs: 25,
            seed: 6,
            parallelism: Parallelism::default(),
        }
    }
}

impl Config {
    /// A downscaled configuration for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Config {
        Config {
            n: 1_001,
            state_budget: 24,
            ds: vec![1, 4],
            runs: 9,
            seed: 6,
            parallelism: Parallelism::default(),
        }
    }

    /// Builds a configuration from parsed CLI arguments (`--quick`, `--n`,
    /// `--budget`, `--runs`, `--seed`, `--serial`/`--threads`).
    #[must_use]
    pub fn from_args(args: &crate::cli::Args) -> Config {
        let mut config = if args.flag("quick") {
            Config::quick()
        } else {
            Config::default()
        };
        config.n = args.get_u64("n", config.n);
        config.state_budget = args.get_u64("budget", config.state_budget);
        config.runs = args.get_u64("runs", config.runs);
        config.seed = args.get_u64("seed", config.seed);
        config.parallelism = args.parallelism();
        config
    }
}

/// One `(m, d)` measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Maximum weight.
    pub m: u64,
    /// Intermediate levels.
    pub d: u32,
    /// Realized state count `m + 2d + 1`.
    pub s: u64,
    /// Parallel-time summary.
    pub summary: Summary,
}

/// Runs the ablation at margin `ε = 1/n`.
///
/// # Panics
///
/// Panics if the budget cannot accommodate some `d` (needs
/// `m = budget − 2d − 1 ≥ 1`).
#[must_use]
pub fn run(config: &Config) -> Vec<Point> {
    run_with_stats(config, &StatsCollector::new())
}

/// As [`run`], folding per-point throughput telemetry into `stats`.
///
/// # Panics
///
/// As [`run`].
#[must_use]
pub fn run_with_stats(config: &Config, stats: &StatsCollector) -> Vec<Point> {
    (0..config.ds.len())
        .map(|i| run_point(config, i, stats))
        .collect()
}

/// Lowers one `(m, d)` point to a declarative run scenario; `i` indexes
/// [`Config::ds`]. The point's seed depends only on the index, so it reruns
/// identically in isolation.
///
/// # Panics
///
/// Panics if `i` is out of range or the budget cannot accommodate `ds[i]`.
#[must_use]
pub fn cell_scenario(config: &Config, i: usize) -> Scenario {
    let d = config.ds[i];
    let budget_for_m = config
        .state_budget
        .checked_sub(2 * d as u64 + 1)
        .unwrap_or_else(|| panic!("budget {} too small for d={d}", config.state_budget));
    let m = if budget_for_m % 2 == 1 {
        budget_for_m
    } else {
        budget_for_m - 1
    };
    assert!(m >= 1, "budget {} too small for d={d}", config.state_budget);
    Scenario::new(
        ProtocolSpec::Avc { m, d },
        MajorityInstance::one_extra(config.n),
    )
    .runs(config.runs)
    .seed(config.seed + i as u64)
}

/// Runs one `(m, d)` point through the shared [`ScenarioPlan`] harness.
///
/// # Panics
///
/// As [`cell_scenario`].
#[must_use]
pub fn run_point(config: &Config, i: usize, stats: &StatsCollector) -> Point {
    let scenario = cell_scenario(config, i);
    let ProtocolSpec::Avc { m, d } = scenario.protocol else {
        unreachable!("the ablation always runs AVC")
    };
    let results = ScenarioPlan::new(scenario)
        .parallelism(config.parallelism)
        .run_with_stats(stats);
    Point {
        m,
        d,
        s: m + 2 * u64::from(d) + 1,
        summary: results.summary(),
    }
}

/// Renders the result table.
#[must_use]
pub fn table(points: &[Point], config: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Ablation: splitting a budget of {} states between m and d (n = {}, eps = 1/n)",
            config.state_budget, config.n
        ),
        ["m", "d", "s", "mean_parallel_time", "std_dev", "runs"],
    );
    for p in points {
        t.push_row([
            p.m.to_string(),
            p.d.to_string(),
            p.s.to_string(),
            fmt_num(p.summary.mean),
            fmt_num(p.summary.std_dev),
            p.summary.count.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_splits_converge_exactly() {
        let points = run(&Config::quick());
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.s, p.m + 2 * p.d as u64 + 1);
            assert_eq!(p.summary.count, 9, "every run must converge (exactness)");
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_infeasible_budget() {
        let _ = run(&Config {
            n: 101,
            state_budget: 8,
            ds: vec![4],
            runs: 1,
            seed: 0,
            parallelism: Parallelism::Serial,
        });
    }
}
