//! A transition-table cache wrapper for hot simulation loops.

use crate::protocol::{Opinion, Protocol, StateId};

/// Wraps a protocol with a dense, precomputed transition table.
///
/// Protocols like AVC compute each transition arithmetically
/// (decode → update → encode). Inside an engine's inner loop that work is
/// repeated billions of times; `Cached` trades `O(s²)` memory for flat
/// array lookups. Worth it for small-to-medium state counts (the table for
/// `s` states holds `s²` entries of 8 bytes).
///
/// Outputs and input encodings are also precomputed.
///
/// # Example
///
/// ```
/// use avc_population::cached::Cached;
/// use avc_population::protocol::tests_support::Voter;
/// use avc_population::Protocol;
///
/// let cached = Cached::new(Voter);
/// assert_eq!(cached.transition(0, 1), Voter.transition(0, 1));
/// assert_eq!(cached.output(1), Voter.output(1));
/// ```
#[derive(Debug, Clone)]
pub struct Cached<P> {
    inner: P,
    num_states: u32,
    table: Vec<(StateId, StateId)>,
    outputs: Vec<Opinion>,
    inputs: (StateId, StateId),
    /// Row-major bitset over ordered state pairs: bit `(a, b)` is set iff
    /// the interaction `δ(a, b)` is *productive* (not silent). Rows are
    /// padded to a whole number of `u64` words so a row scan is word-wise.
    productive: Vec<u64>,
    /// `u64` words per bitset row: `ceil(num_states / 64)`.
    words_per_row: usize,
}

/// Keep tables at or below this many entries (`s ≤ 4096`).
pub const MAX_TABLE_ENTRIES: u64 = 4_096 * 4_096;

impl<P: Protocol> Cached<P> {
    /// Whether a protocol with `num_states` states fits under
    /// [`MAX_TABLE_ENTRIES`] and can therefore be cached.
    #[must_use]
    pub fn fits(num_states: u32) -> bool {
        (num_states as u64) * (num_states as u64) <= MAX_TABLE_ENTRIES
    }

    /// Precomputes the full transition table of `inner`.
    ///
    /// # Panics
    ///
    /// Panics if the protocol has more than 4 096 states (the table would
    /// exceed 128 MiB; at that size the arithmetic transition is cheaper
    /// than the cache misses anyway). Use [`Cached::try_new`] to fall back
    /// to the arithmetic protocol instead.
    pub fn new(inner: P) -> Cached<P> {
        match Cached::try_new(inner) {
            Ok(cached) => cached,
            Err(inner) => panic!(
                "state space too large to cache: {} states",
                inner.num_states()
            ),
        }
    }

    /// Precomputes the full transition table of `inner`, or hands the
    /// protocol back unchanged when its `s²` table would exceed
    /// [`MAX_TABLE_ENTRIES`].
    ///
    /// This is the dispatch point used by the harness: protocols that fit
    /// run on the table, larger ones keep the arithmetic path.
    pub fn try_new(inner: P) -> Result<Cached<P>, P> {
        let s = inner.num_states();
        if !Cached::<P>::fits(s) {
            return Err(inner);
        }
        let words_per_row = (s as usize).div_ceil(64);
        let mut table = Vec::with_capacity((s as usize) * (s as usize));
        let mut productive = vec![0u64; (s as usize) * words_per_row];
        for a in 0..s {
            for b in 0..s {
                table.push(inner.transition(a, b));
                if !inner.is_silent(a, b) {
                    let row = a as usize * words_per_row;
                    productive[row + (b as usize >> 6)] |= 1u64 << (b & 63);
                }
            }
        }
        let outputs = (0..s).map(|q| inner.output(q)).collect();
        let inputs = (inner.input(Opinion::A), inner.input(Opinion::B));
        Ok(Cached {
            inner,
            num_states: s,
            table,
            outputs,
            inputs,
            productive,
            words_per_row,
        })
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper and returns the protocol.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Protocol> Protocol for Cached<P> {
    fn num_states(&self) -> u32 {
        self.num_states
    }

    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        self.table[(initiator * self.num_states + responder) as usize]
    }

    fn output(&self, state: StateId) -> Opinion {
        self.outputs[state as usize]
    }

    fn input(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => self.inputs.0,
            Opinion::B => self.inputs.1,
        }
    }

    fn state_label(&self, state: StateId) -> String {
        self.inner.state_label(state)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn is_silent(&self, a: StateId, b: StateId) -> bool {
        let word = self.productive[a as usize * self.words_per_row + (b as usize >> 6)];
        word & (1u64 << (b & 63)) == 0
    }

    fn config_silent(&self, counts: &[u64]) -> bool {
        // Word-wise scan of the productive-pair bitset restricted to live
        // species: O(live · s/64) instead of O(live²) transition probes.
        let w = self.words_per_row;
        let mut live = vec![0u64; w];
        let mut live_idx = Vec::new();
        for (q, &c) in counts.iter().enumerate() {
            if c > 0 {
                live[q >> 6] |= 1u64 << (q & 63);
                live_idx.push(q);
            }
        }
        for &a in &live_idx {
            let row = &self.productive[a * w..(a + 1) * w];
            for (k, (&r, &l)) in row.iter().zip(&live).enumerate() {
                let mut hits = r & l;
                // A productive self-pair (a, a) needs two agents in `a`.
                if counts[a] < 2 && (a >> 6) == k {
                    hits &= !(1u64 << (a & 63));
                }
                if hits != 0 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tests_support::{Annihilate, Voter};

    #[test]
    fn cached_matches_inner_everywhere() {
        let cached = Cached::new(Annihilate);
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(cached.transition(a, b), Annihilate.transition(a, b));
                assert_eq!(cached.is_silent(a, b), Annihilate.is_silent(a, b));
            }
        }
        for q in 0..3 {
            assert_eq!(cached.output(q), Annihilate.output(q));
            assert_eq!(cached.state_label(q), Annihilate.state_label(q));
        }
        assert_eq!(cached.input(Opinion::A), Annihilate.input(Opinion::A));
        assert_eq!(cached.input(Opinion::B), Annihilate.input(Opinion::B));
        assert_eq!(cached.name(), Annihilate.name());
    }

    #[test]
    fn accessors_expose_the_inner_protocol() {
        let cached = Cached::new(Voter);
        assert_eq!(cached.inner().num_states(), 2);
        let inner = cached.into_inner();
        assert_eq!(inner.num_states(), 2);
    }

    #[test]
    fn simulation_results_are_identical_under_caching() {
        use crate::engine::{CountSim, Simulator};
        use crate::Config;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        // Same seed → identical trajectory with and without the cache.
        let mut plain = CountSim::new(Voter, Config::from_input(&Voter, 12, 8));
        let mut cached = CountSim::new(
            Cached::new(Voter),
            Config::from_input(&Cached::new(Voter), 12, 8),
        );
        let mut rng1 = SmallRng::seed_from_u64(9);
        let mut rng2 = SmallRng::seed_from_u64(9);
        let a = plain.run_to_consensus(&mut rng1, u64::MAX);
        let b = cached.run_to_consensus(&mut rng2, u64::MAX);
        assert_eq!(a, b);
    }
}
