//! Offline vendored subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! This workspace builds in fully air-gapped environments where crates.io
//! is unreachable, so the handful of `rand` items the simulators actually
//! use are reimplemented here behind the same paths (`rand::Rng`,
//! `rand::RngCore`, `rand::SeedableRng`, `rand::rngs::SmallRng`).
//!
//! The implementation intentionally does **not** promise stream
//! compatibility with upstream `rand`: `SmallRng` here is xoshiro256++
//! seeded via SplitMix64. All golden-trace and determinism tests in this
//! repository are generated against *this* implementation, which is the
//! one source of truth for reproducibility.

#![forbid(unsafe_code)]

pub mod rngs;

mod uniform;

pub use uniform::{SampleRange, SampleUniform, StandardSample};

/// The core of a random number generator: raw unsigned output.
///
/// Object safe, so engines can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator seedable from fixed data.
pub trait SeedableRng: Sized {
    /// Seed material type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// two different seeds give unrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, w) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = w;
            }
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (also used for seed expansion).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (over `T`'s full domain; `[0, 1)`
    /// for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let z: u64 = rng.gen_range(5..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut hist = [0u32; 10];
        for _ in 0..100_000 {
            hist[rng.gen_range(0usize..10)] += 1;
        }
        for &h in &hist {
            assert!((8_000..12_000).contains(&h), "{hist:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_core_supports_gen_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0u64..100);
        assert!(x < 100);
    }
}
