//! SHA-256 content addressing — re-exported from `avc_population::hash`.
//!
//! The implementation originated here (PR 2) but moved down to
//! `avc-population` so scenario hashing and manifest hashing share one
//! digest. This module stays as a shim so `avc_store::hash::sha256_hex`
//! keeps working for existing clients.

pub use avc_population::hash::*;
