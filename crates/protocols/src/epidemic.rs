//! One-way epidemic (broadcast) — the executable form of the `Ω(log n)`
//! lower bound's information-propagation process.
//!
//! Theorem C.1 lower-bounds majority by the time information needs to reach
//! every agent. The *epidemic* protocol is that process as an actual
//! protocol: infected initiators infect susceptible responders, nothing
//! else happens. Its completion time is the classical `Θ(log n)` parallel
//! rumor-spreading time, giving a protocol-level witness that the
//! `Ω(log n)` bound is tight for information propagation itself.

use avc_population::{Opinion, Protocol, StateId};

const INFECTED: StateId = 0;
const SUSCEPTIBLE: StateId = 1;

/// The one-way epidemic: `(infected, susceptible) → (infected, infected)`;
/// every other interaction is silent.
///
/// Outputs: infected agents report [`Opinion::A`], susceptible ones
/// [`Opinion::B`]; `input(A)` seeds an infection. The expected number of
/// steps from `k` infected to full infection is exactly
/// `Σ_{j=k}^{n−1} n(n−1)/(j(n−j))` ([`Epidemic::expected_completion_steps`]),
/// i.e. `≈ 2·n·ln n` from a single seed — `Θ(log n)` parallel time.
///
/// # Example
///
/// ```
/// use avc_population::engine::{CountSim, Simulator};
/// use avc_population::Config;
/// use avc_protocols::Epidemic;
/// use rand::SeedableRng;
///
/// let config = Config::from_input(&Epidemic, 1, 999); // one seed
/// let mut sim = CountSim::new(Epidemic, config);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
/// let out = sim.run_to_consensus(&mut rng, u64::MAX);
/// assert!(out.verdict.is_consensus()); // everyone infected
/// assert!(out.parallel_time < 60.0); // ≈ 2 ln 1000 ≈ 14, w.h.p. well below 60
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Epidemic;

impl Epidemic {
    /// Exact expected steps until all `n` agents are infected, starting
    /// from `k ≥ 1` infected: `Σ_{j=k}^{n−1} n(n−1)/(j(n−j))`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero (the epidemic can never complete) or exceeds
    /// `n`.
    #[must_use]
    pub fn expected_completion_steps(&self, n: u64, k: u64) -> f64 {
        assert!(k >= 1, "need at least one infected agent");
        assert!(k <= n, "cannot have more infected than agents");
        let nn = (n * (n - 1)) as f64;
        (k..n).map(|j| nn / ((j * (n - j)) as f64)).sum()
    }
}

impl Protocol for Epidemic {
    fn num_states(&self) -> u32 {
        2
    }

    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        if initiator == INFECTED && responder == SUSCEPTIBLE {
            (INFECTED, INFECTED)
        } else {
            (initiator, responder)
        }
    }

    fn output(&self, state: StateId) -> Opinion {
        if state == INFECTED {
            Opinion::A
        } else {
            Opinion::B
        }
    }

    fn input(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => INFECTED,
            Opinion::B => SUSCEPTIBLE,
        }
    }

    fn state_label(&self, state: StateId) -> String {
        if state == INFECTED {
            "infected".to_string()
        } else {
            "susceptible".to_string()
        }
    }

    fn name(&self) -> &str {
        "epidemic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_population::engine::{JumpSim, Simulator};
    use avc_population::rngutil::SeedSequence;
    use avc_population::Config;

    #[test]
    fn infection_is_one_way() {
        let p = Epidemic;
        assert_eq!(p.transition(INFECTED, SUSCEPTIBLE), (INFECTED, INFECTED));
        assert!(p.is_silent(SUSCEPTIBLE, INFECTED), "responder cannot pull");
        assert!(p.is_silent(INFECTED, INFECTED));
        assert!(p.is_silent(SUSCEPTIBLE, SUSCEPTIBLE));
    }

    #[test]
    fn simulated_completion_matches_closed_form() {
        let n = 400u64;
        let seeds = SeedSequence::new(8);
        let trials = 120;
        let mut total = 0.0;
        for t in 0..trials {
            let mut rng = seeds.rng_for(t);
            let config = Config::from_input(&Epidemic, 1, n - 1);
            let mut sim = JumpSim::new(Epidemic, config);
            let out = sim.run_to_consensus(&mut rng, u64::MAX);
            assert!(out.verdict.is_consensus());
            total += out.steps as f64;
        }
        let mean = total / trials as f64;
        let expected = Epidemic.expected_completion_steps(n, 1);
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn completion_is_logarithmic_parallel_time() {
        // E[T]/n ≈ 2 ln n.
        for n in [100u64, 1_000, 10_000] {
            let parallel = Epidemic.expected_completion_steps(n, 1) / n as f64;
            let ln_n = (n as f64).ln();
            assert!(
                parallel > 1.5 * ln_n && parallel < 3.0 * ln_n,
                "n={n}: {parallel} vs 2 ln n = {}",
                2.0 * ln_n
            );
        }
    }

    #[test]
    fn closed_form_boundary_cases() {
        assert_eq!(Epidemic.expected_completion_steps(10, 10), 0.0);
        // From n−1 infected: one susceptible, hit at rate (n−1)/(n(n−1)).
        let n = 10u64;
        let last = Epidemic.expected_completion_steps(n, n - 1);
        assert!((last - (n * (n - 1)) as f64 / (n - 1) as f64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one infected")]
    fn rejects_zero_seeds() {
        let _ = Epidemic.expected_completion_steps(10, 0);
    }
}
