//! Seeding utilities for reproducible experiment streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives a stream of independent, reproducible RNGs from a master seed.
///
/// Experiments run many independent trials (the paper reports means over 101
/// runs); each trial gets `rng_for(trial_index)` so results are stable under
/// re-ordering or parallel execution of trials.
///
/// # Example
///
/// ```
/// use avc_population::rngutil::SeedSequence;
/// use rand::Rng;
///
/// let seq = SeedSequence::new(42);
/// let mut r0 = seq.rng_for(0);
/// let mut r0_again = seq.rng_for(0);
/// assert_eq!(r0.gen::<u64>(), r0_again.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    #[must_use]
    pub fn new(master: u64) -> SeedSequence {
        SeedSequence { master }
    }

    /// A reproducible RNG for the given stream index.
    #[must_use]
    pub fn rng_for(&self, stream: u64) -> SmallRng {
        SmallRng::seed_from_u64(mix(self.master, stream))
    }

    /// A derived child sequence (e.g. one per parameter point), independent
    /// of sibling sequences.
    #[must_use]
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence {
            master: mix(self.master, !index),
        }
    }
}

/// SplitMix64-style avalanche mix of a seed and a stream index.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let seq = SeedSequence::new(7);
        let a: u64 = seq.rng_for(3).gen();
        let b: u64 = seq.rng_for(3).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ() {
        let seq = SeedSequence::new(7);
        let a: u64 = seq.rng_for(0).gen();
        let b: u64 = seq.rng_for(1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn children_differ_from_parent_streams() {
        let seq = SeedSequence::new(7);
        let child = seq.child(0);
        let a: u64 = seq.rng_for(0).gen();
        let b: u64 = child.rng_for(0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn mix_avalanches_consecutive_streams() {
        // Consecutive stream indices should produce well-spread seeds.
        let x = mix(1, 0);
        let y = mix(1, 1);
        assert!((x ^ y).count_ones() > 10);
    }
}
