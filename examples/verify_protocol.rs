//! Model-checking your own protocol: is it *exact*?
//!
//! The "undecided-state dynamics" (two-way three-state majority) looks a
//! lot like an exact protocol — opposite opinions cancel into an undecided
//! state, undecided agents adopt decided neighbors. This example runs the
//! repository's verification stack on it: the Theorem-B.1 correctness
//! properties, a concrete counterexample *schedule* you can replay, and the
//! exact expected hitting time of its (sometimes wrong) consensus.
//!
//! Run with: `cargo run --release --example verify_protocol`

use avc::population::{Config, ConvergenceRule, Opinion, Protocol, StateId};
use avc::verify::exact_time::expected_steps_to_convergence;
use avc::verify::reach::check_exact_majority;
use avc::verify::witness::{find_schedule, replay_schedule};

/// Two-way undecided-state dynamics: `(A, B) → (U, U)`; undecided agents
/// adopt any decided partner.
#[derive(Debug, Clone, Copy)]
struct UndecidedDynamics;

const A: StateId = 0;
const B: StateId = 1;
const U: StateId = 2;

impl Protocol for UndecidedDynamics {
    fn num_states(&self) -> u32 {
        3
    }
    fn transition(&self, x: StateId, y: StateId) -> (StateId, StateId) {
        match (x, y) {
            (A, B) | (B, A) => (U, U),
            (U, s) if s != U => (s, s),
            (s, U) if s != U => (s, s),
            other => other,
        }
    }
    fn output(&self, state: StateId) -> Opinion {
        if state == B {
            Opinion::B
        } else {
            Opinion::A
        }
    }
    fn input(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => A,
            Opinion::B => B,
        }
    }
    fn name(&self) -> &str {
        "undecided-dynamics"
    }
}

fn main() {
    let p = UndecidedDynamics;

    // 1. The three exact-majority correctness properties, exhaustively.
    println!("checking exact-majority properties for n = 3..7:");
    let mut first_violation = None;
    for n in 3..=7u64 {
        for a in 1..n {
            let v = check_exact_majority(&p, a, n - a, 500_000).expect("small state space");
            if !v.is_correct() && first_violation.is_none() {
                first_violation = Some((a, n - a, v));
            }
        }
    }
    let (a, b, verdict) = first_violation.expect("undecided dynamics is not exact");
    println!(
        "  violated at a = {a}, b = {b}: never_wrong = {}, always_recoverable = {}",
        verdict.never_wrong, verdict.always_recoverable
    );

    // 2. A concrete counterexample schedule, replayed.
    let initial = Config::from_input(&p, a, b);
    let schedule = find_schedule(&p, &initial, 500_000, |counts| {
        // Goal: all agents output the *minority* opinion B.
        counts[A as usize] == 0 && counts[U as usize] == 0
    })
    .expect("within budget")
    .expect("a minority-consensus schedule exists");
    println!("\ncounterexample schedule from {a} A / {b} B to all-B:");
    for (step, (x, y)) in schedule.iter().enumerate() {
        println!(
            "  step {step}: {} meets {}",
            p.state_label(*x),
            p.state_label(*y)
        );
    }
    let end = replay_schedule(&p, &initial, &schedule).expect("schedule replays");
    assert_eq!(end.count_with_output(&p, Opinion::B), (a + b));
    println!(
        "  replay confirms: all {} agents output B (initial majority was A!)",
        a + b
    );

    // 3. Exact expected time to (some) consensus, from the linear system.
    let exact = expected_steps_to_convergence(
        &p,
        &Config::from_input(&p, 4, 3),
        ConvergenceRule::OutputConsensus,
        500_000,
    )
    .expect("small state space")
    .expect("finite expectation");
    println!("\nexact E[steps to output consensus] from 4 A / 3 B on n = 7: {exact:.3}");
    println!("\nConclusion: fast, simple — but not exact. That trade-off is what AVC removes.");
}
