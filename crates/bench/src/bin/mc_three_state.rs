//! Machine-checks the **three-state impossibility** \[MNRS14] cited in §1:
//! exhaustively enumerates all symmetric three-state protocols and verifies
//! that none solves exact majority on every instance with `n ≤ max_n`.
//!
//! Usage: `cargo run --release -p avc-bench --bin mc_three_state [--quick]
//! [--max-n N] [--out DIR]`

use avc_analysis::cli::Args;
use avc_analysis::experiments::report;
use avc_analysis::table::Table;
use avc_verify::enumerate::three_state_impossibility;

fn main() {
    let args = Args::from_env();
    let max_n = args.get_u64("max-n", if args.flag("quick") { 5 } else { 7 });

    avc_bench::banner(
        "Model check MC-1 (MNRS14 impossibility)",
        &format!("all symmetric 3-state protocols, instances up to n = {max_n}"),
    );

    let started = std::time::Instant::now();
    let outcome = three_state_impossibility(max_n);
    let mut table = Table::new(
        "Exhaustive 3-state enumeration",
        ["candidates", "survivors", "max_n"],
    );
    table.push_row([
        outcome.candidates.to_string(),
        outcome.survivors.to_string(),
        max_n.to_string(),
    ]);
    let out = avc_bench::out_dir(&args);
    report(&table, &out, "mc_three_state");
    println!("wall time: {:?}", started.elapsed());
    assert_eq!(
        outcome.survivors, 0,
        "impossibility violated: some 3-state protocol solved exact majority!"
    );
    println!("✔ no three-state protocol solves exact majority (n ≤ {max_n})");
}
