//! Leader election — the paper's suggested next target for the
//! average-and-conquer technique (§6 discussion).
//!
//! This module provides the classical pairwise-elimination protocol as the
//! baseline the open question is measured against.

use avc_population::{Opinion, Protocol, StateId};

const LEADER: StateId = 0;
const FOLLOWER: StateId = 1;

/// The classical two-state leader-election protocol: when two leaders meet,
/// one of them (the responder) becomes a follower; all other interactions
/// are silent.
///
/// From `ℓ₀` initial leaders, exactly one leader survives forever: the
/// leader count is non-increasing and an interaction between the last two
/// leaders leaves one. Expected convergence is `Θ(n)` parallel time
/// (`Σ_ℓ n²/(ℓ(ℓ−1)) ≈ n²` steps), matching the classical analysis; the
/// paper's open question asks whether averaging-style states can beat it.
///
/// Outputs: leaders map to [`Opinion::A`], followers to [`Opinion::B`].
/// Convergence is detected with
/// [`ConvergenceRule::OutputCount`](avc_population::ConvergenceRule::OutputCount)
/// at `{opinion: A, count: 1}`.
///
/// # Example
///
/// ```
/// use avc_population::engine::{JumpSim, Simulator};
/// use avc_population::{Config, ConvergenceRule, Opinion};
/// use avc_protocols::LeaderElection;
/// use rand::SeedableRng;
///
/// let config = Config::from_counts(vec![100, 0]); // all agents start as leaders
/// let mut sim = JumpSim::new(LeaderElection, config);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let out = sim.run_to_consensus_with(
///     &mut rng,
///     u64::MAX,
///     ConvergenceRule::OutputCount { opinion: Opinion::A, count: 1 },
/// );
/// assert!(out.verdict.is_consensus());
/// assert_eq!(sim.counts()[0], 1); // exactly one leader remains
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct LeaderElection;

impl LeaderElection {
    /// The leader state.
    #[must_use]
    pub fn leader(&self) -> StateId {
        LEADER
    }

    /// The follower state.
    #[must_use]
    pub fn follower(&self) -> StateId {
        FOLLOWER
    }
}

impl Protocol for LeaderElection {
    fn num_states(&self) -> u32 {
        2
    }

    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        if initiator == LEADER && responder == LEADER {
            (LEADER, FOLLOWER)
        } else {
            (initiator, responder)
        }
    }

    fn output(&self, state: StateId) -> Opinion {
        if state == LEADER {
            Opinion::A
        } else {
            Opinion::B
        }
    }

    fn input(&self, opinion: Opinion) -> StateId {
        // Inputs: `A` nodes contend for leadership, `B` nodes start passive.
        match opinion {
            Opinion::A => LEADER,
            Opinion::B => FOLLOWER,
        }
    }

    fn state_label(&self, state: StateId) -> String {
        if state == LEADER {
            "leader".to_string()
        } else {
            "follower".to_string()
        }
    }

    fn name(&self) -> &str {
        "leader-election"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_population::engine::{JumpSim, Simulator};
    use avc_population::{Config, ConvergenceRule};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const ONE_LEADER: ConvergenceRule = ConvergenceRule::OutputCount {
        opinion: Opinion::A,
        count: 1,
    };

    #[test]
    fn leaders_only_eliminate_each_other() {
        let p = LeaderElection;
        assert_eq!(p.transition(LEADER, LEADER), (LEADER, FOLLOWER));
        assert!(p.is_silent(LEADER, FOLLOWER));
        assert!(p.is_silent(FOLLOWER, LEADER));
        assert!(p.is_silent(FOLLOWER, FOLLOWER));
    }

    #[test]
    fn exactly_one_leader_survives() {
        for seed in 0..10 {
            let config = Config::from_counts(vec![64, 36]);
            let mut sim = JumpSim::new(LeaderElection, config);
            let mut rng = SmallRng::seed_from_u64(seed);
            let out = sim.run_to_consensus_with(&mut rng, u64::MAX, ONE_LEADER);
            assert!(out.verdict.is_consensus());
            assert_eq!(sim.counts(), &[1, 99]);
            // Productive events = eliminations = initial leaders − 1.
            assert_eq!(sim.events(), 63);
        }
    }

    #[test]
    fn convergence_is_linear_parallel_time() {
        // E[steps] = Σ_{ℓ=2}^{n} n(n−1)/(ℓ(ℓ−1)) = n(n−1)·(1 − 1/n) ≈ n²,
        // so parallel time ≈ n. Check within a generous band.
        let n = 200u64;
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 30;
        let mut total = 0.0;
        for _ in 0..trials {
            let config = Config::from_counts(vec![n, 0]);
            let mut sim = JumpSim::new(LeaderElection, config);
            let out = sim.run_to_consensus_with(&mut rng, u64::MAX, ONE_LEADER);
            total += out.parallel_time;
        }
        let mean = total / trials as f64;
        let expected = (n - 1) as f64 * (1.0 - 1.0 / n as f64);
        assert!(
            (mean - expected).abs() / expected < 0.25,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn single_initial_leader_is_immediately_stable() {
        let config = Config::from_counts(vec![1, 9]);
        let mut sim = JumpSim::new(LeaderElection, config);
        let mut rng = SmallRng::seed_from_u64(4);
        let out = sim.run_to_consensus_with(&mut rng, 1_000, ONE_LEADER);
        assert_eq!(out.steps, 0);
        assert!(out.verdict.is_consensus());
    }
}
