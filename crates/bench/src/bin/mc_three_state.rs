//! Machine-checks the **three-state impossibility** \[MNRS14] cited in §1:
//! exhaustively enumerates all symmetric three-state protocols and verifies
//! that none solves exact majority on every instance with `n ≤ max_n`.
//!
//! Alias for `avc sweep mc_three_state` followed by `avc export
//! mc_three_state` (flags: `--quick --max-n --out`), with checkpoint/resume
//! through the result store.

fn main() {
    avc_store::cli::legacy("mc_three_state");
}
