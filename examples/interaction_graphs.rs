//! The four-state protocol beyond the clique: [DV12] analyzed it on
//! arbitrary connected interaction graphs, with convergence governed by the
//! graph's spectral gap. This example measures its slowdown across
//! topologies at a fixed margin.
//!
//! Run with: `cargo run --release --example interaction_graphs`

use avc::analysis::stats::Summary;
use avc::analysis::table::{fmt_num, Table};
use avc::population::engine::{AgentSim, Simulator};
use avc::population::graph::Graph;
use avc::population::rngutil::SeedSequence;
use avc::population::{Config, MajorityInstance};
use avc::protocols::FourState;

type Topology = (&'static str, Box<dyn Fn() -> Graph>);

fn main() {
    let n = 501usize;
    let instance = MajorityInstance::with_margin(n as u64, 0.2);
    let runs = 25u64;
    let seeds = SeedSequence::new(42);

    let mut table = Table::new(
        format!(
            "four-state protocol across interaction graphs (n = {n}, eps = {:.2}, {runs} runs)",
            instance.margin()
        ),
        ["graph", "edges", "mean_parallel_time", "std_dev", "errors"],
    );

    let topologies: Vec<Topology> = vec![
        ("clique", Box::new(move || Graph::clique(n))),
        ("star", Box::new(move || Graph::star(n))),
        ("grid ~22x23", Box::new(move || Graph::grid(22, 23))),
        ("cycle", Box::new(move || Graph::cycle(n))),
    ];

    for (gi, (label, make_graph)) in topologies.iter().enumerate() {
        let mut times = Vec::new();
        let mut errors = 0u64;
        for trial in 0..runs {
            let mut rng = seeds.child(gi as u64).rng_for(trial);
            let config = Config::from_input(&FourState, instance.a(), instance.b());
            let mut sim = AgentSim::new(FourState, config, make_graph());
            let out = sim.run_to_consensus(&mut rng, 2_000_000_000);
            match out.verdict.opinion() {
                Some(op) if Some(op) == instance.winner() => times.push(out.parallel_time),
                _ => errors += 1,
            }
        }
        let summary = Summary::from_samples(&times);
        table.push_row([
            label.to_string(),
            make_graph().num_edges().to_string(),
            fmt_num(summary.mean),
            fmt_num(summary.std_dev),
            errors.to_string(),
        ]);
    }

    println!("{}", table.to_markdown());
    println!("Exactness holds on every connected graph; only the speed changes.");
}
