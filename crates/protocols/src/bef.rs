//! The Berenbrink–Elsässer–Friedetzky cancel/split exact-majority protocol
//! \[BEF18, arXiv:1805.05157].
//!
//! Agents carry signed power-of-two *tokens*. An agent is either **active**
//! at a level `ℓ ∈ 0..=L`, holding value `sign · 2^{L−ℓ}`, or **inactive**
//! with value `0` and a remembered *bias* (the sign of the last token it
//! saw retired). Opinion `A` enters as `+2^L`, opinion `B` as `−2^L`, so
//! the configuration-wide token sum is conserved at `(a − b) · 2^L` by
//! every rule:
//!
//! * **cancel** — `±2^{L−ℓ}` meets `∓2^{L−ℓ}`: both become inactive.
//! * **split** — an active below the bottom level meets an inactive: the
//!   token halves into two tokens one level down (`2^{L−ℓ} = 2 · 2^{L−ℓ−1}`).
//! * **merge** — two same-sign tokens at the same level `ℓ ≥ 1` combine one
//!   level up, freeing an inactive. This is the recovery rule: without it,
//!   populations can freeze with opposite-sign tokens stranded at disjoint
//!   levels (reachable already at `n = 5`, `L = 2`).
//! * **adopt** — a bottom-level (`ℓ = L`, value `±1`) active stamps its
//!   sign onto inactive biases, broadcasting the surviving majority.
//!
//! Exactness is unconditional: all agents outputting the minority sign
//! would force the conserved sum to the wrong side of zero. The merge rule
//! additionally makes every *silent* configuration a consensus (or an
//! exact tie): in a frozen configuration each level above `0` holds at
//! most one token and opposite signs never share a level, so the sum's
//! low bits could not vanish unless only level `0` — a single sign — is
//! populated.
//!
//! This reproduction keeps \[BEF18]'s token dynamics but drops the paper's
//! phase clock; levels desynchronize freely and the merge rule stands in
//! for the clocked resynchronization. The state count `2L + 4` matches the
//! paper's `Θ(log n)` space when `L ≈ log₂ n`. With `L = 0` the protocol
//! degenerates to the four-state protocol (cancel + adopt only).
//!
//! Like \[BEF18], the protocol assumes the complete interaction graph.
//! Token mass never changes position except by splitting into a partner —
//! in particular `adopt` stamps the inactive partner but leaves the active
//! token where it is — so on a restricted graph (e.g. the cycle) a lone
//! surviving level-`L` token can only ever reach its immediate neighbors
//! and stale biases farther away are never corrected. Exactness still
//! holds there (the sum invariant is graph-independent), but convergence
//! does not: on graphs of diameter above two the last token can be pinned
//! arbitrarily far from a stale bias, so convergence sweeps pair this
//! protocol with complete-graph schedulers (uniform, biased, starved,
//! epoch) or the star, never the cycle.

use avc_population::{Opinion, Protocol, StateId};
use std::fmt;

/// Parameter error for [`Bef::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BefParameterError {
    /// `levels` must be in `1..=Bef::MAX_LEVELS`.
    InvalidLevels(u32),
}

impl fmt::Display for BefParameterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BefParameterError::InvalidLevels(l) => {
                write!(f, "levels must be in 1..={}, got {l}", Bef::MAX_LEVELS)
            }
        }
    }
}

impl std::error::Error for BefParameterError {}

/// Inactive with bias `A` (value 0, outputs `A`).
const INACTIVE_A: StateId = 0;
/// Inactive with bias `B` (value 0, outputs `B`).
const INACTIVE_B: StateId = 1;

/// The \[BEF18] cancel/split/merge exact-majority protocol with `L`
/// levels (`2L + 4` states).
#[derive(Debug, Clone)]
pub struct Bef {
    levels: u32,
    name: String,
}

/// A decoded [`Bef`] state: an inactive bias or an active signed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BefState {
    /// Inactive; remembers the sign it would output.
    Inactive(Opinion),
    /// Active token of value `sign · 2^{L−level}`.
    Active {
        /// Token sign (`A` = `+`, `B` = `−`).
        sign: Opinion,
        /// Level `0..=L`; value halves as the level grows.
        level: u32,
    },
}

impl Bef {
    /// Maximum supported number of levels (token values stay well inside
    /// `i64` even when summed over large populations).
    pub const MAX_LEVELS: u32 = 32;

    /// Creates the protocol with `levels ∈ 1..=`[`Bef::MAX_LEVELS`] levels
    /// below the input tokens (input value `2^levels`, bottom value `1`).
    pub fn new(levels: u32) -> Result<Bef, BefParameterError> {
        if levels == 0 || levels > Bef::MAX_LEVELS {
            return Err(BefParameterError::InvalidLevels(levels));
        }
        Ok(Bef {
            levels,
            name: format!("bef(l={levels})"),
        })
    }

    /// Number of levels `L`.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    fn decode(&self, state: StateId) -> BefState {
        match state {
            INACTIVE_A => BefState::Inactive(Opinion::A),
            INACTIVE_B => BefState::Inactive(Opinion::B),
            _ => {
                let idx = state - 2;
                let per_sign = self.levels + 1;
                debug_assert!(idx < 2 * per_sign, "state {state} out of range");
                if idx < per_sign {
                    BefState::Active {
                        sign: Opinion::A,
                        level: idx,
                    }
                } else {
                    BefState::Active {
                        sign: Opinion::B,
                        level: idx - per_sign,
                    }
                }
            }
        }
    }

    fn encode(&self, state: BefState) -> StateId {
        match state {
            BefState::Inactive(Opinion::A) => INACTIVE_A,
            BefState::Inactive(Opinion::B) => INACTIVE_B,
            BefState::Active { sign, level } => {
                debug_assert!(level <= self.levels);
                let base = match sign {
                    Opinion::A => 2,
                    Opinion::B => 2 + self.levels + 1,
                };
                base + level
            }
        }
    }

    /// The conserved token value of a state: `sign · 2^{L−ℓ}` for actives,
    /// `0` for inactives. The configuration sum is invariant under every
    /// transition and equals `(a − b) · 2^L`.
    #[must_use]
    pub fn value_of(&self, state: StateId) -> i64 {
        match self.decode(state) {
            BefState::Inactive(_) => 0,
            BefState::Active { sign, level } => {
                let magnitude = 1i64 << (self.levels - level);
                match sign {
                    Opinion::A => magnitude,
                    Opinion::B => -magnitude,
                }
            }
        }
    }
}

impl Protocol for Bef {
    fn num_states(&self) -> u32 {
        2 * (self.levels + 1) + 2
    }

    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        use BefState::{Active, Inactive};
        let (x, y) = (self.decode(initiator), self.decode(responder));
        let (x2, y2) = match (x, y) {
            (
                Active {
                    sign: sx,
                    level: lx,
                },
                Active {
                    sign: sy,
                    level: ly,
                },
            ) => {
                if lx == ly && sx != sy {
                    // Cancel: opposite equal tokens retire each other.
                    (Inactive(sx), Inactive(sy))
                } else if lx == ly && lx >= 1 {
                    // Merge: two equal same-sign tokens combine one level
                    // up; the responder's slot becomes inactive.
                    (
                        Active {
                            sign: sx,
                            level: lx - 1,
                        },
                        Inactive(sx),
                    )
                } else {
                    // Different levels never react (values cannot combine
                    // into a single power of two).
                    (x, y)
                }
            }
            (Active { sign, level }, Inactive(bias)) => {
                if level < self.levels {
                    // Split: the token halves into both agents.
                    let child = Active {
                        sign,
                        level: level + 1,
                    };
                    (child, child)
                } else if bias != sign {
                    // Adopt: a bottom-level token stamps its sign.
                    (x, Inactive(sign))
                } else {
                    (x, y)
                }
            }
            (Inactive(bias), Active { sign, level }) => {
                if level < self.levels {
                    let child = Active {
                        sign,
                        level: level + 1,
                    };
                    (child, child)
                } else if bias != sign {
                    (Inactive(sign), y)
                } else {
                    (x, y)
                }
            }
            (Inactive(_), Inactive(_)) => (x, y),
        };
        (self.encode(x2), self.encode(y2))
    }

    fn output(&self, state: StateId) -> Opinion {
        match self.decode(state) {
            BefState::Inactive(bias) => bias,
            BefState::Active { sign, .. } => sign,
        }
    }

    fn input(&self, opinion: Opinion) -> StateId {
        self.encode(BefState::Active {
            sign: opinion,
            level: 0,
        })
    }

    fn state_label(&self, state: StateId) -> String {
        match self.decode(state) {
            BefState::Inactive(Opinion::A) => "0+".to_string(),
            BefState::Inactive(Opinion::B) => "0-".to_string(),
            BefState::Active { sign, level } => {
                let magnitude = 1u64 << (self.levels - level);
                match sign {
                    Opinion::A => format!("+{magnitude}"),
                    Opinion::B => format!("-{magnitude}"),
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_population::engine::{CountSim, Simulator};
    use avc_population::rngutil::SeedSequence;
    use avc_population::Config;

    fn total_value(p: &Bef, counts: &[u64]) -> i64 {
        counts
            .iter()
            .enumerate()
            .map(|(q, &c)| p.value_of(q as StateId) * c as i64)
            .sum()
    }

    #[test]
    fn parameter_validation() {
        assert!(Bef::new(0).is_err());
        assert!(Bef::new(Bef::MAX_LEVELS + 1).is_err());
        assert_eq!(
            Bef::new(0).unwrap_err().to_string(),
            format!("levels must be in 1..={}, got 0", Bef::MAX_LEVELS)
        );
        let p = Bef::new(8).expect("valid");
        assert_eq!(p.num_states(), 20);
        assert_eq!(p.name(), "bef(l=8)");
    }

    #[test]
    fn encode_decode_roundtrip_and_labels() {
        let p = Bef::new(3).expect("valid");
        for q in 0..p.num_states() {
            assert_eq!(p.encode(p.decode(q)), q);
        }
        assert_eq!(p.state_label(p.input(Opinion::A)), "+8");
        assert_eq!(p.state_label(p.input(Opinion::B)), "-8");
        assert_eq!(p.state_label(INACTIVE_A), "0+");
        assert_eq!(p.state_label(INACTIVE_B), "0-");
    }

    #[test]
    fn inputs_carry_the_full_weight() {
        let p = Bef::new(5).expect("valid");
        assert_eq!(p.value_of(p.input(Opinion::A)), 32);
        assert_eq!(p.value_of(p.input(Opinion::B)), -32);
        assert_eq!(p.output(p.input(Opinion::A)), Opinion::A);
        assert_eq!(p.output(p.input(Opinion::B)), Opinion::B);
    }

    #[test]
    fn every_transition_conserves_token_value() {
        let p = Bef::new(4).expect("valid");
        let s = p.num_states();
        for a in 0..s {
            for b in 0..s {
                let (a2, b2) = p.transition(a, b);
                assert!(a2 < s && b2 < s, "transition escaped the state space");
                assert_eq!(
                    p.value_of(a) + p.value_of(b),
                    p.value_of(a2) + p.value_of(b2),
                    "value not conserved on ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn named_rules_fire() {
        let p = Bef::new(2).expect("valid");
        let a0 = p.input(Opinion::A); // +4
        let b0 = p.input(Opinion::B); // −4
                                      // Cancel at the top level.
        assert_eq!(p.transition(a0, b0), (INACTIVE_A, INACTIVE_B));
        // Split: +4 meets an inactive → two +2.
        let (x, y) = p.transition(a0, INACTIVE_B);
        assert_eq!(x, y);
        assert_eq!(p.value_of(x), 2);
        // Merge: two +2 → one +4 plus an inactive biased A.
        let (m, i) = p.transition(x, y);
        assert_eq!(p.value_of(m), 4);
        assert_eq!(i, INACTIVE_A);
        // Adopt: a bottom-level token (+1) stamps biases but never splits.
        let plus_one = {
            let (c, _) = p.transition(x, INACTIVE_B);
            c
        };
        assert_eq!(p.value_of(plus_one), 1);
        assert_eq!(p.transition(plus_one, INACTIVE_B), (plus_one, INACTIVE_A));
        assert!(p.is_silent(plus_one, INACTIVE_A));
    }

    #[test]
    fn silent_pairs() {
        let p = Bef::new(3).expect("valid");
        // Inactive pairs are silent; unequal active levels are silent.
        assert!(p.is_silent(INACTIVE_A, INACTIVE_B));
        let a0 = p.input(Opinion::A);
        let (a1, _) = p.transition(a0, INACTIVE_A);
        assert!(p.is_silent(a0, a1));
        let b0 = p.input(Opinion::B);
        let (b1, _) = p.transition(b0, INACTIVE_A);
        assert!(p.is_silent(a0, b1));
        assert!(!p.is_silent(a0, b0));
        assert!(!p.is_silent(a1, b1));
    }

    #[test]
    fn converges_exactly_on_small_populations() {
        let p = Bef::new(4).expect("valid");
        let seeds = SeedSequence::new(0xBEF);
        for trial in 0..40u64 {
            let (a, b) = if trial % 2 == 0 { (6, 5) } else { (4, 7) };
            let winner = if a > b { Opinion::A } else { Opinion::B };
            let config = Config::from_input(&p, a, b);
            let mut sim = CountSim::new(p.clone(), config);
            let mut rng = seeds.rng_for(trial);
            let out = sim.run_to_consensus(&mut rng, 2_000_000);
            assert_eq!(
                out.verdict.opinion(),
                Some(winner),
                "wrong or missing consensus in trial {trial}"
            );
        }
    }

    #[test]
    fn token_sum_is_invariant_along_a_run() {
        let p = Bef::new(5).expect("valid");
        let (a, b) = (30u64, 21u64);
        let expected = (a as i64 - b as i64) * (1i64 << 5);
        let config = Config::from_input(&p, a, b);
        let mut sim = CountSim::new(p.clone(), config);
        let mut rng = SeedSequence::new(7).rng_for(0);
        for _ in 0..20_000 {
            if sim.advance(&mut rng) == 0 {
                break;
            }
            assert_eq!(total_value(&p, sim.counts()), expected);
        }
    }
}
