//! Weighted categorical sampling backed by a Fenwick (binary indexed) tree.
//!
//! The count-based engines need to repeatedly draw a state index with
//! probability proportional to its agent count, under counts that change by
//! ±1 after every interaction. A Fenwick tree supports both the point update
//! and the inverse-CDF draw in `O(log s)`.
//!
//! For small state spaces (`len <= 64`, which covers every constant-state
//! protocol in the paper) the inverse-CDF draw instead does a branchless
//! linear scan over a flat copy of the weights: at that size the whole
//! distribution is one or two cache lines, and the scan's independent
//! adds beat the tree descent's chain of dependent loads by a wide margin.
//! Both paths compute the same function, so which one runs is invisible to
//! callers and to the RNG stream.

use rand::Rng;

/// A dynamic categorical distribution over `0..len` with `u64` weights.
///
/// # Example
///
/// ```
/// use avc_population::sampler::FenwickSampler;
/// use rand::SeedableRng;
///
/// let mut sampler = FenwickSampler::from_weights(&[2, 0, 3]);
/// assert_eq!(sampler.total(), 5);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let i = sampler.sample(&mut rng).unwrap();
/// assert!(i == 0 || i == 2);
/// sampler.add(0, -2);
/// assert_eq!(sampler.weight(0), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FenwickSampler {
    /// `tree[i]` holds the sum of a block of weights ending at index `i`
    /// (1-based Fenwick layout; `tree[0]` is unused). The tree is padded to
    /// a power-of-two capacity with zero-weight categories so the inverse-CDF
    /// descent needs no bounds checks and every level's probe is a plain
    /// load — the padding is invisible to callers (`len` stays the logical
    /// category count, and padded categories can never be selected because
    /// their weight is zero).
    tree: Vec<u64>,
    /// Plain copy of the current weights. Serves `weight()` in O(1) and the
    /// linear-scan select fast path for small `len`.
    leaves: Vec<u64>,
    len: usize,
    total: u64,
    /// Padded capacity: the smallest power of two `≥ len` (`0` when empty).
    top_bit: usize,
}

/// At or below this many categories, `select`/`select_pair` scan the flat
/// weight array instead of descending the tree: a branchless cumulative
/// scan over one or two cache lines beats the tree's chain of dependent
/// loads. Above it, the `O(log len)` descent wins.
const LINEAR_SCAN_LIMIT: usize = 64;

impl FenwickSampler {
    /// Creates a sampler over `len` categories, all with weight zero.
    #[must_use]
    pub fn new(len: usize) -> FenwickSampler {
        let top_bit = if len == 0 { 0 } else { len.next_power_of_two() };
        FenwickSampler {
            tree: vec![0; top_bit + 1],
            leaves: vec![0; len],
            len,
            total: 0,
            top_bit,
        }
    }

    /// Creates a sampler initialized with the given weights.
    #[must_use]
    pub fn from_weights(weights: &[u64]) -> FenwickSampler {
        let mut sampler = FenwickSampler::new(weights.len());
        // O(capacity) bulk build: seed the leaves, then accumulate each node
        // into its parent block (padded nodes carry partial sums of real
        // leaves, so they propagate too).
        sampler.leaves.copy_from_slice(weights);
        for (i, &w) in weights.iter().enumerate() {
            sampler.tree[i + 1] = w;
            sampler.total += w;
        }
        for i in 1..=sampler.top_bit {
            let parent = i + (i & i.wrapping_neg());
            if parent <= sampler.top_bit {
                let v = sampler.tree[i];
                sampler.tree[parent] += v;
            }
        }
        sampler
    }

    /// Overwrites every weight in place, reusing the existing allocations.
    ///
    /// Equivalent to `*self = FenwickSampler::from_weights(weights)` —
    /// the rebuilt tree is bit-identical to a fresh build, including the
    /// padded parents — but performs no heap allocation, which is what the
    /// engines' trial-batch `reset` seam needs.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the sampler's category count
    /// (a reused sampler keeps its shape; changing `len` would need a
    /// realloc anyway, so callers should construct a new sampler instead).
    pub fn reassign(&mut self, weights: &[u64]) {
        assert_eq!(
            weights.len(),
            self.len,
            "reassign must keep the category count"
        );
        self.tree.fill(0);
        self.total = 0;
        self.leaves.copy_from_slice(weights);
        for (i, &w) in weights.iter().enumerate() {
            self.tree[i + 1] = w;
            self.total += w;
        }
        for i in 1..=self.top_bit {
            let parent = i + (i & i.wrapping_neg());
            if parent <= self.top_bit {
                let v = self.tree[i];
                self.tree[parent] += v;
            }
        }
    }

    /// Number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sampler has zero categories.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all weights.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Levels a `select`/`select_pair` tree descent walks at the current
    /// size: `0` on the linear-scan fast path (`len <= 64`), else
    /// `log₂(top_bit)`. Constant per sampler, so telemetry can record it
    /// without touching the descent itself.
    #[must_use]
    pub fn descent_depth(&self) -> u32 {
        if self.len <= LINEAR_SCAN_LIMIT {
            0
        } else {
            self.top_bit.trailing_zeros()
        }
    }

    /// Adds `delta` to the weight of category `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the weight would underflow.
    pub fn add(&mut self, index: usize, delta: i64) {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        if delta >= 0 {
            let d = delta as u64;
            self.total += d;
            self.leaves[index] += d;
            let mut i = index + 1;
            while i <= self.top_bit {
                self.tree[i] += d;
                i += i & i.wrapping_neg();
            }
        } else {
            let d = delta.unsigned_abs();
            assert!(self.weight(index) >= d, "weight underflow at index {index}");
            self.total -= d;
            self.leaves[index] -= d;
            let mut i = index + 1;
            while i <= self.top_bit {
                self.tree[i] -= d;
                i += i & i.wrapping_neg();
            }
        }
    }

    /// Current weight of category `index`.
    #[must_use]
    pub fn weight(&self, index: usize) -> u64 {
        self.leaves[index]
    }

    /// Sum of weights of categories `0..end`.
    #[must_use]
    pub fn prefix_sum(&self, end: usize) -> u64 {
        let mut i = end.min(self.len);
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Finds the smallest index whose prefix-inclusive cumulative weight
    /// exceeds `target` (i.e. the inverse CDF at `target`).
    ///
    /// # Panics
    ///
    /// Panics if `target >= total()`.
    #[must_use]
    pub fn select(&self, target: u64) -> usize {
        assert!(target < self.total, "select target beyond total weight");
        if self.len <= LINEAR_SCAN_LIMIT {
            // Branchless cumulative scan: count the categories whose
            // inclusive prefix sum is still `<= target`; that count is the
            // selected index. No data-dependent branches, no dependent loads.
            let mut acc = 0u64;
            let mut pos = 0usize;
            for &w in &self.leaves {
                acc += w;
                pos += (acc <= target) as usize;
            }
            return pos;
        }
        let mut rem = target;
        let mut pos = 0;
        // The padded root `tree[top_bit]` is the full sum, which a target
        // `< total` can never take, so the descent starts one level below.
        let mut step = self.top_bit >> 1;
        // Branchless descent: with the tree padded to a power of two,
        // `pos + step` is always in bounds, and the take/skip decision is a
        // mask instead of a data-dependent branch. Padded categories have
        // weight zero, so a target `< total` can never land on one.
        while step > 0 {
            let v = self.tree[pos + step];
            let take = (v <= rem) as u64;
            rem -= v & take.wrapping_neg();
            pos += step & (take as usize).wrapping_neg();
            step >>= 1;
        }
        pos // 0-based index of the selected category
    }

    /// Runs the inverse-CDF walks for `target` and `target + 1` in a single
    /// fused descent, returning `(select(target), select(target + 1))`.
    ///
    /// The two walkers probe the same tree node at every level until their
    /// paths diverge, so the second answer is nearly free compared to two
    /// independent walks. The results are bit-identical to calling
    /// [`FenwickSampler::select`] twice.
    ///
    /// # Panics
    ///
    /// Panics if `target + 1 >= total()`.
    #[must_use]
    pub fn select_pair(&self, target: u64) -> (usize, usize) {
        assert!(
            target < self.total && target + 1 < self.total,
            "select_pair target beyond total weight"
        );
        if self.len <= LINEAR_SCAN_LIMIT {
            let mut acc = 0u64;
            let mut pos0 = 0usize;
            let mut pos1 = 0usize;
            for &w in &self.leaves {
                acc += w;
                pos0 += (acc <= target) as usize;
                pos1 += (acc <= target + 1) as usize;
            }
            return (pos0, pos1);
        }
        let mut rem0 = target;
        let mut rem1 = target + 1;
        let mut pos0 = 0;
        let mut pos1 = 0;
        let mut step = self.top_bit >> 1;
        while step > 0 {
            let v0 = self.tree[pos0 + step];
            let take0 = (v0 <= rem0) as u64;
            rem0 -= v0 & take0.wrapping_neg();
            pos0 += step & (take0 as usize).wrapping_neg();
            let v1 = self.tree[pos1 + step];
            let take1 = (v1 <= rem1) as u64;
            rem1 -= v1 & take1.wrapping_neg();
            pos1 += step & (take1 as usize).wrapping_neg();
            step >>= 1;
        }
        (pos0, pos1)
    }

    /// Draws a category with probability proportional to its weight.
    ///
    /// Returns `None` if the total weight is zero.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        Some(self.select(rng.gen_range(0..self.total)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn build_matches_incremental() {
        let weights = [3u64, 0, 7, 1, 0, 0, 5, 2, 9];
        let bulk = FenwickSampler::from_weights(&weights);
        let mut inc = FenwickSampler::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            inc.add(i, w as i64);
        }
        assert_eq!(bulk.total(), inc.total());
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(bulk.weight(i), w);
            assert_eq!(inc.weight(i), w);
            assert_eq!(bulk.prefix_sum(i), inc.prefix_sum(i));
        }
    }

    #[test]
    fn select_walks_cdf_boundaries() {
        let s = FenwickSampler::from_weights(&[2, 0, 3, 1]);
        assert_eq!(s.select(0), 0);
        assert_eq!(s.select(1), 0);
        assert_eq!(s.select(2), 2);
        assert_eq!(s.select(4), 2);
        assert_eq!(s.select(5), 3);
    }

    #[test]
    #[should_panic(expected = "beyond total")]
    fn select_rejects_out_of_range_target() {
        let s = FenwickSampler::from_weights(&[1, 1]);
        let _ = s.select(2);
    }

    #[test]
    fn add_and_remove_roundtrips() {
        let mut s = FenwickSampler::from_weights(&[5, 5, 5]);
        s.add(1, -5);
        assert_eq!(s.weight(1), 0);
        assert_eq!(s.total(), 10);
        s.add(1, 2);
        assert_eq!(s.weight(1), 2);
        assert_eq!(s.total(), 12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn add_rejects_underflow() {
        let mut s = FenwickSampler::from_weights(&[1]);
        s.add(0, -2);
    }

    #[test]
    fn sample_respects_zero_weights() {
        let s = FenwickSampler::from_weights(&[0, 4, 0]);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), Some(1));
        }
    }

    #[test]
    fn sample_none_when_empty_weight() {
        let s = FenwickSampler::from_weights(&[0, 0]);
        let mut rng = SmallRng::seed_from_u64(42);
        assert_eq!(s.sample(&mut rng), None);
    }

    #[test]
    fn sample_frequencies_roughly_proportional() {
        let s = FenwickSampler::from_weights(&[1, 3, 6]);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hits = [0u64; 3];
        let trials = 100_000;
        for _ in 0..trials {
            hits[s.sample(&mut rng).unwrap()] += 1;
        }
        // Expected proportions 0.1 / 0.3 / 0.6 with ±2% slack.
        assert!((hits[0] as f64 / trials as f64 - 0.1).abs() < 0.02);
        assert!((hits[1] as f64 / trials as f64 - 0.3).abs() < 0.02);
        assert!((hits[2] as f64 / trials as f64 - 0.6).abs() < 0.02);
    }

    #[test]
    fn new_zero_categories_is_inert() {
        let s = FenwickSampler::new(0);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.top_bit, 0);
        assert_eq!(s.prefix_sum(0), 0);
        assert_eq!(s.prefix_sum(10), 0);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(s.sample(&mut rng), None);
    }

    #[test]
    fn top_bit_is_padded_capacity() {
        assert_eq!(FenwickSampler::new(0).top_bit, 0);
        for (len, expected) in [
            (1usize, 1usize),
            (2, 2),
            (3, 4),
            (4, 4),
            (5, 8),
            (7, 8),
            (8, 8),
            (9, 16),
            (100, 128),
            (1000, 1024),
            (1024, 1024),
        ] {
            let s = FenwickSampler::new(len);
            assert_eq!(s.top_bit, expected, "len {len}");
            assert_eq!(s.tree.len(), expected + 1, "len {len}");
        }
    }

    #[test]
    fn single_category_absorbs_everything() {
        let mut s = FenwickSampler::from_weights(&[7]);
        assert_eq!(s.total(), 7);
        for t in 0..7 {
            assert_eq!(s.select(t), 0);
        }
        for t in 0..6 {
            assert_eq!(s.select_pair(t), (0, 0));
        }
        s.add(0, -7);
        assert_eq!(s.total(), 0);
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(s.sample(&mut rng), None);
    }

    #[test]
    fn total_weight_one_always_hits_the_unit_category() {
        let s = FenwickSampler::from_weights(&[0, 0, 1, 0]);
        assert_eq!(s.total(), 1);
        assert_eq!(s.select(0), 2);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng), Some(2));
        }
    }

    #[test]
    fn weight_to_zero_and_back_is_consistent() {
        let mut s = FenwickSampler::from_weights(&[4, 6, 2]);
        s.add(1, -6);
        assert_eq!(s.weight(1), 0);
        assert_eq!(s.total(), 6);
        // With category 1 empty, targets inside what used to be its range
        // must fall through to category 2.
        assert_eq!(s.select(3), 0);
        assert_eq!(s.select(4), 2);
        assert_eq!(s.select(5), 2);
        s.add(1, 6);
        assert_eq!(s.weight(1), 6);
        assert_eq!(s.total(), 12);
        assert_eq!(s.select(4), 1);
        assert_eq!(s.select(10), 2);
        // The tree must be bit-identical to a fresh build of the same
        // weights, including the padded parents.
        let fresh = FenwickSampler::from_weights(&[4, 6, 2]);
        assert_eq!(s.tree, fresh.tree);
    }

    #[test]
    fn reassign_matches_fresh_build_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(31);
        use rand::Rng;
        for len in [1usize, 3, 8, 64, 257] {
            let first: Vec<u64> = (0..len).map(|_| rng.gen_range(0..9)).collect();
            let second: Vec<u64> = (0..len).map(|_| rng.gen_range(0..9)).collect();
            let mut reused = FenwickSampler::from_weights(&first);
            // Dirty the tree with some churn before reassigning.
            if reused.weight(0) > 0 {
                reused.add(0, -1);
            }
            reused.add(len - 1, 5);
            reused.reassign(&second);
            let fresh = FenwickSampler::from_weights(&second);
            assert_eq!(reused.tree, fresh.tree, "len {len}");
            assert_eq!(reused.leaves, fresh.leaves, "len {len}");
            assert_eq!(reused.total(), fresh.total(), "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "category count")]
    fn reassign_rejects_shape_changes() {
        let mut s = FenwickSampler::from_weights(&[1, 2, 3]);
        s.reassign(&[1, 2]);
    }

    #[test]
    fn select_pair_matches_two_independent_walks() {
        let mut rng = SmallRng::seed_from_u64(2024);
        use rand::Rng;
        for len in [1usize, 2, 3, 5, 8, 13, 64, 257] {
            let weights: Vec<u64> = (0..len).map(|_| rng.gen_range(0..5)).collect();
            let s = FenwickSampler::from_weights(&weights);
            if s.total() < 2 {
                continue;
            }
            for _ in 0..200 {
                let t = rng.gen_range(0..s.total() - 1);
                assert_eq!(s.select_pair(t), (s.select(t), s.select(t + 1)));
            }
        }
    }

    /// The linear-scan fast path and the tree descent must agree exactly;
    /// straddle the cutoff and force both paths onto the same weights by
    /// appending zero-weight categories to push `len` past the limit.
    #[test]
    fn linear_scan_agrees_with_tree_descent_across_the_cutoff() {
        let mut rng = SmallRng::seed_from_u64(77);
        use rand::Rng;
        for len in [1usize, 4, 63, 64, 65, 128] {
            let weights: Vec<u64> = (0..len).map(|_| rng.gen_range(0..5)).collect();
            let small = FenwickSampler::from_weights(&weights);
            let mut padded = weights.clone();
            padded.resize(len.max(LINEAR_SCAN_LIMIT + 1), 0);
            let large = FenwickSampler::from_weights(&padded);
            assert!(large.len() > LINEAR_SCAN_LIMIT);
            assert_eq!(small.total(), large.total());
            for t in 0..small.total() {
                assert_eq!(small.select(t), large.select(t), "len {len} target {t}");
            }
            for t in 0..small.total().saturating_sub(1) {
                assert_eq!(
                    small.select_pair(t),
                    large.select_pair(t),
                    "len {len} target {t}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "beyond total")]
    fn select_pair_rejects_target_whose_successor_overflows_total() {
        let s = FenwickSampler::from_weights(&[1, 1]);
        let _ = s.select_pair(1);
    }

    #[test]
    fn works_at_non_power_of_two_lengths() {
        for len in [1usize, 2, 3, 5, 13, 100, 1000] {
            let weights: Vec<u64> = (0..len as u64).map(|i| i % 7).collect();
            let s = FenwickSampler::from_weights(&weights);
            let total: u64 = weights.iter().sum();
            assert_eq!(s.total(), total);
            // Every boundary target selects the right category.
            let mut acc = 0;
            for (i, &w) in weights.iter().enumerate() {
                if w > 0 {
                    assert_eq!(s.select(acc), i);
                    assert_eq!(s.select(acc + w - 1), i);
                }
                acc += w;
            }
        }
    }
}
