//! Species-count simulation engine for the complete graph.

use crate::config::Config;
use crate::engine::{AdvanceReport, ChunkedSimulator, Simulator, StopCondition, StopReason};
use crate::faults::{Fault, FaultError};
use crate::protocol::{Opinion, Protocol, StateId};
use crate::sampler::FenwickSampler;
use avc_telemetry::{NoopSink, Sink};
use rand::{Rng, RngCore};

/// A count-based engine: `O(log s)` per step, `O(s)` memory.
///
/// On a clique all agents in the same state are interchangeable, so the
/// engine stores only the number of agents per state and samples the ordered
/// interacting pair by species, using a [`FenwickSampler`] (first agent
/// proportional to counts; second proportional to counts with the first
/// agent removed). This is the work-horse engine for AVC with large state
/// counts (the "n-state" instances of Figure 3 and the large-`s` curves of
/// Figure 4).
///
/// # Example
///
/// ```
/// use avc_population::engine::{CountSim, Simulator};
/// use avc_population::protocol::tests_support::Voter;
/// use avc_population::Config;
/// use rand::SeedableRng;
///
/// let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 40, 9));
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let out = sim.run_to_consensus(&mut rng, u64::MAX);
/// assert!(out.verdict.is_consensus());
/// ```
/// The `T` parameter is the telemetry [`Sink`] seam: the default
/// [`NoopSink`] compiles every recording site away (the CI bench gate holds
/// it to ≤2% of the uninstrumented hot loop), while a
/// [`CountingSink`](avc_telemetry::CountingSink) attached via
/// [`CountSim::with_telemetry`] records chunk step/event deltas and Fenwick
/// descent depths. The sink never touches the RNG, so instrumented and
/// plain runs draw byte-identical streams.
#[derive(Debug, Clone)]
pub struct CountSim<P, T = NoopSink> {
    protocol: P,
    counts: Vec<u64>,
    sampler: FenwickSampler,
    output_a: Vec<bool>,
    count_a: u64,
    unanimous: Option<StateId>,
    n: u64,
    steps: u64,
    events: u64,
    telemetry: T,
}

impl<P: Protocol> CountSim<P> {
    /// Creates an engine from an initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's state count differs from the
    /// protocol's, or the population has fewer than two agents.
    pub fn new(protocol: P, config: Config) -> CountSim<P> {
        assert_eq!(
            config.num_states(),
            protocol.num_states(),
            "configuration does not match protocol state space"
        );
        let n = config.population();
        assert!(n >= 2, "need at least two agents, got {n}");
        let counts = config.into_counts();
        let sampler = FenwickSampler::from_weights(&counts);
        let output_a: Vec<bool> = (0..counts.len())
            .map(|q| protocol.output(q as StateId) == Opinion::A)
            .collect();
        let count_a = counts
            .iter()
            .zip(&output_a)
            .filter(|(_, &is_a)| is_a)
            .map(|(&c, _)| c)
            .sum();
        let unanimous = counts.iter().position(|&c| c == n).map(|i| i as StateId);
        CountSim {
            protocol,
            counts,
            sampler,
            output_a,
            count_a,
            unanimous,
            n,
            steps: 0,
            events: 0,
            telemetry: NoopSink,
        }
    }
}

impl<P: Protocol, T: Sink> CountSim<P, T> {
    /// Replaces the telemetry sink, rebinding the engine's type. All
    /// simulation state (counts, sampler, step counters) carries over
    /// untouched, so attaching telemetry mid-run is RNG-invisible.
    pub fn with_telemetry<T2: Sink>(self, telemetry: T2) -> CountSim<P, T2> {
        CountSim {
            protocol: self.protocol,
            counts: self.counts,
            sampler: self.sampler,
            output_a: self.output_a,
            count_a: self.count_a,
            unanimous: self.unanimous,
            n: self.n,
            steps: self.steps,
            events: self.events,
            telemetry,
        }
    }

    /// The attached telemetry sink.
    pub fn telemetry(&self) -> &T {
        &self.telemetry
    }

    /// The attached telemetry sink, mutably (for draining counts).
    pub fn telemetry_mut(&mut self) -> &mut T {
        &mut self.telemetry
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current configuration as an owned [`Config`].
    pub fn config(&self) -> Config {
        Config::from_counts(self.counts.clone())
    }

    fn bump(&mut self, state: StateId, delta: i64) {
        let idx = state as usize;
        let new = self.counts[idx] as i64 + delta;
        debug_assert!(new >= 0, "count underflow at state {state}");
        self.counts[idx] = new as u64;
        self.sampler.add(idx, delta);
        if self.output_a[idx] {
            self.count_a = (self.count_a as i64 + delta) as u64;
        }
        if self.counts[idx] == self.n {
            self.unanimous = Some(state);
        }
    }

    /// One scheduler step, generic over the RNG so chunked loops inline the
    /// draws end to end.
    #[inline]
    fn step<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        self.steps += 1;
        if T::ENABLED {
            // Both draws below descend the tree once each; depth is a
            // function of the (fixed) category count, so recording it here
            // adds nothing to the descents themselves.
            let depth = self.sampler.descent_depth();
            self.telemetry.on_descent(depth);
            self.telemetry.on_descent(depth);
        }
        let total = self.sampler.total();
        // First agent by species, proportional to counts.
        let i = self.sampler.select(rng.gen_range(0..total)) as StateId;
        // Second agent among the remaining n−1, proportional to counts with
        // one agent of species i removed. Instead of materialising that
        // distribution in the tree (two `add` walks per step), invert its
        // CDF directly: removing one agent of species i shifts every prefix
        // sum at or past i down by one, so the inverse at t is `select(t)`
        // when that lands before i and `select(t+1)` otherwise — the same
        // species from the same single draw. Both inverse-CDF answers come
        // out of one fused tree descent.
        let t = rng.gen_range(0..total - 1);
        let (s0, s1) = self.sampler.select_pair(t);
        let j = if (s0 as StateId) < i {
            s0 as StateId
        } else {
            s1 as StateId
        };

        let (x, y) = self.protocol.transition(i, j);
        debug_assert!(
            x < self.protocol.num_states() && y < self.protocol.num_states(),
            "transition left the state space"
        );
        if (x == i && y == j) || (x == j && y == i) {
            return; // configuration unchanged
        }
        self.events += 1;
        self.unanimous = None;
        self.bump(i, -1);
        self.bump(j, -1);
        self.bump(x, 1);
        self.bump(y, 1);
    }
}

impl<P: Protocol, T: Sink> Simulator for CountSim<P, T> {
    fn population(&self) -> u64 {
        self.n
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn events(&self) -> u64 {
        self.events
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn count_a(&self) -> u64 {
        self.count_a
    }

    fn unanimous_state(&self) -> Option<StateId> {
        self.unanimous
    }

    fn state_output(&self, state: StateId) -> Opinion {
        self.protocol.output(state)
    }

    fn config_is_silent(&self) -> bool {
        self.protocol.config_silent(&self.counts)
    }

    fn inject(&mut self, fault: Fault) -> Result<u64, FaultError> {
        // Count-based engines have no agent identity; only count-space
        // corruption is expressible.
        let Fault::Corrupt { from, to, agents } = fault else {
            return Err(FaultError::Unsupported {
                engine: "CountSim",
                fault,
            });
        };
        let s = self.protocol.num_states();
        if from >= s || to >= s {
            return Err(FaultError::OutOfRange {
                detail: format!("corrupt {from}->{to} with only {s} protocol states"),
            });
        }
        if from == to {
            return Ok(0);
        }
        let moved = agents.min(self.counts[from as usize]);
        if moved == 0 {
            return Ok(0);
        }
        self.unanimous = None;
        self.bump(from, -(moved as i64));
        self.bump(to, moved as i64);
        self.telemetry.on_fault();
        Ok(moved)
    }

    fn advance(&mut self, rng: &mut dyn RngCore) -> u64 {
        self.step(rng);
        1
    }

    fn advance_upto(&mut self, rng: &mut dyn RngCore, stop: StopCondition) -> AdvanceReport {
        self.advance_chunk(rng, stop)
    }
}

impl<P: Protocol, T: Sink> ChunkedSimulator for CountSim<P, T> {
    fn reset(&mut self, config: &Config) {
        assert_eq!(
            config.num_states(),
            self.protocol.num_states(),
            "configuration does not match protocol state space"
        );
        let n = config.population();
        assert!(n >= 2, "need at least two agents, got {n}");
        self.counts.copy_from_slice(config.as_slice());
        self.sampler.reassign(&self.counts);
        self.count_a = self
            .counts
            .iter()
            .zip(&self.output_a)
            .filter(|(_, &is_a)| is_a)
            .map(|(&c, _)| c)
            .sum();
        self.unanimous = self
            .counts
            .iter()
            .position(|&c| c == n)
            .map(|i| i as StateId);
        self.n = n;
        self.steps = 0;
        self.events = 0;
    }

    fn advance_chunk<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        stop: StopCondition,
    ) -> AdvanceReport {
        let (steps0, events0) = (self.steps, self.events);
        // Every step advances exactly one scheduler step, so the loop can
        // never report `Silent` — a silent configuration just keeps taking
        // (explicit) silent steps until the budget, like the scheduler does.
        let reason = loop {
            if stop.predicate_hit(self.count_a, self.unanimous.is_some()) {
                break StopReason::Predicate;
            }
            if self.steps >= stop.max_steps {
                break StopReason::StepBudget;
            }
            // The predicate reads count_a and unanimity, which only move on
            // productive events — so it cannot fire mid-stretch, and the
            // inner loop burns silent steps against the budget alone.
            let events_before = self.events;
            while self.events == events_before && self.steps < stop.max_steps {
                self.step(rng);
            }
        };
        let report = AdvanceReport {
            steps: self.steps - steps0,
            events: self.events - events0,
            reason,
        };
        self.telemetry.on_chunk(report.steps, report.events);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tests_support::{Annihilate, Voter};
    use crate::spec::{ConvergenceRule, Verdict};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn voter_consensus_preserves_population() {
        let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 25, 15));
        let mut rng = SmallRng::seed_from_u64(1);
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert!(out.verdict.is_consensus());
        assert_eq!(sim.counts().iter().sum::<u64>(), 40);
        assert!(sim.unanimous_state().is_some());
    }

    #[test]
    fn annihilate_is_exactly_min_ab_productive_events() {
        let mut sim = CountSim::new(Annihilate, Config::from_input(&Annihilate, 7, 5));
        let mut rng = SmallRng::seed_from_u64(2);
        let out = sim.run_to_consensus_with(&mut rng, u64::MAX, ConvergenceRule::Silence);
        assert_eq!(out.verdict, Verdict::Consensus(Opinion::A));
        assert_eq!(sim.counts(), &[2, 0, 10]);
    }

    #[test]
    fn sampler_and_counts_stay_consistent() {
        let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 10, 10));
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..500 {
            sim.advance(&mut rng);
            for (idx, &c) in sim.counts().iter().enumerate() {
                assert_eq!(sim.sampler.weight(idx), c);
            }
            assert_eq!(sim.sampler.total(), 20);
        }
    }

    #[test]
    fn unanimity_flag_matches_counts() {
        let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 5, 2));
        let mut rng = SmallRng::seed_from_u64(4);
        loop {
            let expected = sim
                .counts()
                .iter()
                .position(|&c| c == 7)
                .map(|i| i as StateId);
            assert_eq!(sim.unanimous_state(), expected);
            if expected.is_some() {
                break;
            }
            sim.advance(&mut rng);
        }
    }

    #[test]
    fn already_unanimous_input_converges_instantly() {
        let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 0, 9));
        let mut rng = SmallRng::seed_from_u64(5);
        let out = sim.run_to_consensus(&mut rng, 100);
        assert_eq!(out.steps, 0);
        assert_eq!(out.verdict, Verdict::Consensus(Opinion::B));
    }

    #[test]
    #[should_panic(expected = "does not match protocol")]
    fn rejects_wrong_state_space() {
        let _ = CountSim::new(Voter, Config::from_counts(vec![1, 2, 3]));
    }

    #[test]
    fn telemetry_records_chunks_and_matches_counters() {
        use avc_telemetry::CountingSink;
        let sim = CountSim::new(Voter, Config::from_input(&Voter, 30, 20));
        let mut sim = sim.with_telemetry(CountingSink::new());
        let mut rng = SmallRng::seed_from_u64(6);
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert!(out.verdict.is_consensus());
        let sink = sim.telemetry();
        assert_eq!(sink.steps, sim.steps());
        assert_eq!(sink.events, sim.events());
        assert_eq!(sink.silent_steps(), sim.steps() - sim.events());
        assert!(sink.chunks >= 1);
        // Voter has 2 states: linear-scan path, depth 0, two descents/step.
        assert_eq!(sink.descents, 2 * sim.steps());
        assert_eq!(sink.descent_depth_sum, 0);
    }

    #[test]
    fn telemetry_is_rng_invisible() {
        use avc_telemetry::CountingSink;
        let config = Config::from_input(&Voter, 30, 20);
        let mut plain = CountSim::new(Voter, config.clone());
        let mut instrumented = CountSim::new(Voter, config).with_telemetry(CountingSink::new());
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        let out_a = plain.run_to_consensus(&mut rng_a, u64::MAX);
        let out_b = instrumented.run_to_consensus(&mut rng_b, u64::MAX);
        assert_eq!(out_a.verdict, out_b.verdict);
        assert_eq!(out_a.steps, out_b.steps);
        assert_eq!(plain.counts(), instrumented.counts());
        assert_eq!(rng_a.r#gen::<u64>(), rng_b.r#gen::<u64>());
    }
}
