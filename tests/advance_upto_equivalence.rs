//! Property tests: the chunked `advance_upto` path is observably identical
//! to repeated single-step `advance` for every engine and any chunking.
//!
//! The driver refactor moved the hot loop from one dyn-dispatched `advance`
//! per scheduler step into each engine's monomorphized `advance_chunk`.
//! That is only sound if chunking is invisible: for *any* split of a run
//! into chunk budgets, the chunked engine must consume the RNG in exactly
//! the same order as the per-step loop and pass through exactly the same
//! configurations at each budget boundary. These properties drive both
//! paths from identical seeds over arbitrary budget splits and require
//! bit-identical steps, events, and species counts at every boundary.

use avc::population::engine::{
    advance_upto_step_by_step, AdaptiveSim, AgentSim, ChunkedSimulator, CountSim, JumpSim,
    StopCondition, TauLeapSim,
};
use avc::population::{Config, ConvergenceRule};
use avc::protocols::{FourState, ThreeState, Voter};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Drives `reference` via the per-step loop and `chunked` via
/// `advance_chunk`, splitting the run at the same cumulative budgets, and
/// asserts the two stay bit-identical at every boundary.
fn assert_chunking_invisible<S: ChunkedSimulator>(
    mut reference: S,
    mut chunked: S,
    seed: u64,
    stop: StopCondition,
    budget_increments: &[u64],
) -> Result<(), TestCaseError> {
    let mut rng_ref = SmallRng::seed_from_u64(seed);
    let mut rng_chunk = SmallRng::seed_from_u64(seed);
    let mut budget = 0u64;
    // The final chunk runs to the stop condition's own budget.
    let final_budget = stop.max_steps;
    let budgets = budget_increments
        .iter()
        .map(|inc| {
            budget = budget.saturating_add(*inc).min(final_budget);
            budget
        })
        .chain([final_budget]);
    for target in budgets {
        let capped = stop.with_max_steps(target);
        let report_ref = advance_upto_step_by_step(&mut reference, &mut rng_ref, capped);
        let report_chunk = chunked.advance_chunk(&mut rng_chunk, capped);
        prop_assert_eq!(report_ref.steps, report_chunk.steps, "chunk step delta");
        prop_assert_eq!(report_ref.events, report_chunk.events, "chunk event delta");
        prop_assert_eq!(report_ref.reason, report_chunk.reason, "stop reason");
        prop_assert_eq!(reference.steps(), chunked.steps(), "total steps");
        prop_assert_eq!(reference.events(), chunked.events(), "total events");
        prop_assert_eq!(reference.counts(), chunked.counts(), "species counts");
        prop_assert_eq!(reference.count_a(), chunked.count_a(), "majority count");
    }
    // Both RNGs must have consumed exactly the same stream: draw once more
    // from each and compare.
    prop_assert_eq!(
        rand::RngCore::next_u64(&mut rng_ref),
        rand::RngCore::next_u64(&mut rng_chunk),
        "RNG streams diverged"
    );
    Ok(())
}

/// A stop condition exercising each predicate family plus the plain budget.
fn stop_for(case: u8, n: u64, max_steps: u64) -> StopCondition {
    match case % 4 {
        0 => StopCondition::never().with_max_steps(max_steps),
        1 => StopCondition::for_rule(ConvergenceRule::OutputConsensus, n).with_max_steps(max_steps),
        2 => StopCondition::for_rule(ConvergenceRule::StateConsensus, n).with_max_steps(max_steps),
        _ => StopCondition::never()
            .when_a_at_most(n / 4)
            .when_a_at_least(n - n / 4)
            .with_max_steps(max_steps),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CountSim: chunking is invisible for the voter protocol.
    #[test]
    fn count_engine_chunking_is_invisible(
        a in 1u64..40,
        b in 1u64..40,
        seed in any::<u64>(),
        case in any::<u8>(),
        max_steps in 1u64..3_000,
        increments in proptest::collection::vec(0u64..200, 0..8),
    ) {
        let make = || CountSim::new(Voter, Config::from_input(&Voter, a, b));
        let stop = stop_for(case, a + b, max_steps);
        assert_chunking_invisible(make(), make(), seed, stop, &increments)?;
    }

    /// JumpSim: chunking is invisible even though one productive event can
    /// carry the step counter far past a chunk boundary.
    #[test]
    fn jump_engine_chunking_is_invisible(
        a in 1u64..40,
        b in 1u64..40,
        seed in any::<u64>(),
        case in any::<u8>(),
        max_steps in 1u64..3_000,
        increments in proptest::collection::vec(0u64..200, 0..8),
    ) {
        let make = || JumpSim::new(FourState, Config::from_input(&FourState, a, b));
        let stop = stop_for(case, a + b, max_steps);
        assert_chunking_invisible(make(), make(), seed, stop, &increments)?;
    }

    /// AdaptiveSim: chunking is invisible across the dense→sparse handoff
    /// (window accounting happens at the same steps either way).
    #[test]
    fn adaptive_engine_chunking_is_invisible(
        a in 1u64..60,
        b in 1u64..60,
        seed in any::<u64>(),
        case in any::<u8>(),
        max_steps in 1u64..20_000,
        increments in proptest::collection::vec(0u64..5_000, 0..8),
    ) {
        let make = || AdaptiveSim::new(ThreeState::new(), Config::from_input(&ThreeState::new(), a, b));
        let stop = stop_for(case, a + b, max_steps);
        assert_chunking_invisible(make(), make(), seed, stop, &increments)?;
    }

    /// TauLeapSim: chunking is invisible; leaps land where they land, but
    /// identically on both paths.
    #[test]
    fn tau_leap_engine_chunking_is_invisible(
        a in 1u64..40,
        b in 1u64..40,
        seed in any::<u64>(),
        case in any::<u8>(),
        max_steps in 1u64..3_000,
        increments in proptest::collection::vec(0u64..200, 0..8),
    ) {
        let make = || TauLeapSim::new(FourState, Config::from_input(&FourState, a, b));
        let stop = stop_for(case, a + b, max_steps);
        assert_chunking_invisible(make(), make(), seed, stop, &increments)?;
    }

    /// AgentSim on the clique: chunking is invisible for the per-agent
    /// engine too.
    #[test]
    fn agent_engine_chunking_is_invisible(
        a in 1u64..25,
        b in 1u64..25,
        seed in any::<u64>(),
        case in any::<u8>(),
        max_steps in 1u64..2_000,
        increments in proptest::collection::vec(0u64..150, 0..8),
    ) {
        let make = || AgentSim::on_clique(FourState, Config::from_input(&FourState, a, b));
        let stop = stop_for(case, a + b, max_steps);
        assert_chunking_invisible(make(), make(), seed, stop, &increments)?;
    }
}
