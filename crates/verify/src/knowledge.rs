//! The information-propagation process behind the `Ω(log n)` lower bound.
//!
//! Theorem C.1 shows any exact-majority protocol needs `Ω(log n)` expected
//! parallel time: fix a set `T` of three nodes whose inputs decide the
//! majority; a node that has no causal chain to `T` cannot be sure of its
//! output. The *knowledge set* `K_t` starts as `T` and grows whenever an
//! interaction touches exactly one member (Claim C.2). This module simulates
//! `K_t` and provides its exact expected cover time
//! `E[T_cover] = Σ_k n(n−1) / (2k(n−k)) ≈ n ln n`, i.e. `Θ(log n)` parallel
//! time.

use rand::Rng;

/// Size of the decisive seed set `T` in the paper's construction.
pub const SEED_SET: u64 = 3;

/// Simulates the growth of the knowledge set on a clique of `n` agents and
/// returns the number of scheduler steps until `|K_t| = n`.
///
/// Each step draws an ordered pair of distinct agents uniformly; if exactly
/// one is in `K`, both end up in `K` (i.e. the outsider joins).
///
/// # Panics
///
/// Panics if `n < SEED_SET + 1`.
pub fn cover_steps<R: Rng + ?Sized>(n: u64, rng: &mut R) -> u64 {
    assert!(n > SEED_SET, "need more than {SEED_SET} agents, got {n}");
    // Only the size of K matters on a clique: each step grows K with
    // probability 2k(n−k)/(n(n−1)), so we sample the geometric waiting time
    // per growth event instead of individual interactions.
    let mut k = SEED_SET;
    let mut steps: u64 = 0;
    let total = (n * (n - 1)) as f64;
    while k < n {
        let p = (2 * k * (n - k)) as f64 / total;
        // Geometric number of trials (≥ 1) until the growth interaction.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let trials = (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64;
        steps = steps.saturating_add(trials);
        k += 1;
    }
    steps
}

/// The exact expected number of steps until the knowledge set covers all
/// `n` agents: `Σ_{k=3}^{n−1} n(n−1) / (2k(n−k))`.
///
/// Dividing by `n` gives expected parallel time `≈ ln n`, the heart of the
/// `Ω(log n)` bound.
///
/// # Panics
///
/// Panics if `n < SEED_SET + 1`.
#[must_use]
pub fn expected_cover_steps(n: u64) -> f64 {
    assert!(n > SEED_SET, "need more than {SEED_SET} agents, got {n}");
    let nn = (n * (n - 1)) as f64;
    (SEED_SET..n).map(|k| nn / ((2 * k * (n - k)) as f64)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn expected_cover_grows_like_n_log_n() {
        // E[T]/n ≈ ln n (up to an additive constant): the ratio between
        // consecutive decades should approach ln(10n)/ln(n) · 10.
        let e100 = expected_cover_steps(100);
        let e1000 = expected_cover_steps(1_000);
        assert!(e100 / 100.0 > 0.8 * (100.0f64).ln());
        assert!(e100 / 100.0 < 1.5 * (100.0f64).ln());
        assert!(e1000 / 1_000.0 > 0.8 * (1_000.0f64).ln());
        assert!(e1000 / 1_000.0 < 1.5 * (1_000.0f64).ln());
    }

    #[test]
    fn simulation_matches_expectation() {
        let n = 500u64;
        let mut rng = SmallRng::seed_from_u64(13);
        let trials = 200;
        let mean = (0..trials)
            .map(|_| cover_steps(n, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        let expected = expected_cover_steps(n);
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn cover_steps_is_at_least_deterministic_minimum() {
        // K must grow n − 3 times, so at least n − 3 steps are needed.
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 50;
        for _ in 0..50 {
            assert!(cover_steps(n, &mut rng) >= n - SEED_SET);
        }
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn rejects_tiny_population() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = cover_steps(3, &mut rng);
    }
}
