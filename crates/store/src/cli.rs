//! The `avc` command-line interface.
//!
//! ```text
//! avc sweep <name> [flags]    run (or resume) a sweep, checkpointing cells
//!                             (--shard i/k executes one grid slice)
//! avc resume <name> [flags]   alias for `sweep` — resuming IS rerunning
//! avc merge <name> [flags]    fold shard stores into one unsharded store
//! avc export <name> [flags]   write the sweep's CSVs from the store
//! avc ls [--cells]            list stored results by experiment
//! avc show <hash-prefix>      inspect one stored cell
//! avc help                    this summary plus the sweep registry
//! ```
//!
//! Shared flags: `--out DIR` (CSV directory, default `results`), `--store
//! DIR` (registry directory, default `<out>/store`), `--progress`,
//! `--serial` / `--threads N`, plus each sweep's own flags (`--quick`,
//! `--runs`, `--seed`, …). The legacy `avc-bench` binaries call
//! [`legacy`], which is exactly `sweep` followed by `export`.

use crate::json::Json;
use crate::record::telemetry_from_json;
use crate::specs;
use crate::store::Store;
use crate::sweep::{self, Plan};
use avc_analysis::cli::Args;
use avc_analysis::harness::{ScenarioPlan, StatsCollector};
use avc_analysis::stats::Summary;
use avc_analysis::table::{fmt_num, Table};
use avc_population::spec::Verdict;
use avc_population::telemetry::export::{prometheus_text, read_lines_tolerant};
use avc_population::telemetry::metrics::bucket_bounds;
use avc_population::telemetry::{keys, CellTelemetry, HistogramSnapshot};
use avc_population::{EngineKind, ProtocolSpec, Scenario, SchedulerSpec};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The CSV output directory (`--out`, default `results`).
fn out_dir(args: &Args) -> String {
    args.get("out").unwrap_or("results").to_string()
}

/// The registry directory (`--store`, default `<out>/store`).
fn store_dir(args: &Args) -> PathBuf {
    match args.get("store") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(&out_dir(args)).join("store"),
    }
}

fn collector(args: &Args) -> StatsCollector {
    if args.flag("progress") {
        StatsCollector::verbose()
    } else {
        StatsCollector::new()
    }
}

fn build_plan(name: &str, args: &Args) -> Result<Plan, String> {
    // A name ending in `.json` is a scenario-grid file, not a registered
    // spec module — the route by which new protocols get comparison sweeps
    // without new Rust code (see `scenario_grid`).
    if name.ends_with(".json") {
        return crate::scenario_grid::load_plan(name, args);
    }
    specs::build(name, args).ok_or_else(|| {
        let known: Vec<&str> = specs::NAMES.iter().map(|(n, _)| *n).collect();
        format!(
            "unknown sweep `{name}` — known sweeps: {} (or a path to a scenario-grid \
             *.grid.json file)",
            known.join(", ")
        )
    })
}

/// The grid slice to execute (`--shard i/k`, default the full grid).
fn shard_of(args: &Args) -> Result<sweep::Shard, String> {
    match args.get("shard") {
        Some(text) => sweep::Shard::parse(text),
        None => Ok(sweep::Shard::full()),
    }
}

fn cmd_sweep(name: &str, args: &Args) -> Result<(), String> {
    let plan = build_plan(name, args)?;
    let shard = shard_of(args)?;
    println!("== avc sweep {name} ==");
    println!("{}", plan.banner);
    if !shard.is_full() {
        println!("shard {shard} of the cell grid");
    }
    println!();
    let mut store = Store::open(store_dir(args)).map_err(|e| e.to_string())?;
    let started = std::time::Instant::now();
    let outcome = sweep::run_sharded(&mut store, &plan, &collector(args), true, shard)
        .map_err(|e| format!("store append failed: {e}"))?;
    store
        .compact()
        .map_err(|e| format!("store compaction failed: {e}"))?;
    let foreign = if outcome.foreign > 0 {
        format!(", {} on other shards", outcome.foreign)
    } else {
        String::new()
    };
    println!(
        "sweep {name}: {} cells ran, {} cached{foreign}, {:.1}s wall (store: {})",
        outcome.ran,
        outcome.cached,
        started.elapsed().as_secs_f64(),
        store.records_path().display()
    );
    Ok(())
}

/// `avc merge <name> --stores DIR1,DIR2,... [--store DIR]`: folds shard
/// stores into the destination store in plan grid order (see
/// [`sweep::merge`] for the byte-identity contract).
fn cmd_merge(name: &str, args: &Args) -> Result<(), String> {
    let plan = build_plan(name, args)?;
    let stores_arg = args
        .get("stores")
        .ok_or("merge needs --stores DIR1,DIR2,... (the shard store directories)")?;
    let sources: Vec<Store> = stores_arg
        .split(',')
        .map(|dir| Store::open(dir.trim()).map_err(|e| format!("{dir}: {e}")))
        .collect::<Result<_, String>>()?;
    let mut dest = Store::open(store_dir(args)).map_err(|e| e.to_string())?;
    let appended = sweep::merge(&mut dest, &plan, &sources)?;
    println!(
        "merge {name}: {appended} cells merged from {} shard store(s) into {}",
        sources.len(),
        dest.records_path().display()
    );
    Ok(())
}

fn cmd_export(name: &str, args: &Args) -> Result<(), String> {
    let plan = build_plan(name, args)?;
    let store = Store::open(store_dir(args)).map_err(|e| e.to_string())?;
    let export = sweep::export(&store, &plan)?;
    let out = out_dir(args);
    for (stem, table) in &export.tables {
        avc_analysis::experiments::report(table, &out, stem);
    }
    for line in &export.trailer {
        println!("{line}");
    }
    Ok(())
}

fn cmd_ls(args: &Args) -> Result<(), String> {
    let store = Store::open(store_dir(args)).map_err(|e| e.to_string())?;
    if store.is_empty() {
        println!("store {} is empty", store.records_path().display());
        return Ok(());
    }
    let wide = args.flag("wide");
    // Group the latest records by experiment, keeping registry order.
    for (name, description) in specs::NAMES {
        let cells: Vec<_> = store
            .iter_latest()
            .filter(|r| r.manifest.experiment == name)
            .collect();
        if cells.is_empty() {
            continue;
        }
        let wall: u64 = cells.iter().map(|r| r.wall_ms).sum();
        println!(
            "{name}: {} cells, {:.1}s compute — {description}",
            cells.len(),
            wall as f64 / 1e3
        );
        if args.flag("cells") || wide {
            for r in &cells {
                if wide {
                    // Wall time plus throughput from the telemetry block,
                    // when the cell recorded one.
                    let telemetry = r.result.telemetry.as_ref();
                    let steps = telemetry
                        .and_then(|t| t.sim.counter(keys::SIM_STEPS))
                        .map_or("-".to_string(), |s| s.to_string());
                    let rate = telemetry
                        .and_then(CellTelemetry::steps_per_sec)
                        .map_or("-".to_string(), |r| format!("{r:.3e}"));
                    println!(
                        "  {}  {:<28} {:>9.1}s  {:>14} steps  {:>10} steps/s",
                        &r.hash[..12],
                        r.manifest.get("cell").unwrap_or("?"),
                        r.wall_ms as f64 / 1e3,
                        steps,
                        rate
                    );
                } else {
                    println!(
                        "  {}  {}  ({:.1}s)",
                        &r.hash[..12],
                        r.manifest.get("cell").unwrap_or("?"),
                        r.wall_ms as f64 / 1e3
                    );
                }
            }
        }
    }
    let strays = store
        .iter_latest()
        .filter(|r| {
            specs::NAMES
                .iter()
                .all(|(n, _)| *n != r.manifest.experiment)
        })
        .count();
    if strays > 0 {
        println!("(+ {strays} cells from unregistered experiments)");
    }
    Ok(())
}

fn cmd_show(prefix: &str, args: &Args) -> Result<(), String> {
    let store = Store::open(store_dir(args)).map_err(|e| e.to_string())?;
    let hits = store.find_by_prefix(prefix);
    match hits.as_slice() {
        [] => Err(format!("no stored cell matches `{prefix}`")),
        [record] => {
            println!("{}", record.manifest.to_json().to_string_pretty());
            println!("hash: {}", record.hash);
            println!("wall: {:.1}s", record.wall_ms as f64 / 1e3);
            if let Some(trials) = &record.result.trials {
                println!(
                    "trials: {} runs, {} converged samples, error fraction {}",
                    trials.total_runs,
                    trials.samples.len(),
                    trials.error_fraction
                );
            }
            for (stem, rows) in &record.result.tables {
                println!("table {stem}: {} row(s)", rows.len());
                for row in rows {
                    println!("  {}", row.join(" | "));
                }
            }
            for (key, value) in &record.result.values {
                println!("value {key} = {value}");
            }
            for note in &record.result.notes {
                println!("note: {note}");
            }
            Ok(())
        }
        many => {
            println!("{} cells match `{prefix}`:", many.len());
            for r in many {
                println!(
                    "  {}  {} / {}",
                    &r.hash[..12],
                    r.manifest.experiment,
                    r.manifest.get("cell").unwrap_or("?")
                );
            }
            Ok(())
        }
    }
}

/// Renders a log₂-bucket histogram as an indented bar chart.
fn render_histogram(title: &str, unit: &str, h: &HistogramSnapshot) -> String {
    let mut out = format!("{title}: {} samples", h.count);
    if let Some(mean) = h.mean() {
        out.push_str(&format!(", mean {} {unit}", fmt_num(mean)));
    }
    if let Some(p50) = h.quantile_bound(0.5) {
        out.push_str(&format!(", p50 <= {p50} {unit}"));
    }
    if let Some(p90) = h.quantile_bound(0.9) {
        out.push_str(&format!(", p90 <= {p90} {unit}"));
    }
    let buckets = h.nonzero_buckets();
    let max = buckets.iter().map(|&(_, c)| c).max().unwrap_or(1);
    for (index, count) in buckets {
        let (lo, hi) = bucket_bounds(index);
        let bar = "#".repeat(((count * 40).div_ceil(max)) as usize);
        out.push_str(&format!("\n  [{lo:>13} .. {hi:>13}] {count:>9}  {bar}"));
    }
    out
}

fn cmd_report(name: &str, args: &Args) -> Result<(), String> {
    let plan = build_plan(name, args)?;
    let store = Store::open(store_dir(args)).map_err(|e| e.to_string())?;
    let mut aggregate = CellTelemetry::new();
    let mut table = Table::new(
        format!("telemetry: {name}"),
        [
            "cell",
            "trials",
            "converged",
            "steps",
            "events",
            "silent",
            "steps/s",
            "wall_s",
        ],
    );
    let mut missing = 0usize;
    for cell in &plan.cells {
        let Some(record) = store.get(&cell.manifest.hash()) else {
            missing += 1;
            continue;
        };
        let Some(telemetry) = &record.result.telemetry else {
            missing += 1;
            continue;
        };
        aggregate.merge(telemetry);
        let sim = &telemetry.sim;
        let counter = |key: &str| sim.counter(key).map_or("-".to_string(), |v| v.to_string());
        let silent = match (
            sim.counter(keys::SIM_SILENT_STEPS),
            sim.counter(keys::SIM_STEPS),
        ) {
            (Some(silent), Some(steps)) if steps > 0 => {
                format!("{:.1}%", silent as f64 * 100.0 / steps as f64)
            }
            _ => "-".to_string(),
        };
        table.push_row([
            cell.label.clone(),
            counter(keys::SIM_TRIALS),
            counter(keys::SIM_TRIALS_CONVERGED),
            counter(keys::SIM_STEPS),
            counter(keys::SIM_EVENTS),
            silent,
            telemetry
                .steps_per_sec()
                .map_or("-".to_string(), |r| format!("{r:.3e}")),
            format!("{:.1}", record.wall_ms as f64 / 1e3),
        ]);
    }
    if aggregate.is_empty() {
        return Err(format!(
            "no telemetry recorded for `{name}` — run `avc sweep {name}` (cells stored before \
             the telemetry schema carry no block; rerun after deleting them to backfill)"
        ));
    }

    if args.flag("prometheus") {
        // One merged exposition: sim and wall key spaces are disjoint.
        let mut merged = aggregate.sim.clone();
        merged.merge(&aggregate.wall);
        print!("{}", prometheus_text(&merged));
        return Ok(());
    }

    println!("{}", table.to_markdown());
    if missing > 0 {
        println!(
            "({missing} of {} cells have no telemetry)\n",
            plan.cells.len()
        );
    }
    // Per-shard attribution: sharded sweeps annotate their journal lines,
    // so wall time and throughput can be split by shard invocation.
    let plan_hashes: BTreeSet<String> = plan.cells.iter().map(|c| c.manifest.hash()).collect();
    let journal: Vec<JournalEntry> = read_journal(&store_dir(args))
        .unwrap_or_default()
        .into_iter()
        .filter(|e| plan_hashes.contains(&e.hash))
        .collect();
    if let Some(shards) = shard_summary(&journal) {
        println!("{}", shards.to_markdown());
    }
    if let Some(chunks) = aggregate.sim.histogram("sim.chunk_steps") {
        println!("{}\n", render_histogram("chunk sizes", "steps", chunks));
    }
    if let Some(latency) = aggregate.wall.histogram(keys::WALL_CHUNK_NS) {
        println!("{}\n", render_histogram("chunk latency", "ns", latency));
    }
    let trials = aggregate.sim.counter(keys::SIM_TRIALS).unwrap_or(0);
    let converged = aggregate
        .sim
        .counter(keys::SIM_TRIALS_CONVERGED)
        .unwrap_or(0);
    print!("convergence: {converged}/{trials} trials");
    if let Some(conv) = aggregate.sim.histogram(keys::SIM_CONVERGENCE_STEPS) {
        if let Some(mean) = conv.mean() {
            print!(", mean {} steps", fmt_num(mean));
        }
        if let Some(p90) = conv.quantile_bound(0.9) {
            print!(", p90 <= {p90} steps");
        }
    }
    println!();
    Ok(())
}

/// One parsed line of the sweep telemetry journal.
struct JournalEntry {
    hash: String,
    cell: String,
    /// `i/k` provenance for cells executed by a sharded sweep.
    shard: Option<String>,
    telemetry: CellTelemetry,
}

fn read_journal(dir: &Path) -> Result<Vec<JournalEntry>, String> {
    let lines = read_lines_tolerant(&dir.join("telemetry.jsonl")).map_err(|e| e.to_string())?;
    let mut entries = Vec::with_capacity(lines.len());
    for line in &lines {
        let json = Json::parse(line)?;
        entries.push(JournalEntry {
            hash: json
                .get("hash")
                .and_then(Json::as_str)
                .ok_or("journal line missing hash")?
                .to_string(),
            cell: json
                .get("cell")
                .and_then(Json::as_str)
                .ok_or("journal line missing cell")?
                .to_string(),
            shard: json.get("shard").and_then(Json::as_str).map(str::to_string),
            telemetry: telemetry_from_json(
                json.get("telemetry")
                    .ok_or("journal line missing telemetry")?,
            )?,
        });
    }
    Ok(entries)
}

/// Renders per-shard wall time and throughput from shard-annotated journal
/// entries (one row per shard, in `i/k` order). Empty when no entry carries
/// shard provenance — unsharded sweeps print nothing extra.
fn shard_summary(entries: &[JournalEntry]) -> Option<Table> {
    use std::collections::BTreeMap;
    // (cells, trials, wall ns) per shard label.
    let mut by_shard: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for entry in entries {
        let Some(shard) = entry.shard.as_deref() else {
            continue;
        };
        let slot = by_shard.entry(shard).or_default();
        slot.0 += 1;
        slot.1 += entry.telemetry.sim.counter(keys::SIM_TRIALS).unwrap_or(0);
        slot.2 += entry
            .telemetry
            .wall
            .counter(keys::WALL_CELL_NS)
            .unwrap_or(0);
    }
    if by_shard.is_empty() {
        return None;
    }
    let mut table = Table::new(
        "per-shard wall time",
        ["shard", "cells", "trials", "wall_s", "trials/s"],
    );
    for (shard, (cells, trials, wall_ns)) in by_shard {
        let wall_s = wall_ns as f64 / 1e9;
        let rate = if wall_ns > 0 {
            format!("{:.1}", trials as f64 / wall_s)
        } else {
            "-".to_string()
        };
        table.push_row([
            shard.to_string(),
            cells.to_string(),
            trials.to_string(),
            format!("{wall_s:.1}"),
            rate,
        ]);
    }
    Some(table)
}

fn cmd_top(name: Option<&str>, args: &Args) -> Result<(), String> {
    // With a sweep name, show only that plan's cells (flags must match the
    // running sweep's); without one, show every journaled cell.
    let filter: Option<BTreeSet<String>> = match name {
        Some(name) => Some(
            build_plan(name, args)?
                .cells
                .iter()
                .map(|c| c.manifest.hash())
                .collect(),
        ),
        None => None,
    };
    let dir = store_dir(args);
    let last = args.get_u64("last", 10) as usize;
    let watch = args.flag("watch");
    loop {
        let entries: Vec<JournalEntry> = read_journal(&dir)?
            .into_iter()
            .filter(|e| filter.as_ref().is_none_or(|f| f.contains(&e.hash)))
            .collect();
        let total_steps: u64 = entries
            .iter()
            .filter_map(|e| e.telemetry.sim.counter(keys::SIM_STEPS))
            .sum();
        println!(
            "{} cell(s) journaled, {total_steps} steps total — showing last {}",
            entries.len(),
            last.min(entries.len())
        );
        for entry in entries.iter().rev().take(last).rev() {
            let t = &entry.telemetry;
            println!(
                "  {}  {:<28} {:>14} steps  {:>10} steps/s",
                &entry.hash[..12],
                entry.cell,
                t.sim
                    .counter(keys::SIM_STEPS)
                    .map_or("-".to_string(), |s| s.to_string()),
                t.steps_per_sec()
                    .map_or("-".to_string(), |r| format!("{r:.3e}"))
            );
        }
        if !watch {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(2));
        println!();
    }
}

/// `avc run <scenario.json>`: executes one declarative scenario file —
/// or a whole scenario grid (any file with a top-level `cells` array) —
/// end-to-end through the shared harness and prints the outcome summary.
/// Grid runs honor `--quick`.
fn cmd_run(path: &str, args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if crate::scenario_grid::is_grid(&json) {
        return cmd_run_grid(path, &json, args);
    }
    let scenario = Scenario::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
    if scenario.scheduler != SchedulerSpec::Uniform && scenario.engine != EngineKind::Agent {
        return Err(format!(
            "{path}: scheduler `{}` needs per-agent scheduling — set \"engine\": \"agent\" \
             (got `{}`)",
            scenario.scheduler, scenario.engine
        ));
    }
    println!("== avc run {path} ==");
    run_scenario(&scenario, args);
    Ok(())
}

/// Runs every cell of a scenario grid store-free (the `avc run` analogue of
/// a grid sweep) and prints a per-grid wrong-consensus tally.
fn cmd_run_grid(path: &str, json: &Json, args: &Args) -> Result<(), String> {
    let grid =
        crate::scenario_grid::ScenarioGrid::from_json(json).map_err(|e| format!("{path}: {e}"))?;
    let quick = args.flag("quick");
    let cells = grid.profile_cells(quick);
    println!("== avc run {path} ==");
    println!(
        "grid {}: {}{} — {} of {} cell(s)",
        grid.name,
        grid.banner,
        if quick { " [quick profile]" } else { "" },
        cells.len(),
        grid.cells.len()
    );
    let mut wrong_total = 0u64;
    for cell in &cells {
        println!("\n-- cell {} --", cell.label);
        wrong_total += run_scenario(&cell.scenario, args);
    }
    println!(
        "\ngrid {}: {} cell(s) ran, wrong_consensus={wrong_total}",
        grid.name,
        cells.len()
    );
    Ok(())
}

/// Executes one scenario through the shared harness, prints its summary
/// block, and returns the number of wrong-consensus runs.
fn run_scenario(scenario: &Scenario, args: &Args) -> u64 {
    println!(
        "scenario {}: {} on n = {} (a = {}, b = {}), engine {}, scheduler {}, \
         {} fault(s), {} runs, seed {}",
        &scenario.hash()[..12],
        scenario.protocol,
        scenario.instance.population(),
        scenario.instance.a(),
        scenario.instance.b(),
        scenario.engine,
        scenario.scheduler,
        scenario.faults.len(),
        scenario.runs,
        scenario.seed
    );
    let winner = scenario.instance.winner();
    let started = std::time::Instant::now();
    let (results, telemetry) = ScenarioPlan::new(scenario.clone())
        .parallelism(args.parallelism())
        .run_with_telemetry(&collector(args));
    let wall = started.elapsed().as_secs_f64();

    let mut correct = 0u64;
    let mut wrong = 0u64;
    let mut timeouts = 0u64;
    let mut stuck = 0u64;
    for outcome in results.outcomes() {
        match outcome.verdict {
            Verdict::Consensus(op) if winner.is_none() || Some(op) == winner => correct += 1,
            Verdict::Consensus(_) => wrong += 1,
            Verdict::MaxSteps => timeouts += 1,
            Verdict::Stuck => stuck += 1,
        }
    }
    println!(
        "outcomes: {correct} correct, {wrong} wrong, {timeouts} timed out, {stuck} stuck \
         (error fraction {})",
        fmt_num(results.error_fraction())
    );
    let times = results.converged_times();
    if times.is_empty() {
        println!("no run converged within the step budget");
    } else {
        let summary = Summary::from_samples(&times);
        println!(
            "parallel time: mean {} ± {}, median {}, range [{}, {}]",
            fmt_num(summary.mean),
            fmt_num(summary.std_error()),
            fmt_num(summary.median),
            fmt_num(summary.min),
            fmt_num(summary.max)
        );
    }
    let steps = telemetry
        .sim
        .counter(keys::SIM_STEPS)
        .map_or("-".to_string(), |s| s.to_string());
    let rate = telemetry
        .steps_per_sec()
        .map_or("-".to_string(), |r| format!("{r:.3e}"));
    println!("telemetry: {steps} steps, {rate} steps/s, {wall:.1}s wall");
    wrong
}

fn usage() -> String {
    let mut out = String::from(
        "usage: avc <command> [flags]\n\
         \n\
         commands:\n\
         \x20 sweep <name>    run (or resume) a sweep, checkpointing each cell\n\
         \x20                 (--shard i/k runs the i-th of k grid slices)\n\
         \x20 resume <name>   alias for sweep\n\
         \x20 merge <name>    fold shard stores (--stores DIR1,DIR2,...) into\n\
         \x20                 --store, ordered like an unsharded sweep\n\
         \x20 run <file>      execute one scenario JSON file — or a whole\n\
         \x20                 *.grid.json grid — end-to-end\n\
         \x20                 (see examples/scenarios/)\n\
         \x20 export <name>   write the sweep's results/*.csv from the store\n\
         \x20 report <name>   render the sweep's telemetry (throughput table,\n\
         \x20                 chunk histograms, convergence; --prometheus)\n\
         \x20 top [name]      tail the live sweep telemetry journal\n\
         \x20                 (--last N, --watch)\n\
         \x20 ls [--cells|--wide]  list stored results by experiment\n\
         \x20 show <hash>     inspect one stored cell by hash prefix\n\
         \x20 help            this message\n\
         \n\
         flags: --out DIR (default results), --store DIR (default <out>/store),\n\
         \x20      --progress, --serial | --threads N, --shard i/k, plus\n\
         \x20      per-sweep flags (--quick, --runs N, --seed N, ...)\n\
         \n\
         sweeps:\n",
    );
    for (name, description) in specs::NAMES {
        out.push_str(&format!("  {name:<16} {description}\n"));
    }
    out.push_str(
        "\x20 <path>.json      any scenario-grid file (examples/scenarios/*.grid.json)\n\
         \n\
         protocols (scenario \"protocol\" strings):\n",
    );
    // Derived from the same canonical list as the parser and its error
    // hint, so the help can never drift from what `FromStr` accepts.
    for (name, params) in ProtocolSpec::SYNTAX {
        out.push_str(&format!("  {name}{params}\n"));
    }
    out
}

/// Entry point for the `avc` binary: dispatches a parsed command line and
/// returns the process exit code.
#[must_use]
pub fn main() -> i32 {
    let (positionals, args) = Args::from_env_with_positionals();
    let command = positionals.first().map(String::as_str);
    let target = positionals.get(1).map(String::as_str);
    let outcome = match (command, target) {
        (Some("sweep") | Some("resume"), Some(name)) => cmd_sweep(name, &args),
        (Some("merge"), Some(name)) => cmd_merge(name, &args),
        (Some("run"), Some(path)) => cmd_run(path, &args),
        (Some("export"), Some(name)) => cmd_export(name, &args),
        (Some("report"), Some(name)) => cmd_report(name, &args),
        (Some("top"), name) => cmd_top(name, &args),
        (Some("ls"), None) => cmd_ls(&args),
        (Some("show"), Some(prefix)) => cmd_show(prefix, &args),
        (Some("help") | None, _) => {
            print!("{}", usage());
            Ok(())
        }
        (
            Some("sweep") | Some("resume") | Some("merge") | Some("export") | Some("report"),
            None,
        ) => Err("missing sweep name (see `avc help`)".to_string()),
        (Some("run"), None) => Err("missing scenario file (see `avc help`)".to_string()),
        (Some("show"), None) => Err("missing hash prefix (see `avc help`)".to_string()),
        (Some(other), _) => Err(format!("unknown command `{other}` (see `avc help`)")),
    };
    match outcome {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("avc: {message}");
            1
        }
    }
}

/// The legacy single-binary behavior: run the named sweep to completion,
/// then export its CSVs — checkpointing included. The ten `avc-bench`
/// binaries are one-line wrappers over this.
pub fn legacy(name: &str) {
    let args = Args::from_env();
    if let Err(message) = cmd_sweep(name, &args).and_then(|()| cmd_export(name, &args)) {
        eprintln!("avc: {message}");
        std::process::exit(1);
    }
}
