//! Golden determinism test for the sweep telemetry stream: a fixed-seed
//! `avc sweep fig3 --quick` must produce a byte-identical `telemetry.jsonl`
//! at `--threads 1` and `--threads 4`.
//!
//! Wall-clock sections are inherently run-dependent, so both child
//! processes run with `AVC_TELEMETRY_NOWALL` set (scoped to the subprocess
//! — nothing leaks into this test harness), which makes every journal line
//! pure simulation-derived data. The remaining content is deterministic
//! because cell seeds are fixed and the harness folds per-trial telemetry
//! in trial-index order regardless of worker count.

use std::path::Path;
use std::process::Command;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("avc-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn sweep(dir: &Path, threads: &str) {
    let status = Command::new(env!("CARGO_BIN_EXE_avc"))
        .args(["sweep", "fig3", "--quick", "--threads", threads])
        .args(["--out", dir.to_str().expect("utf-8 temp path")])
        .env("AVC_TELEMETRY_NOWALL", "1")
        .status()
        .expect("spawn avc");
    assert!(status.success(), "sweep at --threads {threads} failed");
}

#[test]
fn telemetry_stream_is_byte_identical_across_worker_counts() {
    let serial = temp_dir("t1");
    let parallel = temp_dir("t4");
    sweep(&serial, "1");
    sweep(&parallel, "4");

    let read = |dir: &Path| {
        let path = dir.join("store/telemetry.jsonl");
        std::fs::read(&path).unwrap_or_else(|e| panic!("missing {}: {e}", path.display()))
    };
    let (bytes_1, bytes_4) = (read(&serial), read(&parallel));
    assert!(!bytes_1.is_empty(), "telemetry stream is empty");
    assert_eq!(
        bytes_1, bytes_4,
        "telemetry.jsonl differs between --threads 1 and --threads 4"
    );

    // Sanity on the stream shape: one line per fig3 quick cell, each a JSON
    // object carrying the cell identity and a sim-only telemetry block.
    let text = String::from_utf8(bytes_1).expect("utf-8 stream");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 9, "fig3 --quick journals one line per cell");
    for line in lines {
        let parsed = avc_store::json::Json::parse(line).expect("journal line parses");
        assert!(parsed.get("hash").is_some(), "line missing hash: {line}");
        assert!(parsed.get("cell").is_some(), "line missing cell: {line}");
        let telemetry = parsed.get("telemetry").expect("line missing telemetry");
        assert!(telemetry.get("sim").is_some(), "telemetry missing sim half");
        assert!(
            telemetry.get("wall").is_none(),
            "wall section present despite AVC_TELEMETRY_NOWALL"
        );
    }

    let _ = std::fs::remove_dir_all(&serial);
    let _ = std::fs::remove_dir_all(&parallel);
}
