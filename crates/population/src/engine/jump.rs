//! Jump-chain simulation engine with null-step skipping.

use crate::config::Config;
use crate::engine::{AdvanceReport, ChunkedSimulator, Simulator, StopCondition, StopReason};
use crate::faults::{Fault, FaultError};
use crate::protocol::{Opinion, Protocol, StateId};
use avc_telemetry::{NoopSink, Sink};
use rand::{Rng, RngCore};

/// Sentinel for "state not in the live list".
const NOT_LIVE: u32 = u32::MAX;

/// Memoized setup of the geometric silent-run draw.
///
/// One jump samples `⌊ln U / ln(1−p)⌋` with `p = w_prod / w_total`. The
/// denominator `ln(1−p)` depends only on the productive weight, which
/// changes far less often than steps are taken on slow protocols — so the
/// hot loop caches it keyed on `w_prod` instead of rebuilding a
/// `Geometric` distribution (probability check, division, `ln`) every
/// step. `w_prod = 0` marks the cache empty; a jump never draws at that
/// weight (the configuration is silent), so the sentinel can't collide.
///
/// The cached value is produced by exactly the expression
/// `rand_distr::Geometric` evaluates internally, so the draws are
/// bit-identical to the uncached path (pinned by
/// `geometric_cache_matches_rand_distr` below).
#[derive(Debug, Clone, Copy, Default)]
struct GeoCache {
    w_prod: u64,
    ln_one_minus_p: f64,
}

impl GeoCache {
    /// Draws the number of failures before the first success in
    /// Bernoulli(`w_prod / w_total`) trials, refreshing the cached
    /// `ln(1−p)` only when `w_prod` moved since the last draw.
    ///
    /// Caller guarantees `0 < w_prod < w_total` (the `p = 1` and silent
    /// cases never reach the draw).
    #[inline]
    fn sample<R: RngCore + ?Sized>(&mut self, w_prod: u64, w_total: u64, rng: &mut R) -> u64 {
        if self.w_prod != w_prod {
            let p = w_prod as f64 / w_total as f64;
            self.w_prod = w_prod;
            self.ln_one_minus_p = (1.0 - p).ln();
        }
        // Inversion, exactly as the vendored `rand_distr::Geometric`:
        // U uniform on (0, 1] from one `gen::<f64>()` draw.
        let u = 1.0 - rng.r#gen::<f64>();
        let failures = u.ln() / self.ln_one_minus_p;
        if failures >= u64::MAX as f64 {
            u64::MAX
        } else {
            failures as u64
        }
    }
}

/// A count-based engine that skips *silent* steps in geometric batches.
///
/// In the discrete model, a step whose sampled pair reacts to itself (up to
/// swapping) leaves the configuration unchanged. Between two configuration
/// changes, the number of such silent steps is geometrically distributed
/// with success probability `W_productive / (n(n−1))`, where the weights
/// count ordered agent pairs. `JumpSim` maintains those weights, samples the
/// silent-step count in one draw, and then samples a *productive* ordered
/// pair directly — so its running cost is proportional to the number of
/// productive interactions rather than to raw scheduler steps.
///
/// This matters enormously for the slow protocols in the paper: the
/// four-state protocol at `ε = 1/n`, `n = 100 001` needs ≈10¹¹ raw steps
/// but only ≈10⁶ productive ones.
///
/// The trajectory distribution of the configuration process is exactly that
/// of [`CountSim`](super::CountSim); see `tests/engine_equivalence.rs`.
///
/// # Example
///
/// ```
/// use avc_population::engine::{JumpSim, Simulator};
/// use avc_population::protocol::tests_support::Annihilate;
/// use avc_population::Config;
/// use rand::SeedableRng;
///
/// let config = Config::from_input(&Annihilate, 600, 400);
/// let mut sim = JumpSim::new(Annihilate, config);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let out = sim.run_to_consensus(&mut rng, u64::MAX);
/// // 400 productive annihilations, arbitrarily many skipped silent steps.
/// assert!(out.verdict.is_consensus());
/// ```
/// The `T` parameter is the telemetry [`Sink`] seam (see
/// [`CountSim`](super::CountSim) for the contract); the default
/// [`NoopSink`] compiles to nothing and leaves the RNG stream untouched.
#[derive(Debug, Clone)]
pub struct JumpSim<P, T = NoopSink> {
    protocol: P,
    counts: Vec<u64>,
    /// States with nonzero count.
    live: Vec<StateId>,
    /// Position of each state in `live`, or `NOT_LIVE`.
    live_pos: Vec<u32>,
    /// For each live state `i`: the number of *other agents* `y` such that
    /// the ordered pair `(i, state(y))` is silent, i.e.
    /// `Σ_j silent(i,j) · (c_j − [i = j])`. Stale for dead states.
    null_row: Vec<u64>,
    output_a: Vec<bool>,
    count_a: u64,
    unanimous: Option<StateId>,
    n: u64,
    /// `n(n−1)`, the total ordered-pair weight — constant per population.
    w_total: u64,
    /// Cached geometric-draw setup (see [`GeoCache`]). Pure memoization:
    /// never observable except through speed.
    geo: GeoCache,
    steps: u64,
    events: u64,
    telemetry: T,
}

impl<P: Protocol> JumpSim<P> {
    /// Creates an engine from an initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's state count differs from the
    /// protocol's, or the population has fewer than two agents.
    pub fn new(protocol: P, config: Config) -> JumpSim<P> {
        assert_eq!(
            config.num_states(),
            protocol.num_states(),
            "configuration does not match protocol state space"
        );
        let n = config.population();
        assert!(n >= 2, "need at least two agents, got {n}");
        let s = protocol.num_states();
        let counts = config.into_counts();
        let output_a: Vec<bool> = (0..s).map(|q| protocol.output(q) == Opinion::A).collect();
        let count_a = counts
            .iter()
            .zip(&output_a)
            .filter(|(_, &is_a)| is_a)
            .map(|(&c, _)| c)
            .sum();
        let unanimous = counts.iter().position(|&c| c == n).map(|i| i as StateId);
        let mut sim = JumpSim {
            protocol,
            counts,
            // Full capacity up front so the reuse seam's `reset` can
            // repopulate liveness without ever growing the vector.
            live: Vec::with_capacity(s as usize),
            live_pos: vec![NOT_LIVE; s as usize],
            null_row: vec![0; s as usize],
            output_a,
            count_a,
            unanimous,
            n,
            w_total: n * (n - 1),
            geo: GeoCache::default(),
            steps: 0,
            events: 0,
            telemetry: NoopSink,
        };
        for q in 0..s {
            if sim.counts[q as usize] > 0 {
                sim.live_pos[q as usize] = sim.live.len() as u32;
                sim.live.push(q);
            }
        }
        for idx in 0..sim.live.len() {
            let q = sim.live[idx];
            sim.null_row[q as usize] = sim.compute_null_row(q);
        }
        sim
    }
}

impl<P: Protocol, T: Sink> JumpSim<P, T> {
    /// Replaces the telemetry sink, rebinding the engine's type. All
    /// simulation state carries over untouched, so attaching telemetry is
    /// RNG-invisible.
    pub fn with_telemetry<T2: Sink>(self, telemetry: T2) -> JumpSim<P, T2> {
        JumpSim {
            protocol: self.protocol,
            counts: self.counts,
            live: self.live,
            live_pos: self.live_pos,
            null_row: self.null_row,
            output_a: self.output_a,
            count_a: self.count_a,
            unanimous: self.unanimous,
            n: self.n,
            w_total: self.w_total,
            geo: self.geo,
            steps: self.steps,
            events: self.events,
            telemetry,
        }
    }

    /// The attached telemetry sink.
    pub fn telemetry(&self) -> &T {
        &self.telemetry
    }

    /// The attached telemetry sink, mutably (for draining counts).
    pub fn telemetry_mut(&mut self) -> &mut T {
        &mut self.telemetry
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current configuration as an owned [`Config`].
    pub fn config(&self) -> Config {
        Config::from_counts(self.counts.clone())
    }

    /// Number of live (nonzero-count) states; per-event cost is linear in
    /// this quantity.
    pub fn live_states(&self) -> usize {
        self.live.len()
    }

    /// Seeds the step/event counters; used by
    /// [`AdaptiveSim`](super::AdaptiveSim) when handing off a partially-run
    /// simulation.
    pub(crate) fn set_counters(&mut self, steps: u64, events: u64) {
        self.steps = steps;
        self.events = events;
    }

    /// The silent-pair predicate.
    ///
    /// No private memoization: the harness wraps cacheable protocols in
    /// [`Cached`](crate::cached::Cached), whose `is_silent` override is a
    /// precomputed bitset lookup. Arithmetic protocols above the table bound
    /// recompute on demand (their transitions are cheap).
    fn silent(&self, a: StateId, b: StateId) -> bool {
        self.protocol.is_silent(a, b)
    }

    /// Recomputes `null_row[i]` from scratch over live states.
    fn compute_null_row(&self, i: StateId) -> u64 {
        let mut row = 0;
        for idx in 0..self.live.len() {
            let j = self.live[idx];
            if self.silent(i, j) {
                row += self.counts[j as usize] - u64::from(i == j);
            }
        }
        row
    }

    /// Total ordered-pair weight of silent interactions.
    fn null_weight(&self) -> u64 {
        self.live
            .iter()
            .map(|&i| self.counts[i as usize] * self.null_row[i as usize])
            .sum()
    }

    /// Samples a productive ordered species pair given total productive
    /// weight `w_prod > 0`.
    fn sample_productive<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        w_prod: u64,
    ) -> (StateId, StateId) {
        let mut r = rng.gen_range(0..w_prod);
        let mut chosen_i = None;
        for idx in 0..self.live.len() {
            let i = self.live[idx];
            let c_i = self.counts[i as usize];
            let row_prod = c_i * (self.n - 1 - self.null_row[i as usize]);
            if r < row_prod {
                chosen_i = Some((i, c_i));
                break;
            }
            r -= row_prod;
        }
        let (i, c_i) = chosen_i.expect("productive weight accounted for some row");
        // Find j within the row: pair weight c_i · (c_j − [i=j]) if productive.
        for idx in 0..self.live.len() {
            let j = self.live[idx];
            if self.silent(i, j) {
                continue;
            }
            let w = c_i * (self.counts[j as usize] - u64::from(i == j));
            if r < w {
                return (i, j);
            }
            r -= w;
        }
        unreachable!("row weight accounted for some productive partner")
    }

    /// Applies the count delta for one species and maintains `count_a`,
    /// unanimity and liveness bookkeeping. Returns whether the species
    /// became live.
    fn apply_delta(&mut self, k: StateId, delta: i64) -> bool {
        let idx = k as usize;
        let old = self.counts[idx];
        let new = old as i64 + delta;
        debug_assert!(new >= 0, "count underflow at state {k}");
        let new = new as u64;
        self.counts[idx] = new;
        if self.output_a[idx] {
            self.count_a = (self.count_a as i64 + delta) as u64;
        }
        if new == self.n {
            self.unanimous = Some(k);
        }
        if old == 0 && new > 0 {
            self.live_pos[idx] = self.live.len() as u32;
            self.live.push(k);
            true
        } else {
            if old > 0 && new == 0 {
                // Swap-remove from the live list.
                let pos = self.live_pos[idx] as usize;
                let last = *self.live.last().expect("live list nonempty");
                self.live.swap_remove(pos);
                if pos < self.live.len() {
                    self.live_pos[last as usize] = pos as u32;
                }
                self.live_pos[idx] = NOT_LIVE;
            }
            false
        }
    }

    /// One jump: skips the geometric run of silent steps and applies one
    /// productive interaction. Returns steps advanced, `0` if silent.
    /// Generic over the RNG so chunked loops inline the draws end to end.
    #[inline]
    fn step<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let w_total = self.w_total;
        let w_null = self.null_weight();
        debug_assert!(w_null <= w_total, "null weight exceeds total");
        let w_prod = w_total - w_null;
        if w_prod == 0 {
            return 0; // silent configuration: no interaction can change it
        }

        // Number of skipped silent steps before the next productive one,
        // with the `ln(1−p)` setup memoized across steps (see [`GeoCache`]).
        let skipped = if w_prod == w_total {
            0
        } else {
            self.geo.sample(w_prod, w_total, rng)
        };

        let (i, j) = self.sample_productive(rng, w_prod);
        let (x, y) = self.protocol.transition(i, j);
        debug_assert!(
            x < self.protocol.num_states() && y < self.protocol.num_states(),
            "transition left the state space"
        );
        debug_assert!(
            !((x == i && y == j) || (x == j && y == i)),
            "sampled pair was silent"
        );

        // Net per-species deltas (at most four species involved).
        let mut deltas: [(StateId, i64); 4] = [(i, 0), (j, 0), (x, 0), (y, 0)];
        let mut len = 0;
        let add = |deltas: &mut [(StateId, i64); 4], len: &mut usize, k: StateId, d: i64| {
            for entry in deltas.iter_mut().take(*len) {
                if entry.0 == k {
                    entry.1 += d;
                    return;
                }
            }
            deltas[*len] = (k, d);
            *len += 1;
        };
        add(&mut deltas, &mut len, i, -1);
        add(&mut deltas, &mut len, j, -1);
        add(&mut deltas, &mut len, x, 1);
        add(&mut deltas, &mut len, y, 1);

        self.unanimous = None;
        let mut fresh: [Option<StateId>; 2] = [None, None];
        let mut fresh_len = 0;
        for &(k, d) in deltas.iter().take(len) {
            if d == 0 {
                continue;
            }
            if self.apply_delta(k, d) {
                fresh[fresh_len] = Some(k);
                fresh_len += 1;
            }
        }

        // Update null rows of previously-live states for each net change;
        // freshly-live states get their row recomputed from scratch below
        // (and are excluded here — their stale row must not be patched).
        for &(k, d) in deltas.iter().take(len) {
            if d == 0 {
                continue;
            }
            for idx in 0..self.live.len() {
                let l = self.live[idx];
                if fresh.iter().take(fresh_len).any(|&f| f == Some(l)) {
                    continue;
                }
                if self.silent(l, k) {
                    let row = &mut self.null_row[l as usize];
                    *row = (*row as i64 + d) as u64;
                }
            }
        }
        for f in fresh
            .iter()
            .take(fresh_len)
            .flatten()
            .copied()
            .collect::<Vec<_>>()
        {
            self.null_row[f as usize] = self.compute_null_row(f);
        }

        self.events += 1;
        let advanced = skipped.saturating_add(1);
        self.steps = self.steps.saturating_add(advanced);
        advanced
    }
}

impl<P: Protocol, T: Sink> Simulator for JumpSim<P, T> {
    fn population(&self) -> u64 {
        self.n
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn events(&self) -> u64 {
        self.events
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn count_a(&self) -> u64 {
        self.count_a
    }

    fn unanimous_state(&self) -> Option<StateId> {
        self.unanimous
    }

    fn state_output(&self, state: StateId) -> Opinion {
        self.protocol.output(state)
    }

    fn config_is_silent(&self) -> bool {
        self.null_weight() == self.n * (self.n - 1)
    }

    fn inject(&mut self, fault: Fault) -> Result<u64, FaultError> {
        let Fault::Corrupt { from, to, agents } = fault else {
            return Err(FaultError::Unsupported {
                engine: "JumpSim",
                fault,
            });
        };
        let s = self.protocol.num_states();
        if from >= s || to >= s {
            return Err(FaultError::OutOfRange {
                detail: format!("corrupt {from}->{to} with only {s} protocol states"),
            });
        }
        if from == to {
            return Ok(0);
        }
        let moved = agents.min(self.counts[from as usize]);
        if moved == 0 {
            return Ok(0);
        }
        self.unanimous = None;
        self.apply_delta(from, -(moved as i64));
        self.apply_delta(to, moved as i64);
        // Injection is rare and off the hot path: rebuild every live null
        // row from scratch rather than patching incrementally.
        for idx in 0..self.live.len() {
            let q = self.live[idx];
            self.null_row[q as usize] = self.compute_null_row(q);
        }
        self.telemetry.on_fault();
        Ok(moved)
    }

    fn advance(&mut self, rng: &mut dyn RngCore) -> u64 {
        self.step(rng)
    }

    fn advance_upto(&mut self, rng: &mut dyn RngCore, stop: StopCondition) -> AdvanceReport {
        self.advance_chunk(rng, stop)
    }
}

impl<P: Protocol, T: Sink> ChunkedSimulator for JumpSim<P, T> {
    fn reset(&mut self, config: &Config) {
        assert_eq!(
            config.num_states(),
            self.protocol.num_states(),
            "configuration does not match protocol state space"
        );
        let n = config.population();
        assert!(n >= 2, "need at least two agents, got {n}");
        self.counts.copy_from_slice(config.as_slice());
        self.count_a = self
            .counts
            .iter()
            .zip(&self.output_a)
            .filter(|(_, &is_a)| is_a)
            .map(|(&c, _)| c)
            .sum();
        self.unanimous = self
            .counts
            .iter()
            .position(|&c| c == n)
            .map(|i| i as StateId);
        self.n = n;
        self.w_total = n * (n - 1);
        // The memoized `ln(1−p)` is keyed on `w_prod` alone; a changed
        // `w_total` would silently invalidate it, so start cold like a
        // fresh engine.
        self.geo = GeoCache::default();
        self.steps = 0;
        self.events = 0;
        // Liveness and null rows, rebuilt in place exactly as `new` does.
        self.live.clear();
        self.live_pos.fill(NOT_LIVE);
        for q in 0..self.protocol.num_states() {
            if self.counts[q as usize] > 0 {
                self.live_pos[q as usize] = self.live.len() as u32;
                self.live.push(q);
            }
        }
        for idx in 0..self.live.len() {
            let q = self.live[idx];
            self.null_row[q as usize] = self.compute_null_row(q);
        }
    }

    fn advance_chunk<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        stop: StopCondition,
    ) -> AdvanceReport {
        let (steps0, events0) = (self.steps, self.events);
        // One jump lands exactly on a productive step, so `count_a` and
        // unanimity change only at step boundaries the loop observes: the
        // chunk stops at the exact step a predicate first holds. The step
        // *budget* can be overshot by the final jump's skipped-silent-steps
        // batch (checked before each jump, like the single-step path).
        let reason = loop {
            if stop.predicate_hit(self.count_a, self.unanimous.is_some()) {
                break StopReason::Predicate;
            }
            if self.steps >= stop.max_steps {
                break StopReason::StepBudget;
            }
            if self.step(rng) == 0 {
                break StopReason::Silent;
            }
        };
        let report = AdvanceReport {
            steps: self.steps - steps0,
            events: self.events - events0,
            reason,
        };
        self.telemetry.on_chunk(report.steps, report.events);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CountSim;
    use crate::protocol::tests_support::{Annihilate, Voter};
    use crate::spec::{ConvergenceRule, Verdict};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Exhaustively re-derives the null rows and compares with the
    /// incrementally-maintained ones.
    fn check_invariants<P: Protocol + Clone>(sim: &mut JumpSim<P>) {
        let n: u64 = sim.counts.iter().sum();
        assert_eq!(n, sim.n, "population drifted");
        let live: Vec<StateId> = sim
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i as StateId)
            .collect();
        let mut sorted = sim.live.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, live, "live list out of sync");
        for &q in &live {
            assert_eq!(sim.live[sim.live_pos[q as usize] as usize], q);
            let expected = sim.compute_null_row(q);
            assert_eq!(
                sim.null_row[q as usize], expected,
                "null row of state {q} stale"
            );
        }
    }

    #[test]
    fn annihilate_uses_few_events_but_counts_all_steps() {
        let config = Config::from_input(&Annihilate, 52, 48);
        let mut sim = JumpSim::new(Annihilate, config);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut events = 0u64;
        while sim.advance(&mut rng) > 0 {
            events += 1;
            check_invariants(&mut sim);
        }
        // Exactly min(a, b) productive annihilations.
        assert_eq!(events, 48);
        assert_eq!(sim.counts(), &[4, 0, 96]);
        // Raw steps dominated by skipped silent interactions.
        assert!(sim.steps() > events);
    }

    #[test]
    fn voter_trajectory_invariants_hold() {
        let config = Config::from_input(&Voter, 12, 8);
        let mut sim = JumpSim::new(Voter, config);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            if sim.advance(&mut rng) == 0 {
                break;
            }
            check_invariants(&mut sim);
        }
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert!(out.verdict.is_consensus());
    }

    #[test]
    fn silent_configuration_detected() {
        // All agents already dead: every pair is silent.
        let mut sim = JumpSim::new(Annihilate, Config::from_counts(vec![0, 0, 10]));
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(sim.config_is_silent());
        assert_eq!(sim.advance(&mut rng), 0);
        let out = sim.run_to_consensus_with(&mut rng, 1_000, ConvergenceRule::Silence);
        assert_eq!(out.verdict, Verdict::Consensus(Opinion::A));
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn stuck_without_consensus_is_reported() {
        // 1 live +1 agent and 1 live −1 agent cannot meet productively?
        // They can (annihilation), so instead: +1 agents with dead agents
        // only — outputs already all A; use StateConsensus which can never
        // hold to exercise the Stuck verdict.
        let mut sim = JumpSim::new(Annihilate, Config::from_counts(vec![3, 0, 7]));
        let mut rng = SmallRng::seed_from_u64(4);
        let out = sim.run_to_consensus_with(&mut rng, 1_000, ConvergenceRule::StateConsensus);
        assert_eq!(out.verdict, Verdict::Stuck);
    }

    #[test]
    fn matches_count_sim_in_distribution_cheaply() {
        // Compare mean productive-event counts of the two engines on the
        // annihilation protocol (deterministic: always min(a,b) events), and
        // mean convergence steps on the voter model within a loose band.
        let mut rng = SmallRng::seed_from_u64(5);
        let trials = 40;
        let mut jump_mean = 0.0;
        let mut count_mean = 0.0;
        for _ in 0..trials {
            let mut js = JumpSim::new(Voter, Config::from_input(&Voter, 15, 5));
            jump_mean += js.run_to_consensus(&mut rng, u64::MAX).steps as f64;
            let mut cs = CountSim::new(Voter, Config::from_input(&Voter, 15, 5));
            count_mean += cs.run_to_consensus(&mut rng, u64::MAX).steps as f64;
        }
        jump_mean /= trials as f64;
        count_mean /= trials as f64;
        let ratio = jump_mean / count_mean;
        assert!(
            (0.5..2.0).contains(&ratio),
            "engines disagree: jump {jump_mean} vs count {count_mean}"
        );
    }

    #[test]
    fn unanimity_flag_tracks_final_state() {
        let mut sim = JumpSim::new(Voter, Config::from_input(&Voter, 9, 3));
        let mut rng = SmallRng::seed_from_u64(6);
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert!(out.verdict.is_consensus());
        assert!(sim.unanimous_state().is_some());
        let state = sim.unanimous_state().unwrap();
        assert_eq!(sim.counts()[state as usize], 12);
    }

    #[test]
    #[should_panic(expected = "does not match protocol")]
    fn rejects_wrong_state_space() {
        let _ = JumpSim::new(Voter, Config::from_counts(vec![1, 2, 3]));
    }

    /// The memoized geometric draw must be bit-identical to constructing
    /// `rand_distr::Geometric` fresh every step — same single RNG draw,
    /// same float pipeline — across cache hits, misses, and re-keys.
    #[test]
    fn geometric_cache_matches_rand_distr() {
        use rand_distr::{Distribution, Geometric};
        let w_total: u64 = 1_001 * 1_000;
        let weights = [1u64, 37, 500, 999_999, w_total - 1, 123_456];
        let mut cache = GeoCache::default();
        let mut rng_a = SmallRng::seed_from_u64(99);
        let mut rng_b = SmallRng::seed_from_u64(99);
        for round in 0..4 {
            for &w_prod in &weights {
                let cached = cache.sample(w_prod, w_total, &mut rng_a);
                let p = w_prod as f64 / w_total as f64;
                let fresh = Geometric::new(p)
                    .expect("probability in (0,1]")
                    .sample(&mut rng_b);
                assert_eq!(cached, fresh, "w_prod {w_prod} round {round}");
                // A repeated weight exercises the cache-hit path.
                let cached = cache.sample(w_prod, w_total, &mut rng_a);
                let fresh = Geometric::new(p)
                    .expect("probability in (0,1]")
                    .sample(&mut rng_b);
                assert_eq!(cached, fresh, "hit at w_prod {w_prod} round {round}");
            }
        }
        // RNG streams stayed in lockstep throughout.
        assert_eq!(rng_a.r#gen::<u64>(), rng_b.r#gen::<u64>());
    }

    #[test]
    fn reset_jump_sim_matches_a_fresh_one() {
        let mut used = JumpSim::new(Voter, Config::from_input(&Voter, 12, 8));
        let mut rng = SmallRng::seed_from_u64(41);
        let _ = used.run_to_consensus(&mut rng, u64::MAX);
        let config = Config::from_input(&Voter, 9, 11);
        used.reset(&config);
        let mut fresh = JumpSim::new(Voter, config);
        let mut rng_a = SmallRng::seed_from_u64(43);
        let mut rng_b = SmallRng::seed_from_u64(43);
        let out_a = used.run_to_consensus(&mut rng_a, u64::MAX);
        let out_b = fresh.run_to_consensus(&mut rng_b, u64::MAX);
        assert_eq!(out_a.verdict, out_b.verdict);
        assert_eq!(out_a.steps, out_b.steps);
        assert_eq!(used.counts(), fresh.counts());
        check_invariants(&mut used);
        assert_eq!(rng_a.r#gen::<u64>(), rng_b.r#gen::<u64>());
    }
}
