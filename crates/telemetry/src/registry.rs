//! Named metrics with deterministic snapshot ordering.
//!
//! A [`Registry`] owns named [`Counter`]/[`Gauge`]/[`LogHistogram`] cells.
//! Registration takes a lock; recording through the returned `Arc` handles
//! is lock-free. Snapshots come out as a [`RegistrySnapshot`] — a
//! `BTreeMap` keyed by metric name, so iteration (and therefore every
//! export) is deterministically ordered, and snapshots merge associatively
//! and commutatively like the analysis crate's `Summary` monoid.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, HistogramSnapshot, LogHistogram};

/// One live metric cell inside a [`Registry`].
#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LogHistogram>),
}

/// The plain value of one metric at snapshot time.
///
/// The histogram variant inlines its fixed bucket array (~0.5 KiB); these
/// values live in snapshot maps, not hot paths, so the size skew is fine.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    /// A monotone count; merges by addition.
    Counter(u64),
    /// A level; merges by maximum.
    Gauge(u64),
    /// A log₂-bucket distribution; merges bucket-wise.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// Folds `other` into `self` following each variant's merge law.
    ///
    /// # Panics
    ///
    /// Panics if the two values are different metric kinds under the same
    /// name — that is a programming error, not a data condition.
    pub fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            (mine, theirs) => {
                panic!("metric kind mismatch in merge: {mine:?} vs {theirs:?}")
            }
        }
    }

    /// The counter value, if this is a counter.
    #[must_use]
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value, if this is a gauge.
    #[must_use]
    pub fn as_gauge(&self) -> Option<u64> {
        match self {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram, if this is a histogram.
    #[must_use]
    pub fn as_histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// A deterministic, mergeable point-in-time copy of a [`Registry`] (or of
/// any hand-assembled set of metrics — sinks build these directly).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl RegistrySnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> RegistrySnapshot {
        RegistrySnapshot::default()
    }

    /// Whether the snapshot holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Inserts or overwrites a metric value under `name`.
    pub fn set(&mut self, name: &str, value: MetricValue) {
        self.entries.insert(name.to_owned(), value);
    }

    /// The value under `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Shorthand for a counter's value under `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(MetricValue::as_counter)
    }

    /// Shorthand for a gauge's value under `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(MetricValue::as_gauge)
    }

    /// Shorthand for a histogram under `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.get(name).and_then(MetricValue::as_histogram)
    }

    /// Iterates `(name, value)` in name order — the order every exporter
    /// uses, which is what makes exports byte-stable.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another snapshot in. Metrics present in both merge by their
    /// kind's law (counters add, gauges max, histograms add buckets);
    /// metrics present in only one side are kept. Associative and
    /// commutative, so per-trial snapshots can fold in any grouping.
    ///
    /// # Panics
    ///
    /// Panics if the same name maps to different metric kinds.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, value) in &other.entries {
            match self.entries.entry(name.clone()) {
                Entry::Occupied(mut e) => e.get_mut().merge(value),
                Entry::Vacant(e) => {
                    e.insert(value.clone());
                }
            }
        }
    }
}

/// A set of named live metric cells.
///
/// Registration locks briefly; the returned `Arc` handles record lock-free
/// and stay valid after the registry is dropped. Registering the same name
/// twice returns the same cell, so independent components can share a
/// metric by name.
///
/// # Example
///
/// ```
/// use avc_telemetry::Registry;
/// let reg = Registry::new();
/// let steps = reg.counter("sim.steps");
/// steps.add(128);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("sim.steps"), Some(128));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("{name} already registered as {other:?}, wanted counter"),
        }
    }

    /// The gauge named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("{name} already registered as {other:?}, wanted gauge"),
        }
    }

    /// The histogram named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(LogHistogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("{name} already registered as {other:?}, wanted histogram"),
        }
    }

    /// A plain, mergeable copy of every metric's current value, in name
    /// order.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock().expect("registry poisoned");
        let mut snap = RegistrySnapshot::new();
        for (name, metric) in metrics.iter() {
            let value = match metric {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            };
            snap.set(name, value);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(reg.snapshot().counter("x"), Some(5));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn snapshot_merge_follows_kind_laws() {
        let mut a = RegistrySnapshot::new();
        a.set("c", MetricValue::Counter(10));
        a.set("g", MetricValue::Gauge(4));
        let mut h1 = HistogramSnapshot::new();
        h1.record(3);
        a.set("h", MetricValue::Histogram(h1));

        let mut b = RegistrySnapshot::new();
        b.set("c", MetricValue::Counter(5));
        b.set("g", MetricValue::Gauge(9));
        let mut h2 = HistogramSnapshot::new();
        h2.record(100);
        b.set("h", MetricValue::Histogram(h2));
        b.set("only_b", MetricValue::Counter(1));

        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.counter("c"), Some(15));
        assert_eq!(ab.gauge("g"), Some(9));
        assert_eq!(ab.histogram("h").unwrap().count, 2);
        assert_eq!(ab.counter("only_b"), Some(1));

        // Commutativity.
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn snapshot_iteration_is_name_ordered() {
        let reg = Registry::new();
        let _ = reg.counter("zeta");
        let _ = reg.counter("alpha");
        let _ = reg.counter("mid");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }
}
