//! Seeded multi-trial experiment runners.

use crate::stats::{fraction, Summary};
use avc_population::engine::{AdaptiveSim, AgentSim, CountSim, JumpSim, Simulator, TauLeapSim};
use avc_population::graph::Graph;
use avc_population::rngutil::SeedSequence;
use avc_population::{Config, ConvergenceRule, MajorityInstance, Opinion, Protocol};
use avc_population::spec::RunOutcome;

/// Which simulation engine to use for a batch of trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Choose automatically: [`AdaptiveSim`], which is near-optimal across
    /// the dense and sparse regimes.
    #[default]
    Auto,
    /// Per-agent engine (`AgentSim` on the clique).
    Agent,
    /// Count-based engine (`CountSim`).
    Count,
    /// Jump-chain engine with null-step skipping (`JumpSim`).
    Jump,
    /// Explicit adaptive engine (`AdaptiveSim`).
    Adaptive,
    /// Approximate Poisson τ-leaping engine (`TauLeapSim`). Never selected
    /// automatically; exact semantics are the default everywhere.
    TauLeap,
}

/// A batch of trials on one majority instance.
///
/// Built with a fluent API; see the [crate-level example](crate).
#[derive(Debug, Clone, Copy)]
pub struct TrialPlan {
    instance: MajorityInstance,
    runs: u64,
    seed: u64,
    max_steps: u64,
}

impl TrialPlan {
    /// A plan with the paper's defaults: 101 runs, unlimited steps, seed 0.
    #[must_use]
    pub fn new(instance: MajorityInstance) -> TrialPlan {
        TrialPlan {
            instance,
            runs: 101,
            seed: 0,
            max_steps: u64::MAX,
        }
    }

    /// Sets the number of independent runs.
    #[must_use]
    pub fn runs(mut self, runs: u64) -> TrialPlan {
        self.runs = runs;
        self
    }

    /// Sets the master seed; trial `i` uses stream `i` of the derived
    /// [`SeedSequence`], so results are independent of execution order.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> TrialPlan {
        self.seed = seed;
        self
    }

    /// Caps each run at `max_steps` scheduler steps.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> TrialPlan {
        self.max_steps = max_steps;
        self
    }

    /// The majority instance under test.
    #[must_use]
    pub fn instance(&self) -> MajorityInstance {
        self.instance
    }
}

/// Outcomes of a batch of trials, with the instance's expected winner.
#[derive(Debug, Clone)]
pub struct TrialResults {
    outcomes: Vec<RunOutcome>,
    expected: Option<Opinion>,
}

impl TrialResults {
    /// The raw per-run outcomes.
    #[must_use]
    pub fn outcomes(&self) -> &[RunOutcome] {
        &self.outcomes
    }

    /// Mean parallel convergence time over runs that converged.
    ///
    /// # Panics
    ///
    /// Panics if no run converged.
    #[must_use]
    pub fn mean_parallel_time(&self) -> f64 {
        self.summary().mean
    }

    /// Summary statistics of parallel convergence time over converged runs.
    ///
    /// # Panics
    ///
    /// Panics if no run converged.
    #[must_use]
    pub fn summary(&self) -> Summary {
        let times: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.verdict.is_consensus())
            .map(|o| o.parallel_time)
            .collect();
        Summary::from_samples(&times)
    }

    /// Fraction of runs that converged to the *wrong* opinion (the paper's
    /// "fraction of runs to error final state", Figure 3 right).
    ///
    /// Runs that did not converge count as errors; ties have no wrong
    /// answer, so the fraction is 0 for tied instances.
    #[must_use]
    pub fn error_fraction(&self) -> f64 {
        let Some(expected) = self.expected else {
            return 0.0;
        };
        fraction(&self.outcomes, |o| !o.verdict.is_correct(expected))
    }

    /// Fraction of runs that converged (to either opinion).
    #[must_use]
    pub fn convergence_fraction(&self) -> f64 {
        fraction(&self.outcomes, |o| o.verdict.is_consensus())
    }

    /// Parallel convergence times of the runs that converged.
    #[must_use]
    pub fn converged_times(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.is_consensus())
            .map(|o| o.parallel_time)
            .collect()
    }
}

/// Runs one simulation to convergence on the chosen engine.
pub fn run_one<P: Protocol + Clone>(
    protocol: &P,
    config: Config,
    engine: EngineKind,
    rule: ConvergenceRule,
    rng: &mut rand::rngs::SmallRng,
    max_steps: u64,
) -> RunOutcome {
    match engine {
        EngineKind::Agent => {
            let n = config.population() as usize;
            AgentSim::new(protocol.clone(), config, Graph::clique(n))
                .run_to_consensus_with(rng, max_steps, rule)
        }
        EngineKind::Count => CountSim::new(protocol.clone(), config)
            .run_to_consensus_with(rng, max_steps, rule),
        EngineKind::Jump => JumpSim::new(protocol.clone(), config)
            .run_to_consensus_with(rng, max_steps, rule),
        EngineKind::TauLeap => TauLeapSim::new(protocol.clone(), config)
            .run_to_consensus_with(rng, max_steps, rule),
        EngineKind::Auto | EngineKind::Adaptive => AdaptiveSim::new(protocol.clone(), config)
            .run_to_consensus_with(rng, max_steps, rule),
    }
}

/// Runs a batch of independent trials of `protocol` on the plan's instance.
///
/// Trial `i` is seeded from stream `i` of `SeedSequence::new(plan.seed)`,
/// making every batch reproducible run-for-run.
pub fn run_trials<P: Protocol + Clone>(
    protocol: &P,
    plan: &TrialPlan,
    engine: EngineKind,
    rule: ConvergenceRule,
) -> TrialResults {
    let seeds = SeedSequence::new(plan.seed);
    let instance = plan.instance;
    let outcomes = (0..plan.runs)
        .map(|trial| {
            let mut rng = seeds.rng_for(trial);
            let config = Config::from_input(protocol, instance.a(), instance.b());
            run_one(protocol, config, engine, rule, &mut rng, plan.max_steps)
        })
        .collect();
    TrialResults {
        outcomes,
        expected: instance.winner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_protocols::{FourState, ThreeState, Voter};

    #[test]
    fn trials_are_reproducible() {
        let plan = TrialPlan::new(MajorityInstance::new(8, 5)).runs(10).seed(3);
        let a = run_trials(&FourState, &plan, EngineKind::Jump, ConvergenceRule::OutputConsensus);
        let b = run_trials(&FourState, &plan, EngineKind::Jump, ConvergenceRule::OutputConsensus);
        assert_eq!(a.outcomes(), b.outcomes());
    }

    #[test]
    fn four_state_never_errs() {
        let plan = TrialPlan::new(MajorityInstance::one_extra(21)).runs(30);
        for engine in [
            EngineKind::Agent,
            EngineKind::Count,
            EngineKind::Jump,
            EngineKind::Adaptive,
        ] {
            let r = run_trials(&FourState, &plan, engine, ConvergenceRule::OutputConsensus);
            assert_eq!(r.error_fraction(), 0.0, "engine {engine:?}");
            assert_eq!(r.convergence_fraction(), 1.0);
        }
    }

    #[test]
    fn voter_errs_roughly_at_minority_fraction() {
        // P[error] = b/n = 5/20.
        let plan = TrialPlan::new(MajorityInstance::new(15, 5)).runs(300).seed(1);
        let r = run_trials(&Voter, &plan, EngineKind::Count, ConvergenceRule::OutputConsensus);
        assert!((r.error_fraction() - 0.25).abs() < 0.08, "{}", r.error_fraction());
    }

    #[test]
    fn tie_instances_have_zero_error_fraction() {
        let plan = TrialPlan::new(MajorityInstance::new(5, 5)).runs(5);
        let r = run_trials(&Voter, &plan, EngineKind::Count, ConvergenceRule::OutputConsensus);
        assert_eq!(r.error_fraction(), 0.0);
    }

    #[test]
    fn max_steps_shows_up_as_non_convergence() {
        let plan = TrialPlan::new(MajorityInstance::new(50, 50)).runs(5).max_steps(3);
        let r = run_trials(&Voter, &plan, EngineKind::Count, ConvergenceRule::OutputConsensus);
        assert!(r.convergence_fraction() < 1.0);
    }

    #[test]
    fn three_state_runs_under_state_consensus() {
        let plan = TrialPlan::new(MajorityInstance::new(40, 20)).runs(20);
        let r = run_trials(
            &ThreeState::new(),
            &plan,
            EngineKind::Auto,
            ConvergenceRule::StateConsensus,
        );
        assert_eq!(r.convergence_fraction(), 1.0);
        assert!(r.summary().mean > 0.0);
    }
}
