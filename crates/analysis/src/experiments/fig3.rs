//! Figure 3: three protocols at the hardest margin `ε = 1/n`.
//!
//! The paper's first experiment compares, for `n ∈ {11, 101, 1001, 10001,
//! 100001}` with the majority decided by a single agent:
//!
//! * the 3-state approximate protocol (fast, errs),
//! * the 4-state exact protocol (slow, never errs),
//! * the "n-state" AVC (fast *and* never errs),
//!
//! reporting the mean parallel convergence time (left panel) and the
//! fraction of runs converging to the wrong final state (right panel) over
//! 101 runs.
//!
//! Trials execute through the chunked run driver (see
//! `avc_population::driver`): each engine's monomorphized chunk loop stops
//! at the exact step its convergence rule first holds, so these results are
//! independent of chunking and of the pre-driver per-step loop they
//! replaced.

use crate::harness::{EngineKind, Parallelism, ScenarioPlan, StatsCollector, TrialResults};
use crate::stats::quantile;
use crate::table::{fmt_num, Table};
use avc_population::telemetry::CellTelemetry;
use avc_population::{ConvergenceRule, MajorityInstance, ProtocolSpec, Scenario};
use avc_protocols::Avc;

/// Parameters for the Figure 3 reproduction.
#[derive(Debug, Clone)]
pub struct Config {
    /// Population sizes (odd, so `εn = 1` is expressible).
    pub ns: Vec<u64>,
    /// Independent runs per cell (the paper uses 101).
    pub runs: u64,
    /// Master seed.
    pub seed: u64,
    /// Thread sharding of each cell's trials (results are unaffected).
    pub parallelism: Parallelism,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            ns: vec![11, 101, 1_001, 10_001, 100_001],
            runs: 101,
            seed: 2015,
            parallelism: Parallelism::default(),
        }
    }
}

impl Config {
    /// A downscaled configuration for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Config {
        Config {
            ns: vec![11, 101, 1_001],
            runs: 11,
            seed: 2015,
            parallelism: Parallelism::default(),
        }
    }

    /// Builds a configuration from parsed CLI arguments (`--quick`, `--ns`,
    /// `--runs`, `--seed`, `--serial`/`--threads`).
    #[must_use]
    pub fn from_args(args: &crate::cli::Args) -> Config {
        let mut config = if args.flag("quick") {
            Config::quick()
        } else {
            Config::default()
        };
        config.ns = args.get_u64_list("ns", &config.ns);
        config.runs = args.get_u64("runs", config.runs);
        config.seed = args.get_u64("seed", config.seed);
        config.parallelism = args.parallelism();
        config
    }
}

/// One cell of Figure 3.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Population size.
    pub n: u64,
    /// Protocol name.
    pub protocol: String,
    /// Number of states per agent.
    pub states: u64,
    /// Trial outcomes.
    pub results: TrialResults,
    /// Aggregated run telemetry (engine counters, convergence histogram,
    /// wall timings) for the cell's batch.
    pub telemetry: CellTelemetry,
}

/// The three protocol columns of Figure 3, in row order. These are the
/// stable cell keys used by sweep manifests; the human-readable
/// [`Cell::protocol`] labels differ (e.g. `avc(s=...)`).
pub const PROTOCOL_KEYS: [&str; 3] = ["three_state", "four_state", "avc"];

/// Runs the full experiment and returns one cell per `(n, protocol)`.
///
/// The 3-state protocol is measured to its terminal all-`x`/all-`y` state
/// ([`ConvergenceRule::StateConsensus`]); the exact protocols to output
/// consensus, which for them is stable (Lemma A.1).
#[must_use]
pub fn run(config: &Config) -> Vec<Cell> {
    run_with_stats(config, &StatsCollector::new())
}

/// As [`run`], folding per-cell throughput telemetry into `stats`.
#[must_use]
pub fn run_with_stats(config: &Config, stats: &StatsCollector) -> Vec<Cell> {
    let mut cells = Vec::new();
    for ni in 0..config.ns.len() {
        for pi in 0..PROTOCOL_KEYS.len() {
            cells.push(run_cell(config, ni, pi, stats));
        }
    }
    cells
}

/// Lowers one `(n, protocol)` cell to a declarative run scenario: `ni`
/// indexes [`Config::ns`], `pi` indexes [`PROTOCOL_KEYS`]. The 3-state
/// protocol is measured to its terminal all-`x`/all-`y` state
/// ([`ConvergenceRule::StateConsensus`]) on the jump engine; the exact
/// protocols to output consensus (stable for them, Lemma A.1) — 4-state on
/// the jump engine, AVC (whose large state spaces favor count space) on the
/// adaptive `auto` engine.
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
pub fn cell_scenario(config: &Config, ni: usize, pi: usize) -> Scenario {
    let n = config.ns[ni];
    let (protocol, engine, rule) = match PROTOCOL_KEYS[pi] {
        "three_state" => (
            ProtocolSpec::ThreeState,
            EngineKind::Jump,
            ConvergenceRule::StateConsensus,
        ),
        "four_state" => (
            ProtocolSpec::FourState,
            EngineKind::Jump,
            ConvergenceRule::OutputConsensus,
        ),
        _ => {
            let avc = Avc::with_states(n).expect("n >= 11 is a valid state budget");
            (
                ProtocolSpec::Avc {
                    m: avc.m(),
                    d: avc.d(),
                },
                EngineKind::Auto,
                ConvergenceRule::OutputConsensus,
            )
        }
    };
    Scenario::new(protocol, MajorityInstance::one_extra(n))
        .engine(engine)
        .rule(rule)
        .runs(config.runs)
        .seed(config.seed.wrapping_add(ni as u64))
}

/// Runs one `(n, protocol)` cell through the shared [`ScenarioPlan`]
/// harness. The cell's trials depend only on its [`cell_scenario`] — never
/// on which other cells run alongside it — which is what makes
/// cell-granular checkpoint/resume sound.
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
pub fn run_cell(config: &Config, ni: usize, pi: usize, stats: &StatsCollector) -> Cell {
    let n = config.ns[ni];
    let scenario = cell_scenario(config, ni, pi);
    let (protocol, states) = match scenario.protocol {
        ProtocolSpec::ThreeState => ("3-state".to_string(), 3),
        ProtocolSpec::FourState => ("4-state".to_string(), 4),
        ProtocolSpec::Avc { m, d } => {
            let states = m + 2 * u64::from(d) + 1;
            (format!("avc(s={states})"), states)
        }
        ProtocolSpec::Voter | ProtocolSpec::Bef { .. } | ProtocolSpec::Degssu { .. } => {
            unreachable!("figure 3 only runs the 3-state, 4-state, and AVC protocols")
        }
    };
    let (results, telemetry) = ScenarioPlan::new(scenario)
        .parallelism(config.parallelism)
        .run_with_telemetry(stats);
    Cell {
        n,
        protocol,
        states,
        results,
        telemetry,
    }
}

/// Renders the left panel (mean parallel convergence time).
#[must_use]
pub fn time_table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Figure 3 (left): parallel convergence time, eps = 1/n",
        [
            "n",
            "protocol",
            "states",
            "mean_parallel_time",
            "std_dev",
            "median",
            "p10",
            "p90",
            "runs",
        ],
    );
    for cell in cells {
        let s = cell.results.summary();
        let times = cell.results.converged_times();
        t.push_row([
            cell.n.to_string(),
            cell.protocol.clone(),
            cell.states.to_string(),
            fmt_num(s.mean),
            fmt_num(s.std_dev),
            fmt_num(s.median),
            fmt_num(quantile(&times, 0.1)),
            fmt_num(quantile(&times, 0.9)),
            s.count.to_string(),
        ]);
    }
    t
}

/// Renders the right panel (fraction of error convergence).
#[must_use]
pub fn error_table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Figure 3 (right): fraction of runs converging to the wrong state",
        ["n", "protocol", "error_fraction", "runs"],
    );
    for cell in cells {
        t.push_row([
            cell.n.to_string(),
            cell.protocol.clone(),
            fmt_num(cell.results.error_fraction()),
            cell.results.outcomes().len().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_figure3_shape() {
        let cells = run(&Config {
            ns: vec![101, 1_001],
            runs: 9,
            seed: 1,
            parallelism: Parallelism::Auto,
        });
        assert_eq!(cells.len(), 6);

        let cell = |n: u64, name: &str| {
            cells
                .iter()
                .find(|c| c.n == n && c.protocol.starts_with(name))
                .unwrap()
        };

        for &n in &[101u64, 1_001] {
            // Exact protocols never err; 3-state errs with ~1/2 probability
            // at eps = 1/n (not asserted — it is genuinely random — but the
            // exactness is deterministic).
            assert_eq!(cell(n, "4-state").results.error_fraction(), 0.0);
            assert_eq!(cell(n, "avc").results.error_fraction(), 0.0);

            // AVC is at least 5x faster than 4-state already at n = 101.
            let speedup = cell(n, "4-state").results.mean_parallel_time()
                / cell(n, "avc").results.mean_parallel_time();
            assert!(speedup > 5.0, "n={n}: speedup only {speedup:.1}");
        }

        // 4-state time grows superlinearly in n at eps = 1/n...
        let t4_small = cell(101, "4-state").results.mean_parallel_time();
        let t4_large = cell(1_001, "4-state").results.mean_parallel_time();
        assert!(t4_large > 5.0 * t4_small);
        // ...while AVC's stays polylogarithmic (well under 3x here).
        let ta_small = cell(101, "avc").results.mean_parallel_time();
        let ta_large = cell(1_001, "avc").results.mean_parallel_time();
        assert!(ta_large < 3.0 * ta_small, "{ta_small} -> {ta_large}");
    }

    #[test]
    fn tables_have_one_row_per_cell() {
        let cells = run(&Config {
            ns: vec![11],
            runs: 3,
            seed: 2,
            parallelism: Parallelism::Serial,
        });
        assert_eq!(time_table(&cells).num_rows(), 3);
        assert_eq!(error_table(&cells).num_rows(), 3);
    }
}
