//! Configurations as multisets of states (species counts).

use crate::protocol::{Opinion, Protocol, StateId};

/// A configuration of a population: how many agents occupy each state.
///
/// Because agents are anonymous, a configuration on a clique is fully
/// described by the count of agents per state ("species counts"). This is
/// the representation shared by the count-based engines and the exhaustive
/// model checker.
///
/// # Example
///
/// ```
/// use avc_population::Config;
///
/// let config = Config::from_counts(vec![5, 0, 2]);
/// assert_eq!(config.population(), 7);
/// assert_eq!(config.count(0), 5);
/// assert_eq!(config.live_states().collect::<Vec<_>>(), vec![0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Config {
    counts: Vec<u64>,
    population: u64,
}

impl Config {
    /// Creates a configuration from per-state counts.
    pub fn from_counts(counts: Vec<u64>) -> Config {
        let population = counts.iter().sum();
        Config { counts, population }
    }

    /// Creates the initial configuration of a majority instance: `a` agents
    /// in `protocol.input(Opinion::A)` and `b` agents in
    /// `protocol.input(Opinion::B)`.
    ///
    /// # Panics
    ///
    /// Panics if the protocol maps both opinions to the same input state
    /// while both `a` and `b` are nonzero.
    pub fn from_input<P: Protocol>(protocol: &P, a: u64, b: u64) -> Config {
        let sa = protocol.input(Opinion::A);
        let sb = protocol.input(Opinion::B);
        assert!(
            sa != sb || a == 0 || b == 0,
            "protocol `{}` does not distinguish input opinions",
            protocol.name()
        );
        let mut counts = vec![0; protocol.num_states() as usize];
        counts[sa as usize] += a;
        counts[sb as usize] += b;
        Config::from_counts(counts)
    }

    /// Number of agents in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn count(&self, state: StateId) -> u64 {
        self.counts[state as usize]
    }

    /// Total number of agents `n`.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Number of distinct states the configuration ranges over (the
    /// protocol's `|Q|`, not the number of live states).
    #[must_use]
    pub fn num_states(&self) -> u32 {
        self.counts.len() as u32
    }

    /// The raw count vector.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.counts
    }

    /// Iterator over states with nonzero count.
    pub fn live_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i as StateId)
    }

    /// Number of agents whose output under `protocol` is `opinion`.
    pub fn count_with_output<P: Protocol>(&self, protocol: &P, opinion: Opinion) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .filter(|(i, _)| protocol.output(*i as StateId) == opinion)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Whether all agents are in a single state (and which).
    #[must_use]
    pub fn unanimous_state(&self) -> Option<StateId> {
        self.live_states()
            .next()
            .filter(|&s| self.count(s) == self.population)
    }

    /// Applies one interaction: removes one agent each from `from`, adds one
    /// agent each to `to` (the two elements of each pair may coincide).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a count would underflow, which indicates
    /// sampling a pair that is not present.
    pub fn apply(&mut self, from: (StateId, StateId), to: (StateId, StateId)) {
        debug_assert!(
            if from.0 == from.1 {
                self.counts[from.0 as usize] >= 2
            } else {
                self.counts[from.0 as usize] >= 1 && self.counts[from.1 as usize] >= 1
            },
            "interaction pair not present in configuration"
        );
        self.counts[from.0 as usize] -= 1;
        self.counts[from.1 as usize] -= 1;
        self.counts[to.0 as usize] += 1;
        self.counts[to.1 as usize] += 1;
    }

    /// Consumes the configuration and returns the count vector.
    #[must_use]
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }
}

impl FromIterator<u64> for Config {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Config {
        Config::from_counts(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tests_support::Voter;

    #[test]
    fn from_counts_tracks_population() {
        let c = Config::from_counts(vec![1, 2, 3]);
        assert_eq!(c.population(), 6);
        assert_eq!(c.num_states(), 3);
    }

    #[test]
    fn from_input_places_opinions() {
        let c = Config::from_input(&Voter, 4, 9);
        assert_eq!(c.count(0), 4);
        assert_eq!(c.count(1), 9);
        assert_eq!(c.population(), 13);
    }

    #[test]
    #[should_panic(expected = "does not distinguish")]
    fn from_input_rejects_degenerate_encoding() {
        struct Collapsed;
        impl crate::Protocol for Collapsed {
            fn num_states(&self) -> u32 {
                1
            }
            fn transition(&self, a: StateId, b: StateId) -> (StateId, StateId) {
                (a, b)
            }
            fn output(&self, _: StateId) -> Opinion {
                Opinion::A
            }
            fn input(&self, _: Opinion) -> StateId {
                0
            }
            fn name(&self) -> &str {
                "collapsed"
            }
        }
        let _ = Config::from_input(&Collapsed, 1, 1);
    }

    #[test]
    fn apply_moves_agents() {
        let mut c = Config::from_counts(vec![2, 1, 0]);
        c.apply((0, 1), (2, 2));
        assert_eq!(c.as_slice(), &[1, 0, 2]);
        assert_eq!(c.population(), 3);
    }

    #[test]
    fn apply_supports_identical_pair() {
        let mut c = Config::from_counts(vec![3, 0]);
        c.apply((0, 0), (1, 1));
        assert_eq!(c.as_slice(), &[1, 2]);
    }

    #[test]
    fn unanimity_detection() {
        assert_eq!(Config::from_counts(vec![0, 5]).unanimous_state(), Some(1));
        assert_eq!(Config::from_counts(vec![1, 4]).unanimous_state(), None);
    }

    #[test]
    fn count_with_output_partitions_population() {
        let c = Config::from_input(&Voter, 4, 9);
        assert_eq!(c.count_with_output(&Voter, Opinion::A), 4);
        assert_eq!(c.count_with_output(&Voter, Opinion::B), 9);
    }

    #[test]
    fn live_states_skips_zeros() {
        let c = Config::from_counts(vec![0, 3, 0, 1]);
        assert_eq!(c.live_states().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn collects_from_iterator() {
        let c: Config = [1u64, 2, 3].into_iter().collect();
        assert_eq!(c.population(), 6);
    }
}
