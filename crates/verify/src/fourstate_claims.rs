//! Machine checks of the building-block claims in Theorem B.1's proof.
//!
//! * **Claim B.2**: for any correct exact-majority protocol, the forward
//!   closures of two pure `S₀`/`S₁` configurations with different `S₀`
//!   counts are disjoint (otherwise a `2n−1`-agent system could reach one
//!   configuration from inputs with opposite majorities).
//! * **Corollary B.3**: from a mixed pure configuration, the all-`S₀` and
//!   all-`S₁` configurations are unreachable.
//!
//! The claims are theorems about *every correct protocol*; here we verify
//! the concrete instances the proof manipulates on the four-state protocol
//! (and AVC), and — equally important — show they *fail* for incorrect
//! protocols like the voter model, demonstrating the checker has teeth.

use crate::reach::{ReachabilityGraph, StateSpaceTooLarge};
use avc_population::{Config, Protocol};
use std::collections::HashSet;

/// The forward closure of the pure configuration with `z` agents in
/// `input(A)` and `n − z` agents in `input(B)`, as a set of count vectors.
///
/// # Errors
///
/// Returns [`StateSpaceTooLarge`] if the closure exceeds `max_configs`.
pub fn pure_closure<P: Protocol>(
    protocol: &P,
    z: u64,
    n: u64,
    max_configs: usize,
) -> Result<HashSet<Vec<u64>>, StateSpaceTooLarge> {
    let initial = Config::from_input(protocol, z, n - z);
    let graph = ReachabilityGraph::explore(protocol, &initial, max_configs)?;
    Ok((0..graph.len())
        .map(|id| graph.config(id).to_vec())
        .collect())
}

/// Checks Claim B.2 on `protocol` for population `n`: closures from all
/// pure configurations `z = 0..=n` are pairwise disjoint.
///
/// Returns the offending pair `(z, w)` when the claim fails.
///
/// # Errors
///
/// Returns [`StateSpaceTooLarge`] if any closure exceeds `max_configs`.
pub fn claim_b2_disjoint_closures<P: Protocol>(
    protocol: &P,
    n: u64,
    max_configs: usize,
) -> Result<Result<(), (u64, u64)>, StateSpaceTooLarge> {
    let closures: Vec<HashSet<Vec<u64>>> = (0..=n)
        .map(|z| pure_closure(protocol, z, n, max_configs))
        .collect::<Result<_, _>>()?;
    for z in 0..=n {
        for w in z + 1..=n {
            if !closures[z as usize].is_disjoint(&closures[w as usize]) {
                return Ok(Err((z, w)));
            }
        }
    }
    Ok(Ok(()))
}

/// Checks Corollary B.3 on `protocol` for population `n`: from every mixed
/// pure configuration (`1 ≤ z ≤ n − 1`), neither all-`input(A)` nor
/// all-`input(B)` is reachable.
///
/// Returns the offending `z` when the corollary fails.
///
/// # Errors
///
/// Returns [`StateSpaceTooLarge`] if any closure exceeds `max_configs`.
pub fn corollary_b3_no_pure_absorption<P: Protocol>(
    protocol: &P,
    n: u64,
    max_configs: usize,
) -> Result<Result<(), u64>, StateSpaceTooLarge> {
    let all_a = Config::from_input(protocol, n, 0).as_slice().to_vec();
    let all_b = Config::from_input(protocol, 0, n).as_slice().to_vec();
    for z in 1..n {
        let closure = pure_closure(protocol, z, n, max_configs)?;
        if closure.contains(&all_a) || closure.contains(&all_b) {
            return Ok(Err(z));
        }
    }
    Ok(Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_protocols::{Avc, FourState, Voter};

    #[test]
    fn four_state_satisfies_claim_b2() {
        for n in 2..=7u64 {
            let result = claim_b2_disjoint_closures(&FourState, n, 500_000).unwrap();
            assert_eq!(result, Ok(()), "claim B.2 failed at n={n}");
        }
    }

    #[test]
    fn avc_satisfies_claim_b2() {
        let avc = Avc::new(3, 1).expect("valid parameters");
        for n in 2..=5u64 {
            let result = claim_b2_disjoint_closures(&avc, n, 2_000_000).unwrap();
            assert_eq!(result, Ok(()), "claim B.2 failed at n={n}");
        }
    }

    #[test]
    fn four_state_satisfies_corollary_b3() {
        for n in 2..=7u64 {
            let result = corollary_b3_no_pure_absorption(&FourState, n, 500_000).unwrap();
            assert_eq!(result, Ok(()), "corollary B.3 failed at n={n}");
        }
    }

    #[test]
    fn voter_violates_both_claims() {
        // The voter model is not exact, and the checker must notice: its
        // closures overlap (every mixed z can reach every other mix) and it
        // absorbs into pure configurations.
        let b2 = claim_b2_disjoint_closures(&Voter, 4, 100_000).unwrap();
        assert!(b2.is_err(), "voter closures should overlap");
        let b3 = corollary_b3_no_pure_absorption(&Voter, 4, 100_000).unwrap();
        assert!(b3.is_err(), "voter should absorb into pure configurations");
    }

    #[test]
    fn pure_closure_of_unanimous_input_is_singleton_for_four_state() {
        // All-A under the four-state protocol is silent: nothing to reach.
        let closure = pure_closure(&FourState, 5, 5, 1_000).unwrap();
        assert_eq!(closure.len(), 1);
    }
}
