//! Terminal (ASCII) scatter/line plots.
//!
//! The paper's figures are log–log plots; the experiment binaries render a
//! terminal approximation next to each table so the *shape* of the result —
//! who wins, where curves cross, what the slope is — is visible without
//! leaving the shell. Dependency-free by design.

use std::fmt::Write as _;

/// Marker characters assigned to series in order.
const MARKERS: [char; 8] = ['o', '+', 'x', '*', '#', '@', '%', '&'];

/// A scatter plot of one or more named series.
///
/// # Example
///
/// ```
/// use avc_analysis::plot::ScatterPlot;
///
/// let mut plot = ScatterPlot::new("demo", 40, 10).log_log();
/// plot.add_series("linear", (1..=100).map(|i| (i as f64, i as f64)));
/// let text = plot.render();
/// assert!(text.contains("demo"));
/// assert!(text.contains("o linear"));
/// ```
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    title: String,
    width: usize,
    height: usize,
    log_x: bool,
    log_y: bool,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl ScatterPlot {
    /// Creates an empty plot with the given interior grid size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> ScatterPlot {
        assert!(width >= 2 && height >= 2, "plot grid too small");
        ScatterPlot {
            title: title.into(),
            width,
            height,
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Uses logarithmic scales on both axes (points must be positive).
    #[must_use]
    pub fn log_log(mut self) -> ScatterPlot {
        self.log_x = true;
        self.log_y = true;
        self
    }

    /// Uses a logarithmic x-axis only.
    #[must_use]
    pub fn log_x(mut self) -> ScatterPlot {
        self.log_x = true;
        self
    }

    /// Adds a named series of `(x, y)` points.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is non-positive while its axis is logarithmic,
    /// or non-finite.
    pub fn add_series(
        &mut self,
        name: impl Into<String>,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) {
        let points: Vec<(f64, f64)> = points.into_iter().collect();
        for &(x, y) in &points {
            assert!(x.is_finite() && y.is_finite(), "non-finite point");
            assert!(
                !self.log_x || x > 0.0,
                "log x-axis needs positive x, got {x}"
            );
            assert!(
                !self.log_y || y > 0.0,
                "log y-axis needs positive y, got {y}"
            );
        }
        self.series.push((name.into(), points));
    }

    /// Renders the plot as multi-line text (trailing newline included).
    ///
    /// Overlapping points from different series show the marker of the
    /// later-added series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .collect();
        if all.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let tx = |x: f64| if self.log_x { x.log10() } else { x };
        let ty = |y: f64| if self.log_y { y.log10() } else { y };
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x_min = x_min.min(tx(x));
            x_max = x_max.max(tx(x));
            y_min = y_min.min(ty(y));
            y_max = y_max.max(ty(y));
        }
        if x_max == x_min {
            x_max = x_min + 1.0;
        }
        if y_max == y_min {
            y_max = y_min + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, (_, pts)) in self.series.iter().enumerate() {
            let marker = MARKERS[si % MARKERS.len()];
            for &(x, y) in pts {
                let cx =
                    ((tx(x) - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((ty(y) - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                grid[self.height - 1 - cy][cx] = marker;
            }
        }

        let y_label = |v: f64| {
            let raw = if self.log_y { 10f64.powf(v) } else { v };
            format!("{raw:9.3e}")
        };
        for (row_idx, row) in grid.iter().enumerate() {
            let label = if row_idx == 0 {
                y_label(y_max)
            } else if row_idx == self.height - 1 {
                y_label(y_min)
            } else {
                " ".repeat(9)
            };
            let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{} +{}", " ".repeat(9), "-".repeat(self.width));
        let x_lo = if self.log_x { 10f64.powf(x_min) } else { x_min };
        let x_hi = if self.log_x { 10f64.powf(x_max) } else { x_max };
        let left = format!("{x_lo:.3e}");
        let right = format!("{x_hi:.3e}");
        let pad = (self.width + 1).saturating_sub(left.len() + right.len());
        let _ = writeln!(out, "{}{left}{}{right}", " ".repeat(10), " ".repeat(pad));
        for (si, (name, _)) in self.series.iter().enumerate() {
            let _ = writeln!(
                out,
                "{}{} {name}",
                " ".repeat(10),
                MARKERS[si % MARKERS.len()]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_axes_and_legend() {
        let mut plot = ScatterPlot::new("curve", 20, 6);
        plot.add_series("s1", vec![(0.0, 0.0), (1.0, 1.0)]);
        plot.add_series("s2", vec![(0.5, 0.5)]);
        let text = plot.render();
        assert!(text.starts_with("curve\n"));
        assert!(text.contains("o s1"));
        assert!(text.contains("+ s2"));
        assert!(text.contains('|'));
        assert!(text.contains('+'));
    }

    #[test]
    fn corners_map_to_extremes() {
        let mut plot = ScatterPlot::new("t", 10, 4);
        plot.add_series("s", vec![(0.0, 0.0), (9.0, 3.0)]);
        let text = plot.render();
        let lines: Vec<&str> = text.lines().collect();
        // First grid row holds the max-y point at the right edge.
        assert!(lines[1].ends_with('o'), "{text}");
        // Last grid row holds the min-y point at the left edge.
        assert_eq!(lines[4].chars().nth(11), Some('o'), "{text}");
    }

    #[test]
    fn log_log_positions_by_decade() {
        let mut plot = ScatterPlot::new("t", 21, 5).log_log();
        // Three decades in x: 1, 10, 100 land at columns 0, 10, 20.
        plot.add_series("s", vec![(1.0, 1.0), (10.0, 10.0), (100.0, 100.0)]);
        let text = plot.render();
        let lines: Vec<&str> = text.lines().collect();
        let row_of = |needle: usize| {
            lines[1..=5]
                .iter()
                .position(|l| l.chars().nth(11 + needle) == Some('o'))
        };
        assert_eq!(row_of(0), Some(4)); // (1,1) bottom-left
        assert_eq!(row_of(10), Some(2)); // (10,10) center
        assert_eq!(row_of(20), Some(0)); // (100,100) top-right
    }

    #[test]
    fn empty_plot_reports_no_data() {
        let plot = ScatterPlot::new("t", 10, 4);
        assert!(plot.render().contains("(no data)"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_axis_rejects_nonpositive() {
        let mut plot = ScatterPlot::new("t", 10, 4).log_log();
        plot.add_series("s", vec![(0.0, 1.0)]);
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut plot = ScatterPlot::new("t", 10, 4);
        plot.add_series("s", vec![(1.0, 2.0), (1.0, 2.0)]);
        let text = plot.render();
        assert!(text.contains('o'));
    }
}
