//! Exporters: JSON snapshot emission, a crash-safe JSONL event stream, and
//! the Prometheus text exposition format.
//!
//! Emission only — this crate writes JSON but never parses it (the store
//! crate already owns a parser for its records and reuses it for
//! `avc report`/`avc top`). All emitted values are integers or escaped
//! strings, so a snapshot's JSON is byte-stable: same metrics in, same
//! bytes out, on every platform.
//!
//! [`JsonlWriter`] follows the store's durability discipline: every append
//! rewrites the whole file through a temp-file + fsync + rename, so a
//! crash leaves either the old file or the new one — and a reader that
//! arrives mid-write of some *other* tool's stream still only trusts
//! newline-terminated lines ([`read_lines_tolerant`] drops a torn tail).

use std::fs::{self, File};
use std::io::{self, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};

use crate::metrics::{bucket_bounds, HistogramSnapshot};
use crate::registry::{MetricValue, RegistrySnapshot};

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The JSON form of one histogram: exact count/sum plus the sparse nonzero
/// buckets as `[bit_length, count]` pairs.
#[must_use]
pub fn histogram_to_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .into_iter()
        .map(|(i, c)| format!("[{i},{c}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        buckets.join(",")
    )
}

/// The JSON form of one metric value, tagged by kind.
#[must_use]
pub fn metric_to_json(value: &MetricValue) -> String {
    match value {
        MetricValue::Counter(v) => format!("{{\"counter\":{v}}}"),
        MetricValue::Gauge(v) => format!("{{\"gauge\":{v}}}"),
        MetricValue::Histogram(h) => {
            format!("{{\"histogram\":{}}}", histogram_to_json(h))
        }
    }
}

/// The JSON form of a whole snapshot: an object keyed by metric name, in
/// name order (byte-stable for fixed contents).
#[must_use]
pub fn snapshot_to_json(snap: &RegistrySnapshot) -> String {
    let fields: Vec<String> = snap
        .iter()
        .map(|(name, value)| format!("\"{}\":{}", json_escape(name), metric_to_json(value)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Metric names have `.` and other non-identifier characters mapped to
/// `_`; each is prefixed with `avc_`. Histograms expand to the
/// conventional cumulative `_bucket{le="…"}` series plus `_sum` and
/// `_count`, with bucket upper bounds at the log₂ bucket edges.
#[must_use]
pub fn prometheus_text(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in snap.iter() {
        let prom = prometheus_name(name);
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {prom} counter\n{prom} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {prom} gauge\n{prom} {v}\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {prom} histogram\n"));
                let mut cumulative = 0u64;
                for (i, c) in h.nonzero_buckets() {
                    cumulative += c;
                    let le = bucket_bounds(i).1;
                    out.push_str(&format!("{prom}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
                out.push_str(&format!("{prom}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                out.push_str(&format!("{prom}_sum {}\n", h.sum));
                out.push_str(&format!("{prom}_count {}\n", h.count));
            }
        }
    }
    out
}

fn prometheus_name(name: &str) -> String {
    let mapped: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("avc_{mapped}")
}

/// Atomically replaces `path` with `bytes`: write to a sibling temp file,
/// fsync it, rename over the target. A crash leaves either the old content
/// or the new, never a mix.
///
/// This duplicates `avc_analysis::io::atomic_write` deliberately — this
/// crate sits below `avc-analysis` in the dependency graph and must stay
/// dependency-free.
///
/// # Errors
///
/// Any I/O error from create/write/sync/rename.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(dir)?;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("telemetry");
    let tmp = dir.join(format!(".{file_name}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads the newline-terminated lines of `path`, dropping a torn
/// (unterminated) final fragment. A missing file reads as empty.
///
/// # Errors
///
/// Any I/O error other than the file not existing.
pub fn read_lines_tolerant(path: &Path) -> io::Result<Vec<String>> {
    let mut raw = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut raw)?;
        }
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    let terminated = match raw.rfind('\n') {
        Some(last) => &raw[..=last],
        None => "",
    };
    Ok(terminated
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_owned)
        .collect())
}

/// An append-only JSONL event stream with atomic whole-file rewrites.
///
/// Opening loads any existing complete lines (a torn tail from a crashed
/// writer is silently dropped), so append-after-resume continues the
/// stream rather than truncating it.
///
/// # Example
///
/// ```no_run
/// use avc_telemetry::export::JsonlWriter;
/// let mut w = JsonlWriter::open("results/store/telemetry.jsonl".as_ref()).unwrap();
/// w.append("{\"event\":\"cell\"}").unwrap();
/// ```
#[derive(Debug)]
pub struct JsonlWriter {
    path: PathBuf,
    lines: Vec<String>,
}

impl JsonlWriter {
    /// Opens (or starts) the stream at `path`, keeping existing complete
    /// lines.
    ///
    /// # Errors
    ///
    /// Any I/O error from reading an existing file.
    pub fn open(path: &Path) -> io::Result<JsonlWriter> {
        let lines = read_lines_tolerant(path)?;
        Ok(JsonlWriter {
            path: path.to_path_buf(),
            lines,
        })
    }

    /// The stream's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines currently in the stream (existing + appended).
    #[must_use]
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Appends one line (must be a single JSON value without newlines) and
    /// atomically persists the whole stream.
    ///
    /// # Errors
    ///
    /// Any I/O error from the atomic rewrite; on error the in-memory
    /// stream is rolled back so a retry sees consistent state.
    pub fn append(&mut self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "JSONL lines must be single-line");
        self.lines.push(line.to_owned());
        let mut buf = String::with_capacity(self.lines.iter().map(|l| l.len() + 1).sum());
        for l in &self.lines {
            buf.push_str(l);
            buf.push('\n');
        }
        if let Err(e) = atomic_write(&self.path, buf.as_bytes()) {
            self.lines.pop();
            return Err(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistrySnapshot;

    fn sample_snapshot() -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::new();
        snap.set("sim.steps", MetricValue::Counter(1500));
        snap.set("wall.peak_rss", MetricValue::Gauge(42));
        let mut h = HistogramSnapshot::new();
        h.record(0);
        h.record(5);
        h.record(5);
        snap.set("sim.chunk_steps", MetricValue::Histogram(h));
        snap
    }

    #[test]
    fn snapshot_json_is_ordered_and_exact() {
        let json = snapshot_to_json(&sample_snapshot());
        assert_eq!(
            json,
            "{\"sim.chunk_steps\":{\"histogram\":{\"count\":3,\"sum\":10,\
             \"buckets\":[[0,1],[3,2]]}},\
             \"sim.steps\":{\"counter\":1500},\
             \"wall.peak_rss\":{\"gauge\":42}}"
        );
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE avc_sim_steps counter"));
        assert!(text.contains("avc_sim_steps 1500"));
        assert!(text.contains("avc_wall_peak_rss 42"));
        assert!(text.contains("avc_sim_chunk_steps_bucket{le=\"0\"} 1"));
        assert!(text.contains("avc_sim_chunk_steps_bucket{le=\"7\"} 3"));
        assert!(text.contains("avc_sim_chunk_steps_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("avc_sim_chunk_steps_sum 10"));
        assert!(text.contains("avc_sim_chunk_steps_count 3"));
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn jsonl_writer_appends_and_survives_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "avc-telemetry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let _ = fs::remove_file(&path);

        let mut w = JsonlWriter::open(&path).unwrap();
        w.append("{\"a\":1}").unwrap();
        w.append("{\"b\":2}").unwrap();
        drop(w);

        // Simulate a torn tail from a crashed writer.
        let mut raw = fs::read_to_string(&path).unwrap();
        raw.push_str("{\"torn\":");
        fs::write(&path, &raw).unwrap();

        let reopened = JsonlWriter::open(&path).unwrap();
        assert_eq!(reopened.lines(), ["{\"a\":1}", "{\"b\":2}"]);

        fs::remove_dir_all(&dir).unwrap();
    }
}
