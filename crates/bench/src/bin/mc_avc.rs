//! Machine-checks **AVC's correctness claims** on small instances:
//! Invariant 4.3 (value-sum preservation over the entire reachable space)
//! and the three exact-majority properties of Theorem B.1 for AVC and the
//! four-state protocol, plus the four-state mutation study (Claim B.5).
//!
//! Usage: `cargo run --release -p avc-bench --bin mc_avc [--quick] [--out DIR]`

use avc_analysis::cli::Args;
use avc_analysis::experiments::report;
use avc_analysis::table::Table;
use avc_population::Config;
use avc_protocols::{Avc, FourState};
use avc_verify::enumerate::{four_state_family_survey, four_state_mutation_study};
use avc_verify::reach::{check_exact_majority, check_invariant};

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let out = avc_bench::out_dir(&args);

    avc_bench::banner(
        "Model check MC-2 (AVC invariants and exactness)",
        "reachability over full configuration spaces at small n",
    );

    let mut table = Table::new(
        "Exhaustive correctness checks",
        [
            "check",
            "protocol",
            "instances",
            "configs_explored",
            "result",
        ],
    );

    // Invariant 4.3 over full reachable closures.
    let mut explored = 0usize;
    let params: &[(u64, u32)] = if quick {
        &[(1, 1), (3, 1)]
    } else {
        &[(1, 1), (3, 1), (3, 2), (5, 1), (5, 2), (7, 1)]
    };
    let mut instances = 0;
    for &(m, d) in params {
        let avc = Avc::new(m, d).expect("valid parameters");
        for (a, b) in [(3u64, 2u64), (2, 3), (4, 2), (1, 4), (3, 3)] {
            let initial = Config::from_input(&avc, a, b);
            let checked = check_invariant(&avc, &initial, 5_000_000, |c| avc.total_value(c))
                .expect("state space within budget")
                .unwrap_or_else(|bad| panic!("Invariant 4.3 violated for m={m}, d={d} at {bad:?}"));
            explored += checked;
            instances += 1;
        }
    }
    table.push_row([
        "invariant 4.3 (value sum)".to_string(),
        format!("avc, {} parameterizations", params.len()),
        instances.to_string(),
        explored.to_string(),
        "holds".to_string(),
    ]);

    // Exactness of AVC.
    let mut explored = 0usize;
    let mut instances = 0;
    for &(m, d) in params {
        let avc = Avc::new(m, d).expect("valid parameters");
        for (a, b) in [(2u64, 1u64), (1, 2), (3, 2), (2, 3), (4, 1), (3, 3)] {
            let v = check_exact_majority(&avc, a, b, 5_000_000).expect("within budget");
            assert!(v.is_correct(), "AVC(m={m},d={d}) violated at a={a}, b={b}");
            explored += v.explored;
            instances += 1;
        }
    }
    table.push_row([
        "exact majority (Thm B.1 properties)".to_string(),
        "avc".to_string(),
        instances.to_string(),
        explored.to_string(),
        "holds".to_string(),
    ]);

    // Exactness of the four-state protocol on every instance up to n.
    let max_n = if quick { 6 } else { 9 };
    let mut explored = 0usize;
    let mut instances = 0;
    for n in 2..=max_n {
        for a in 0..=n {
            let v = check_exact_majority(&FourState, a, n - a, 1_000_000).expect("within budget");
            assert!(v.is_correct(), "four-state violated at a={a}, b={}", n - a);
            explored += v.explored;
            instances += 1;
        }
    }
    table.push_row([
        "exact majority, all instances".to_string(),
        "four-state".to_string(),
        instances.to_string(),
        explored.to_string(),
        "holds".to_string(),
    ]);

    // Mutation study: flipping any single rule of the four-state protocol.
    let mutation_n = if quick { 5 } else { 7 };
    let outcome = four_state_mutation_study(mutation_n);
    table.push_row([
        format!("single-rule mutations (n ≤ {mutation_n})"),
        "four-state".to_string(),
        outcome.candidates.to_string(),
        "-".to_string(),
        format!(
            "{} of {} mutants survive",
            outcome.survivors, outcome.candidates
        ),
    ]);

    // Family survey over the constrained four-state space of Theorem B.1:
    // how many assignments of the four cross-output interactions survive?
    let survey_n = if quick { 5 } else { 6 };
    let (survey, survivors) = four_state_family_survey(survey_n);
    table.push_row([
        format!("constrained 4-state family (n ≤ {survey_n})"),
        "Theorem B.1 case analysis".to_string(),
        survey.candidates.to_string(),
        "-".to_string(),
        format!(
            "{} of {} assignments correct",
            survey.survivors, survey.candidates
        ),
    ]);

    report(&table, &out, "mc_avc");
    println!("surviving four-state rule assignments:");
    for s in &survivors {
        println!("  {s}");
    }
    println!("✔ all exhaustive checks passed");
}
