//! Per-agent simulation engine.

use crate::config::Config;
use crate::engine::{AdvanceReport, ChunkedSimulator, Simulator, StopCondition, StopReason};
use crate::faults::{Fault, FaultError};
use crate::graph::Graph;
use crate::protocol::{Opinion, Protocol, StateId};
use crate::sched::{Scheduler, Uniform};
use avc_telemetry::{NoopSink, Sink};
use rand::RngCore;

/// A per-agent engine supporting arbitrary interaction graphs and
/// pluggable [`Scheduler`] strategies.
///
/// Keeps one state per agent (`O(n)` memory) and performs one interaction
/// per [`advance`](Simulator::advance) in `O(1)`. This is the reference
/// engine the count-based engines are validated against, the only one
/// that supports non-complete interaction graphs, and — because agents
/// have identity here — the only one that supports agent-addressed
/// scheduling ([`crate::sched`]) and faults ([`crate::faults`]). The
/// default scheduler is [`Uniform`], which consumes the RNG identically
/// to sampling pairs straight from the graph.
///
/// # Example
///
/// ```
/// use avc_population::engine::{AgentSim, Simulator};
/// use avc_population::graph::Graph;
/// use avc_population::protocol::tests_support::Voter;
/// use avc_population::Config;
/// use rand::SeedableRng;
///
/// let config = Config::from_input(&Voter, 10, 1);
/// let mut sim = AgentSim::new(Voter, config, Graph::cycle(11));
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let out = sim.run_to_consensus(&mut rng, 1_000_000);
/// assert!(out.verdict.is_consensus());
/// ```
/// The `T` parameter is the telemetry [`Sink`] seam (see
/// [`CountSim`](super::CountSim) for the contract); the default
/// [`NoopSink`] compiles to nothing and leaves the RNG stream untouched.
#[derive(Debug, Clone)]
pub struct AgentSim<P, S = Uniform, T = NoopSink> {
    protocol: P,
    graph: Graph,
    scheduler: S,
    states: States,
    counts: Vec<u64>,
    output_a: Vec<bool>,
    count_a: u64,
    unanimous: Option<StateId>,
    /// Lazily allocated by the first agent-addressed fault; `None` keeps
    /// the fault-free hot loop byte-identical to the pre-fault engine.
    faults: Option<Box<AgentFaults>>,
    steps: u64,
    events: u64,
    telemetry: T,
}

/// Per-agent fault flags (the fault overlay).
///
/// Once allocated it stays allocated — reviving the last crashed agent
/// leaves all-false flag vectors behind, which the faulted loop handles
/// identically to the fault-free loop (just with two extra bitvec reads
/// per step).
#[derive(Debug, Clone)]
struct AgentFaults {
    /// Crashed agents: scheduled steps touching them are burned.
    crashed: Vec<bool>,
    /// Stuck agents: they interact but their own state never changes.
    stuck: Vec<bool>,
}

impl AgentFaults {
    fn new(n: usize) -> AgentFaults {
        AgentFaults {
            crashed: vec![false; n],
            stuck: vec![false; n],
        }
    }
}

/// Per-agent state storage, randomly indexed twice per step. When every
/// state id fits in a byte (true for all constant-state protocols) the
/// array is kept 4× denser so more of it stays in close cache levels.
#[derive(Debug, Clone)]
enum States {
    Narrow(Vec<u8>),
    Wide(Vec<StateId>),
}

impl States {
    fn new(states: Vec<StateId>, num_states: u32) -> States {
        if num_states <= u8::MAX as u32 + 1 {
            States::Narrow(states.into_iter().map(|s| s as u8).collect())
        } else {
            States::Wide(states)
        }
    }

    fn len(&self) -> usize {
        match self {
            States::Narrow(v) => v.len(),
            States::Wide(v) => v.len(),
        }
    }

    fn get(&self, agent: usize) -> StateId {
        match self {
            States::Narrow(v) => v[agent] as StateId,
            States::Wide(v) => v[agent],
        }
    }

    fn set(&mut self, agent: usize, to: StateId) {
        match self {
            States::Narrow(v) => v[agent] = to as u8,
            States::Wide(v) => v[agent] = to,
        }
    }

    /// Overwrites every slot with the state-order placement of `config`
    /// (the first `config.count(0)` agents get state 0, and so on) —
    /// exactly [`AgentSim::with_scheduler`]'s assignment, in place.
    fn refill_in_state_order(&mut self, config: &Config) {
        fn fill<C: StateCell>(cells: &mut [C], config: &Config) {
            let mut idx = 0;
            for s in 0..config.num_states() {
                for _ in 0..config.count(s) {
                    cells[idx] = C::pack(s);
                    idx += 1;
                }
            }
            debug_assert_eq!(idx, cells.len(), "config population mismatch");
        }
        match self {
            States::Narrow(v) => fill(v, config),
            States::Wide(v) => fill(v, config),
        }
    }
}

/// A fixed-width cell a `StateId` round-trips through losslessly (the
/// narrow impl is only constructed when every id fits).
trait StateCell: Copy + Eq {
    fn pack(id: StateId) -> Self;
    fn unpack(self) -> StateId;
}

impl StateCell for u8 {
    #[inline(always)]
    fn pack(id: StateId) -> u8 {
        id as u8
    }
    #[inline(always)]
    fn unpack(self) -> StateId {
        self as StateId
    }
}

impl StateCell for StateId {
    #[inline(always)]
    fn pack(id: StateId) -> StateId {
        id
    }
    #[inline(always)]
    fn unpack(self) -> StateId {
        self
    }
}

/// The monomorphized fault-free hot loop, generic over the cell width so
/// the narrow path pays no dispatch per access. Field references are
/// passed split so the enum match happens once per chunk, not once per
/// step. The scheduler inlines too: under [`Uniform`] this compiles to
/// exactly the pre-scheduler loop (same draws, same order).
#[allow(clippy::too_many_arguments)]
fn chunk_loop<C: StateCell, P: Protocol, S: Scheduler, R: RngCore + ?Sized>(
    protocol: &P,
    graph: &Graph,
    scheduler: &mut S,
    states: &mut [C],
    counts: &mut [u64],
    output_a: &[bool],
    count_a: &mut u64,
    unanimous: &mut Option<StateId>,
    steps: &mut u64,
    events: &mut u64,
    rng: &mut R,
    stop: StopCondition,
) -> StopReason {
    let n = states.len() as u64;
    // Like the real scheduler, the engine keeps drawing pairs on a silent
    // configuration, so the loop never reports `Silent`.
    loop {
        if stop.predicate_hit(*count_a, unanimous.is_some()) {
            return StopReason::Predicate;
        }
        if *steps >= stop.max_steps {
            return StopReason::StepBudget;
        }
        // The predicate reads count_a and unanimity, which only move on
        // productive events — so it cannot fire mid-stretch, and the inner
        // loop burns silent steps against the budget alone.
        let events_before = *events;
        while *events == events_before && *steps < stop.max_steps {
            let (u, v) = scheduler.next_pair(graph, *steps, rng);
            *steps += 1;
            let (su, sv) = (states[u].unpack(), states[v].unpack());
            let (nu, nv) = protocol.transition(su, sv);
            debug_assert!(
                nu < protocol.num_states() && nv < protocol.num_states(),
                "transition left the state space"
            );
            if (nu == su && nv == sv) || (nu == sv && nv == su) {
                // Silent interaction: the count multiset is untouched, so
                // the counts / count_a / unanimity bookkeeping is already
                // correct. Only a token swap moves the per-agent states
                // (and a silent pair with `nu != su` is necessarily a
                // swap); skipping the stores otherwise keeps both cache
                // lines clean.
                if nu != su {
                    states[u] = C::pack(nu);
                    states[v] = C::pack(nv);
                }
                continue;
            }
            *events += 1;
            for (agent, to) in [(u, nu), (v, nv)] {
                let from = states[agent].unpack();
                if from == to {
                    continue;
                }
                states[agent] = C::pack(to);
                counts[from as usize] -= 1;
                counts[to as usize] += 1;
                match (output_a[from as usize], output_a[to as usize]) {
                    (true, false) => *count_a -= 1,
                    (false, true) => *count_a += 1,
                    _ => {}
                }
                *unanimous = if counts[to as usize] == n {
                    Some(to)
                } else {
                    None
                };
            }
        }
    }
}

/// The faulted loop: same check-then-step order as [`chunk_loop`], plus
/// the crash and stuck-at overlays. Kept separate (and simpler — the
/// predicate is re-checked every step) so the fault-free path pays
/// nothing for the fault machinery.
#[allow(clippy::too_many_arguments)]
fn chunk_loop_faulted<C: StateCell, P: Protocol, S: Scheduler, R: RngCore + ?Sized>(
    protocol: &P,
    graph: &Graph,
    scheduler: &mut S,
    overlay: &AgentFaults,
    states: &mut [C],
    counts: &mut [u64],
    output_a: &[bool],
    count_a: &mut u64,
    unanimous: &mut Option<StateId>,
    steps: &mut u64,
    events: &mut u64,
    rng: &mut R,
    stop: StopCondition,
) -> StopReason {
    let n = states.len() as u64;
    loop {
        if stop.predicate_hit(*count_a, unanimous.is_some()) {
            return StopReason::Predicate;
        }
        if *steps >= stop.max_steps {
            return StopReason::StepBudget;
        }
        let (u, v) = scheduler.next_pair(graph, *steps, rng);
        *steps += 1;
        if overlay.crashed[u] || overlay.crashed[v] {
            // A step scheduled onto a crashed agent is burned: the step
            // elapses, no interaction happens, counts are untouched.
            continue;
        }
        let (su, sv) = (states[u].unpack(), states[v].unpack());
        let (mut nu, mut nv) = protocol.transition(su, sv);
        debug_assert!(
            nu < protocol.num_states() && nv < protocol.num_states(),
            "transition left the state space"
        );
        // A stuck agent answers (its partner's update stands) but never
        // learns: its own post-state is forced back to its pre-state.
        if overlay.stuck[u] {
            nu = su;
        }
        if overlay.stuck[v] {
            nv = sv;
        }
        if (nu == su && nv == sv) || (nu == sv && nv == su) {
            if nu != su {
                states[u] = C::pack(nu);
                states[v] = C::pack(nv);
            }
            continue;
        }
        *events += 1;
        for (agent, to) in [(u, nu), (v, nv)] {
            let from = states[agent].unpack();
            if from == to {
                continue;
            }
            states[agent] = C::pack(to);
            counts[from as usize] -= 1;
            counts[to as usize] += 1;
            match (output_a[from as usize], output_a[to as usize]) {
                (true, false) => *count_a -= 1,
                (false, true) => *count_a += 1,
                _ => {}
            }
            *unanimous = if counts[to as usize] == n {
                Some(to)
            } else {
                None
            };
        }
    }
}

impl<P: Protocol> AgentSim<P> {
    /// Creates an engine on the complete graph with the [`Uniform`]
    /// scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration size and state count are inconsistent
    /// with the protocol, or the population has fewer than two agents.
    pub fn on_clique(protocol: P, config: Config) -> AgentSim<P> {
        let n = config.population() as usize;
        AgentSim::new(protocol, config, Graph::clique(n))
    }

    /// Creates an engine on an explicit interaction graph with the
    /// [`Uniform`] scheduler.
    ///
    /// Agents are assigned states in state order: the first `config.count(0)`
    /// agents get state 0, and so on. Callers that need a different
    /// state-to-vertex placement can use [`AgentSim::from_states`].
    ///
    /// # Panics
    ///
    /// Panics if the graph size differs from the population or the
    /// configuration is inconsistent with the protocol.
    pub fn new(protocol: P, config: Config, graph: Graph) -> AgentSim<P> {
        AgentSim::with_scheduler(protocol, config, graph, Uniform)
    }

    /// Creates an engine with an explicit state per vertex of the graph,
    /// with the [`Uniform`] scheduler.
    ///
    /// # Panics
    ///
    /// Panics if any state is out of range, the graph size differs from the
    /// number of agents, or there are fewer than two agents.
    pub fn from_states(protocol: P, states: Vec<StateId>, graph: Graph) -> AgentSim<P> {
        AgentSim::from_states_with_scheduler(protocol, states, graph, Uniform)
    }
}

impl<P: Protocol, S: Scheduler> AgentSim<P, S> {
    /// As [`AgentSim::new`], with an explicit [`Scheduler`].
    ///
    /// `AgentSim::with_scheduler(p, c, g, Uniform)` is trajectory- and
    /// RNG-stream-identical to `AgentSim::new(p, c, g)`.
    ///
    /// # Panics
    ///
    /// As [`AgentSim::new`].
    pub fn with_scheduler(
        protocol: P,
        config: Config,
        graph: Graph,
        scheduler: S,
    ) -> AgentSim<P, S> {
        assert_eq!(
            graph.num_agents() as u64,
            config.population(),
            "graph size must match population"
        );
        let mut states = Vec::with_capacity(config.population() as usize);
        for s in 0..config.num_states() {
            states.extend(std::iter::repeat_n(s, config.count(s) as usize));
        }
        AgentSim::from_states_with_scheduler(protocol, states, graph, scheduler)
    }

    /// As [`AgentSim::from_states`], with an explicit [`Scheduler`].
    ///
    /// # Panics
    ///
    /// As [`AgentSim::from_states`].
    pub fn from_states_with_scheduler(
        protocol: P,
        states: Vec<StateId>,
        graph: Graph,
        scheduler: S,
    ) -> AgentSim<P, S> {
        assert!(states.len() >= 2, "need at least two agents");
        assert_eq!(
            graph.num_agents(),
            states.len(),
            "graph size must match number of agents"
        );
        let s = protocol.num_states();
        let mut counts = vec![0u64; s as usize];
        for &st in &states {
            assert!(
                st < s,
                "state {st} out of range for protocol with {s} states"
            );
            counts[st as usize] += 1;
        }
        let output_a: Vec<bool> = (0..s).map(|q| protocol.output(q) == Opinion::A).collect();
        let count_a = counts
            .iter()
            .zip(&output_a)
            .filter(|(_, &is_a)| is_a)
            .map(|(&c, _)| c)
            .sum();
        let n = states.len() as u64;
        let unanimous = counts.iter().position(|&c| c == n).map(|i| i as StateId);
        AgentSim {
            protocol,
            graph,
            scheduler,
            states: States::new(states, s),
            counts,
            output_a,
            count_a,
            unanimous,
            faults: None,
            steps: 0,
            events: 0,
            telemetry: NoopSink,
        }
    }
}

impl<P: Protocol, S: Scheduler, T: Sink> AgentSim<P, S, T> {
    /// Replaces the telemetry sink, rebinding the engine's type. All
    /// simulation state carries over untouched, so attaching telemetry is
    /// RNG-invisible.
    pub fn with_telemetry<T2: Sink>(self, telemetry: T2) -> AgentSim<P, S, T2> {
        AgentSim {
            protocol: self.protocol,
            graph: self.graph,
            scheduler: self.scheduler,
            states: self.states,
            counts: self.counts,
            output_a: self.output_a,
            count_a: self.count_a,
            unanimous: self.unanimous,
            faults: self.faults,
            steps: self.steps,
            events: self.events,
            telemetry,
        }
    }

    /// The attached telemetry sink.
    pub fn telemetry(&self) -> &T {
        &self.telemetry
    }

    /// The attached telemetry sink, mutably (for draining counts).
    pub fn telemetry_mut(&mut self) -> &mut T {
        &mut self.telemetry
    }

    /// The interaction graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The scheduler driving pair selection.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// The state of agent `agent`.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn state_of(&self, agent: usize) -> StateId {
        self.states.get(agent)
    }

    /// Whether `agent` is currently crashed ([`Fault::Crash`]).
    pub fn is_crashed(&self, agent: usize) -> bool {
        self.faults.as_ref().is_some_and(|f| f.crashed[agent])
    }

    /// Whether `agent` is currently stuck-at ([`Fault::StickAt`]).
    pub fn is_stuck(&self, agent: usize) -> bool {
        self.faults.as_ref().is_some_and(|f| f.stuck[agent])
    }

    /// Moves one agent to `to`, maintaining counts / `count_a` /
    /// unanimity exactly like a productive interaction would.
    fn set_agent_state(&mut self, agent: usize, to: StateId) {
        let from = self.states.get(agent);
        if from == to {
            return;
        }
        self.states.set(agent, to);
        self.counts[from as usize] -= 1;
        self.counts[to as usize] += 1;
        match (self.output_a[from as usize], self.output_a[to as usize]) {
            (true, false) => self.count_a -= 1,
            (false, true) => self.count_a += 1,
            _ => {}
        }
        let n = self.states.len() as u64;
        self.unanimous = if self.counts[to as usize] == n {
            Some(to)
        } else {
            None
        };
    }

    fn check_agent(&self, agent: usize) -> Result<(), FaultError> {
        if agent < self.states.len() {
            Ok(())
        } else {
            Err(FaultError::OutOfRange {
                detail: format!("agent {agent} of {}", self.states.len()),
            })
        }
    }

    /// Sets a per-agent fault flag; returns 1 if it changed, 0 if it was
    /// already at `value`.
    fn set_flag(&mut self, agent: usize, stuck_flag: bool, value: bool) -> u64 {
        let n = self.states.len();
        let overlay = self
            .faults
            .get_or_insert_with(|| Box::new(AgentFaults::new(n)));
        let slot = if stuck_flag {
            &mut overlay.stuck[agent]
        } else {
            &mut overlay.crashed[agent]
        };
        if *slot == value {
            0
        } else {
            *slot = value;
            1
        }
    }
}

impl<P: Protocol, S: Scheduler, T: Sink> Simulator for AgentSim<P, S, T> {
    fn population(&self) -> u64 {
        self.states.len() as u64
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn events(&self) -> u64 {
        self.events
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn count_a(&self) -> u64 {
        self.count_a
    }

    fn unanimous_state(&self) -> Option<StateId> {
        self.unanimous
    }

    fn state_output(&self, state: StateId) -> Opinion {
        self.protocol.output(state)
    }

    fn config_is_silent(&self) -> bool {
        // On a clique, silence is exactly a property of the count multiset.
        // On a general graph this check is sound but incomplete: if no
        // species pair is productive then certainly no edge is, but a
        // configuration whose only productive species pairs sit on
        // non-adjacent agents is silent yet reported as live. The run loop
        // still terminates in that case via its step bound.
        self.protocol.config_silent(&self.counts)
    }

    fn inject(&mut self, fault: Fault) -> Result<u64, FaultError> {
        let s = self.protocol.num_states();
        let applied = match fault {
            Fault::Corrupt { from, to, agents } => {
                if from >= s || to >= s {
                    return Err(FaultError::OutOfRange {
                        detail: format!("corrupt {from}->{to} with only {s} protocol states"),
                    });
                }
                if from == to {
                    return Ok(0);
                }
                // Move the first `agents` agents (by index) found in
                // `from`: a deterministic choice, so faulted runs replay
                // bit-identically.
                let mut moved = 0u64;
                for agent in 0..self.states.len() {
                    if moved == agents {
                        break;
                    }
                    if self.states.get(agent) == from {
                        self.set_agent_state(agent, to);
                        moved += 1;
                    }
                }
                Ok(moved)
            }
            Fault::BitFlip { agent, bit } => {
                self.check_agent(agent)?;
                if bit >= 32 {
                    return Err(FaultError::OutOfRange {
                        detail: format!("bit {bit} of a 32-bit state id"),
                    });
                }
                let flipped = self.states.get(agent) ^ (1u32 << bit);
                if flipped >= s {
                    // Flips that leave the state space are dropped, like
                    // registers range-checked on read.
                    Ok(0)
                } else {
                    self.set_agent_state(agent, flipped);
                    Ok(1)
                }
            }
            Fault::Crash { agent } => {
                self.check_agent(agent)?;
                Ok(self.set_flag(agent, false, true))
            }
            Fault::Revive { agent } => {
                self.check_agent(agent)?;
                Ok(self.set_flag(agent, false, false))
            }
            Fault::StickAt { agent } => {
                self.check_agent(agent)?;
                Ok(self.set_flag(agent, true, true))
            }
            Fault::Unstick { agent } => {
                self.check_agent(agent)?;
                Ok(self.set_flag(agent, true, false))
            }
        };
        if let Ok(n) = applied {
            if n > 0 {
                self.telemetry.on_fault();
            }
        }
        applied
    }

    fn advance(&mut self, rng: &mut dyn RngCore) -> u64 {
        // One scheduler step: a one-step budget with no predicates armed
        // consumes the RNG identically to a dedicated single-step path.
        let stop = StopCondition::never().with_max_steps(self.steps + 1);
        self.advance_chunk(rng, stop);
        1
    }

    fn advance_upto(&mut self, rng: &mut dyn RngCore, stop: StopCondition) -> AdvanceReport {
        self.advance_chunk(rng, stop)
    }
}

impl<P: Protocol, S: Scheduler, T: Sink> ChunkedSimulator for AgentSim<P, S, T> {
    fn reset(&mut self, config: &Config) {
        assert_eq!(
            config.num_states(),
            self.protocol.num_states(),
            "configuration does not match protocol state space"
        );
        // Agents have identity here (graph vertices), so the population is
        // part of the engine's shape and must not change across trials.
        assert_eq!(
            config.population() as usize,
            self.states.len(),
            "reset must keep the population (the graph is fixed)"
        );
        self.states.refill_in_state_order(config);
        self.counts.copy_from_slice(config.as_slice());
        self.count_a = self
            .counts
            .iter()
            .zip(&self.output_a)
            .filter(|(_, &is_a)| is_a)
            .map(|(&c, _)| c)
            .sum();
        let n = config.population();
        self.unanimous = self
            .counts
            .iter()
            .position(|&c| c == n)
            .map(|i| i as StateId);
        // A fresh engine holds no fault overlay; dropping one restores the
        // fault-free hot loop (and its exact RNG consumption).
        self.faults = None;
        self.scheduler.reset();
        self.steps = 0;
        self.events = 0;
    }

    fn advance_chunk<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        stop: StopCondition,
    ) -> AdvanceReport {
        let (steps0, events0) = (self.steps, self.events);
        let reason = match (&mut self.states, self.faults.as_deref()) {
            (States::Narrow(v), None) => chunk_loop(
                &self.protocol,
                &self.graph,
                &mut self.scheduler,
                v,
                &mut self.counts,
                &self.output_a,
                &mut self.count_a,
                &mut self.unanimous,
                &mut self.steps,
                &mut self.events,
                rng,
                stop,
            ),
            (States::Wide(v), None) => chunk_loop(
                &self.protocol,
                &self.graph,
                &mut self.scheduler,
                v,
                &mut self.counts,
                &self.output_a,
                &mut self.count_a,
                &mut self.unanimous,
                &mut self.steps,
                &mut self.events,
                rng,
                stop,
            ),
            (States::Narrow(v), Some(overlay)) => chunk_loop_faulted(
                &self.protocol,
                &self.graph,
                &mut self.scheduler,
                overlay,
                v,
                &mut self.counts,
                &self.output_a,
                &mut self.count_a,
                &mut self.unanimous,
                &mut self.steps,
                &mut self.events,
                rng,
                stop,
            ),
            (States::Wide(v), Some(overlay)) => chunk_loop_faulted(
                &self.protocol,
                &self.graph,
                &mut self.scheduler,
                overlay,
                v,
                &mut self.counts,
                &self.output_a,
                &mut self.count_a,
                &mut self.unanimous,
                &mut self.steps,
                &mut self.events,
                rng,
                stop,
            ),
        };
        let report = AdvanceReport {
            steps: self.steps - steps0,
            events: self.events - events0,
            reason,
        };
        self.telemetry.on_chunk(report.steps, report.events);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tests_support::{Annihilate, Voter};
    use crate::spec::Verdict;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn voter_reaches_consensus_on_clique() {
        let config = Config::from_input(&Voter, 30, 10);
        let mut sim = AgentSim::on_clique(Voter, config);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = sim.run_to_consensus(&mut rng, 10_000_000);
        assert!(out.verdict.is_consensus());
        assert_eq!(out.steps, sim.steps());
        // All agents in one state.
        assert!(sim.unanimous_state().is_some());
    }

    #[test]
    fn annihilate_preserves_population_and_reaches_silence() {
        let config = Config::from_input(&Annihilate, 6, 4);
        let mut sim = AgentSim::on_clique(Annihilate, config);
        let mut rng = SmallRng::seed_from_u64(2);
        let out =
            sim.run_to_consensus_with(&mut rng, 10_000_000, crate::spec::ConvergenceRule::Silence);
        // 4 annihilations leave 2 in +1 and 8 dead; all output A.
        assert_eq!(out.verdict, Verdict::Consensus(Opinion::A));
        assert_eq!(sim.counts(), &[2, 0, 8]);
        assert_eq!(sim.population(), 10);
    }

    #[test]
    fn counts_track_states() {
        let config = Config::from_input(&Voter, 3, 2);
        let mut sim = AgentSim::on_clique(Voter, config);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            sim.advance(&mut rng);
            let mut recount = vec![0u64; 2];
            for agent in 0..5 {
                recount[sim.state_of(agent) as usize] += 1;
            }
            assert_eq!(sim.counts(), recount.as_slice());
            assert_eq!(sim.count_a(), recount[0]);
        }
    }

    #[test]
    fn consensus_on_cycle_matches_clique_semantics() {
        let config = Config::from_input(&Voter, 9, 0);
        let mut sim = AgentSim::new(Voter, config, Graph::cycle(9));
        let mut rng = SmallRng::seed_from_u64(4);
        // Already unanimous: converges without any step.
        let out = sim.run_to_consensus(&mut rng, 10);
        assert_eq!(out.steps, 0);
        assert_eq!(out.verdict, Verdict::Consensus(Opinion::A));
    }

    #[test]
    fn max_steps_is_respected() {
        let config = Config::from_input(&Voter, 500, 500);
        let mut sim = AgentSim::on_clique(Voter, config);
        let mut rng = SmallRng::seed_from_u64(5);
        let out = sim.run_to_consensus(&mut rng, 50);
        assert!(matches!(
            out.verdict,
            Verdict::MaxSteps | Verdict::Consensus(_)
        ));
        if out.verdict == Verdict::MaxSteps {
            assert!(out.steps >= 50);
        }
    }

    #[test]
    #[should_panic(expected = "graph size")]
    fn rejects_mismatched_graph() {
        let config = Config::from_input(&Voter, 3, 2);
        let _ = AgentSim::new(Voter, config, Graph::clique(4));
    }

    #[test]
    fn parallel_time_is_steps_over_population() {
        let config = Config::from_input(&Voter, 20, 1);
        let mut sim = AgentSim::on_clique(Voter, config);
        let mut rng = SmallRng::seed_from_u64(6);
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert!((out.parallel_time - out.steps as f64 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_uniform_scheduler_is_bit_identical_to_default() {
        let mk_default = || AgentSim::on_clique(Voter, Config::from_input(&Voter, 18, 13));
        let mk_explicit = || {
            AgentSim::with_scheduler(
                Voter,
                Config::from_input(&Voter, 18, 13),
                Graph::clique(31),
                Uniform,
            )
        };
        for seed in 0..5u64 {
            let (mut a, mut b) = (mk_default(), mk_explicit());
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let out_a = a.run_to_consensus(&mut rng_a, u64::MAX);
            let out_b = b.run_to_consensus(&mut rng_b, u64::MAX);
            assert_eq!(out_a, out_b);
            assert_eq!(a.counts(), b.counts());
            // Both RNGs are at the same stream position afterwards.
            assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        }
    }

    #[test]
    fn crashed_pair_steps_are_burned() {
        let config = Config::from_input(&Voter, 1, 1);
        let mut sim = AgentSim::on_clique(Voter, config);
        // n = 2: every step schedules the pair (0,1); crashing agent 1
        // freezes the run entirely.
        assert_eq!(sim.inject(Fault::Crash { agent: 1 }), Ok(1));
        assert_eq!(sim.inject(Fault::Crash { agent: 1 }), Ok(0));
        let mut rng = SmallRng::seed_from_u64(7);
        let before = sim.counts().to_vec();
        for _ in 0..50 {
            sim.advance(&mut rng);
        }
        assert_eq!(sim.counts(), before.as_slice());
        assert_eq!(sim.steps(), 50);
        assert_eq!(sim.events(), 0);
        // Revive and the dynamics resume.
        assert_eq!(sim.inject(Fault::Revive { agent: 1 }), Ok(1));
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert!(out.verdict.is_consensus());
    }

    #[test]
    fn stuck_agent_keeps_its_state_but_partners_update() {
        let config = Config::from_input(&Voter, 1, 1);
        let mut sim = AgentSim::on_clique(Voter, config);
        // Agent 0 holds A (state 0), agent 1 holds B and is stuck: when it
        // initiates, agent 0 adopts B as usual, but when agent 0 initiates
        // the stuck agent never adopts A.
        assert_eq!(sim.inject(Fault::StickAt { agent: 1 }), Ok(1));
        let mut rng = SmallRng::seed_from_u64(8);
        let out = sim.run_to_consensus(&mut rng, 10_000);
        // Consensus can only be on B: agent 1 is permanently B, and agent 0
        // eventually adopts it.
        assert_eq!(out.verdict, Verdict::Consensus(Opinion::B));
        assert_eq!(sim.state_of(1), 1);
    }

    #[test]
    fn corrupt_moves_and_clamps() {
        let config = Config::from_input(&Voter, 6, 4);
        let mut sim = AgentSim::on_clique(Voter, config);
        assert_eq!(
            sim.inject(Fault::Corrupt {
                from: 0,
                to: 1,
                agents: 99
            }),
            Ok(6)
        );
        assert_eq!(sim.counts(), &[0, 10]);
        assert_eq!(sim.count_a(), 0);
        assert_eq!(sim.unanimous_state(), Some(1));
        assert!(matches!(
            sim.inject(Fault::Corrupt {
                from: 5,
                to: 0,
                agents: 1
            }),
            Err(FaultError::OutOfRange { .. })
        ));
    }

    #[test]
    fn bitflip_is_range_checked() {
        let config = Config::from_input(&Annihilate, 2, 1);
        let mut sim = AgentSim::on_clique(Annihilate, config);
        // Annihilate has 3 states; agent 0 holds state 0; flipping bit 0
        // moves it to state 1, flipping bit 1 would reach state 2 (valid),
        // but on state 1 flipping bit 1 reaches 3 — out of space, no-op.
        assert_eq!(sim.inject(Fault::BitFlip { agent: 0, bit: 0 }), Ok(1));
        assert_eq!(sim.state_of(0), 1);
        assert_eq!(sim.inject(Fault::BitFlip { agent: 0, bit: 1 }), Ok(0));
        assert_eq!(sim.state_of(0), 1);
        assert!(sim.inject(Fault::BitFlip { agent: 9, bit: 0 }).is_err());
        assert!(sim.inject(Fault::BitFlip { agent: 0, bit: 32 }).is_err());
    }
}
