//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Length specifications accepted by [`vec`]: an exact length or a
/// half-open range of lengths.
pub trait IntoSizeRange {
    /// The inclusive lower and exclusive upper length bound.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// A strategy for `Vec<T>` with elements from `element` and a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    assert!(min < max, "empty length range for collection::vec");
    VecStrategy { element, min, max }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.inner().gen_range(self.min..self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
