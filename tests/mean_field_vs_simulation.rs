//! The three-state mean-field ODE against large-`n` simulation: fractions
//! along a simulated trajectory must concentrate on the RK4 solution
//! (the [PVV09] limit used to analyze the protocol's convergence time).

use avc::analysis::mean_field::{limit_convergence_time, three_state_limit};
use avc::population::engine::CountSim;
use avc::population::trace::record;
use avc::population::{Config, ConvergenceRule};
use avc::protocols::ThreeState;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn simulated_fractions_track_the_ode() {
    let n = 100_000u64;
    let (x0, y0) = (0.55, 0.45);
    let a = (x0 * n as f64) as u64;
    let b = n - a;

    let protocol = ThreeState::new();
    let mut sim = CountSim::new(protocol, Config::from_input(&protocol, a, b));
    let mut rng = SmallRng::seed_from_u64(31);
    let trace = record(
        &mut sim,
        &mut rng,
        n / 10, // 10 samples per parallel-time unit
        8 * n,  // 8 units of parallel time
        ConvergenceRule::StateConsensus,
        vec!["x".into(), "y".into(), "b".into()],
        |counts| {
            let total: u64 = counts.iter().sum();
            counts.iter().map(|&c| c as f64 / total as f64).collect()
        },
    );

    let ode = three_state_limit(x0, y0, 1e-4, 8.0);
    let ode_at = |t: f64| {
        let idx = ((t / 1e-4).round() as usize).min(ode.len() - 1);
        ode[idx]
    };

    let mut checked = 0;
    for sample in &trace.samples {
        let p = ode_at(sample.parallel_time);
        // Concentration is O(1/√n) ≈ 0.3%; allow 2% absolute per component.
        assert!(
            (sample.values[0] - p.x).abs() < 0.02,
            "x at t={}: sim {} vs ode {}",
            sample.parallel_time,
            sample.values[0],
            p.x
        );
        assert!(
            (sample.values[1] - p.y).abs() < 0.02,
            "y at t={}: sim {} vs ode {}",
            sample.parallel_time,
            sample.values[1],
            p.y
        );
        assert!(
            (sample.values[2] - p.blank).abs() < 0.02,
            "b at t={}: sim {} vs ode {}",
            sample.parallel_time,
            sample.values[2],
            p.blank
        );
        checked += 1;
    }
    assert!(
        checked >= 10,
        "expected a real trajectory, got {checked} samples"
    );
}

#[test]
fn ode_convergence_time_reflects_log_terms() {
    // O(log(1/ε) + log n) for the limit system: convergence to minority
    // mass < 1/n takes ≈ log n longer than to a constant threshold.
    let traj = three_state_limit(0.505, 0.495, 1e-3, 200.0);
    let coarse = limit_convergence_time(&traj, 1e-2).expect("reaches 1e-2");
    let fine = limit_convergence_time(&traj, 1e-6).expect("reaches 1e-6");
    assert!(fine > coarse);
    // The extra time for four orders of magnitude is a bounded multiple of
    // ln(10^4) ≈ 9.2 — not a polynomial blowup.
    assert!(fine - coarse < 5.0 * 9.3, "{coarse} -> {fine}");
}
