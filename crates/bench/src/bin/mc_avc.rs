//! Machine-checks **AVC's correctness claims** on small instances:
//! Invariant 4.3 (value-sum preservation over the entire reachable space)
//! and the three exact-majority properties of Theorem B.1 for AVC and the
//! four-state protocol, plus the four-state mutation study (Claim B.5).
//!
//! Alias for `avc sweep mc_avc` followed by `avc export mc_avc` (flags:
//! `--quick --out`), with checkpoint/resume through the result store.

fn main() {
    avc_store::cli::legacy("mc_avc");
}
