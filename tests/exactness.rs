//! Exactness: AVC and the four-state protocol must *never* converge to the
//! minority opinion — statistically at simulation scale, and exhaustively
//! (over all schedules) at model-checking scale.

use avc::analysis::harness::{run_trials, EngineKind, TrialPlan};
use avc::population::{ConvergenceRule, MajorityInstance};
use avc::protocols::{Avc, FourState};
use avc::verify::reach::check_exact_majority;

/// AVC with assorted parameters never errs across margins and seeds.
#[test]
fn avc_exact_across_margins_and_parameters() {
    for (m, d) in [(1u64, 1u32), (5, 1), (15, 1), (15, 3), (63, 2)] {
        let avc = Avc::new(m, d).expect("valid parameters");
        for (n, eps) in [(101u64, 0.01), (501, 0.002), (1_001, 0.05)] {
            let plan = TrialPlan::new(MajorityInstance::with_margin(n, eps))
                .runs(25)
                .seed(m * 100 + d as u64);
            let results = run_trials(
                &avc,
                &plan,
                EngineKind::Auto,
                ConvergenceRule::OutputConsensus,
            );
            assert_eq!(
                results.error_fraction(),
                0.0,
                "AVC(m={m},d={d}) erred at n={n}, eps={eps}"
            );
            assert_eq!(results.convergence_fraction(), 1.0);
        }
    }
}

/// Minority-B inputs must also be decided exactly (symmetry check: the
/// analysis assumes A-majority w.l.o.g., the code must not).
#[test]
fn avc_exact_when_b_is_majority() {
    let avc = Avc::new(9, 1).expect("valid parameters");
    let plan = TrialPlan::new(MajorityInstance::new(200, 301))
        .runs(25)
        .seed(8);
    let results = run_trials(
        &avc,
        &plan,
        EngineKind::Auto,
        ConvergenceRule::OutputConsensus,
    );
    assert_eq!(results.error_fraction(), 0.0);
}

/// Exhaustive (all-schedules) exactness at model-checking scale: every
/// instance with n ≤ 7 for several AVC parameterizations.
#[test]
fn avc_exhaustively_exact_small_n() {
    for (m, d) in [(1u64, 1u32), (3, 1), (5, 2)] {
        let avc = Avc::new(m, d).expect("valid parameters");
        for n in 2..=6u64 {
            for a in 0..=n {
                let verdict = check_exact_majority(&avc, a, n - a, 3_000_000)
                    .expect("state space within budget");
                assert!(
                    verdict.is_correct(),
                    "AVC(m={m},d={d}) violated at a={a}, b={}",
                    n - a
                );
            }
        }
    }
}

/// The four-state protocol is exhaustively exact too (the known baseline).
#[test]
fn four_state_exhaustively_exact_small_n() {
    for n in 2..=8u64 {
        for a in 0..=n {
            let verdict =
                check_exact_majority(&FourState, a, n - a, 1_000_000).expect("within budget");
            assert!(verdict.is_correct(), "violated at a={a}, b={}", n - a);
        }
    }
}

/// The hardest margin: a single-agent advantage at moderate scale, many
/// seeds — the headline exactness claim of Figure 3 (right).
#[test]
fn single_agent_advantage_always_decides_correctly() {
    let avc = Avc::with_states(1_001).expect("valid budget");
    let plan = TrialPlan::new(MajorityInstance::one_extra(1_001))
        .runs(60)
        .seed(13);
    let results = run_trials(
        &avc,
        &plan,
        EngineKind::Auto,
        ConvergenceRule::OutputConsensus,
    );
    assert_eq!(results.error_fraction(), 0.0);
}
