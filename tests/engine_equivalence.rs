//! Cross-engine differential suite: all exact engines (Agent on the clique,
//! Count, Jump, Adaptive) simulate the same Markov chain, so their
//! trajectory and convergence-time distributions must agree. These tests
//! compare engines on matched workloads (Abl-2 of DESIGN.md) three ways:
//!
//! 1. **Mean agreement** — classic ratio checks on mean convergence time.
//! 2. **Distribution agreement** — two-sample Kolmogorov–Smirnov checks on
//!    the full convergence-step distribution and on the `counts()`
//!    trajectory marginal at a fixed step checkpoint, over every exact
//!    engine pair, so a *biased* engine (not just a shifted one) fails.
//! 3. **Exact trajectory agreement** where the RNG streams permit it — the
//!    adaptive engine's dense phase is bit-for-bit `CountSim`.
//!
//! Engines deliberately consume randomness differently (per-agent draws vs
//! Fenwick state pairs vs geometric skips), so a literally shared seed
//! yields *divergent but identically distributed* trajectories for the
//! other pairs; those are compared distributionally at matched step counts.

use avc::population::engine::{AdaptiveSim, AgentSim, CountSim, JumpSim, Simulator};
use avc::population::rngutil::SeedSequence;
use avc::population::{Config, ConvergenceRule, MajorityInstance, Opinion, Protocol};
use avc::protocols::{Avc, FourState, ThreeState, Voter};

const ENGINE_NAMES: [&str; 4] = ["agent", "count", "jump", "adaptive"];

/// Builds exact engine `engine` (0 = agent-on-clique, 1 = count, 2 = jump,
/// 3 = adaptive) on `config`.
fn make_engine<P: Protocol + Clone + 'static>(
    protocol: &P,
    config: Config,
    engine: usize,
) -> Box<dyn Simulator> {
    match engine {
        0 => Box::new(AgentSim::on_clique(protocol.clone(), config)),
        1 => Box::new(CountSim::new(protocol.clone(), config)),
        2 => Box::new(JumpSim::new(protocol.clone(), config)),
        _ => Box::new(AdaptiveSim::new(protocol.clone(), config)),
    }
}

/// Two-sample Kolmogorov–Smirnov statistic: the supremum distance between
/// the empirical CDFs of `xs` and `ys`.
fn ks_statistic(xs: &[f64], ys: &[f64]) -> f64 {
    let mut xs = xs.to_vec();
    let mut ys = ys.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    let (n, m) = (xs.len() as f64, ys.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xs.len() && j < ys.len() {
        let t = xs[i].min(ys[j]);
        while i < xs.len() && xs[i] <= t {
            i += 1;
        }
        while j < ys.len() && ys[j] <= t {
            j += 1;
        }
        d = d.max((i as f64 / n - j as f64 / m).abs());
    }
    d
}

/// The critical KS distance at significance `c` (e.g. 1.63 ⇒ α ≈ 0.01).
fn ks_critical(n: usize, m: usize, c: f64) -> f64 {
    c * ((n + m) as f64 / (n * m) as f64).sqrt()
}

/// Convergence *step counts* of `trials` runs of `protocol` on `engine`.
fn convergence_steps<P: Protocol + Clone + 'static>(
    protocol: &P,
    instance: MajorityInstance,
    engine: usize,
    rule: ConvergenceRule,
    trials: u64,
    seed: u64,
) -> Vec<f64> {
    let seeds = SeedSequence::new(seed);
    (0..trials)
        .map(|t| {
            let mut rng = seeds.rng_for(t);
            let config = Config::from_input(protocol, instance.a(), instance.b());
            let mut sim = make_engine(protocol, config, engine);
            let out = sim.run_to_consensus_with(&mut rng, u64::MAX, rule);
            assert!(
                out.verdict.is_consensus(),
                "engine {engine} did not converge"
            );
            out.steps as f64
        })
        .collect()
}

/// The configuration at scheduler step `t` exactly: engines that skip
/// silent steps in batches may overshoot `t`, but the configuration only
/// changes at the batch's final (productive) step, so the pre-overshoot
/// counts are the state at `t`.
fn counts_at_step(sim: &mut dyn Simulator, rng: &mut rand::rngs::SmallRng, t: u64) -> Vec<u64> {
    while sim.steps() < t {
        let before = sim.counts().to_vec();
        if sim.advance(rng) == 0 {
            break;
        }
        if sim.steps() > t {
            return before;
        }
    }
    sim.counts().to_vec()
}

/// Mean convergence parallel time of `protocol` over `trials` runs on the
/// chosen engine (0 = agent, 1 = count, 2 = jump, 3 = adaptive).
fn mean_time<P: Protocol + Clone>(
    protocol: &P,
    instance: MajorityInstance,
    engine: usize,
    rule: ConvergenceRule,
    trials: u64,
    seed: u64,
) -> f64 {
    let seeds = SeedSequence::new(seed);
    let mut total = 0.0;
    for t in 0..trials {
        let mut rng = seeds.rng_for(t);
        let config = Config::from_input(protocol, instance.a(), instance.b());
        let out = match engine {
            0 => AgentSim::on_clique(protocol.clone(), config).run_to_consensus_with(
                &mut rng,
                u64::MAX,
                rule,
            ),
            1 => CountSim::new(protocol.clone(), config).run_to_consensus_with(
                &mut rng,
                u64::MAX,
                rule,
            ),
            2 => JumpSim::new(protocol.clone(), config).run_to_consensus_with(
                &mut rng,
                u64::MAX,
                rule,
            ),
            _ => AdaptiveSim::new(protocol.clone(), config).run_to_consensus_with(
                &mut rng,
                u64::MAX,
                rule,
            ),
        };
        assert!(
            out.verdict.is_consensus(),
            "engine {engine} did not converge"
        );
        total += out.parallel_time;
    }
    total / trials as f64
}

/// All four engines agree on the four-state protocol's mean convergence
/// time within sampling noise.
#[test]
fn four_state_means_agree_across_engines() {
    let instance = MajorityInstance::new(70, 50);
    let baseline = mean_time(
        &FourState,
        instance,
        0,
        ConvergenceRule::OutputConsensus,
        60,
        1,
    );
    for engine in 1..=3 {
        let mean = mean_time(
            &FourState,
            instance,
            engine,
            ConvergenceRule::OutputConsensus,
            60,
            2 + engine as u64,
        );
        let ratio = mean / baseline;
        assert!(
            (0.7..1.4).contains(&ratio),
            "engine {engine}: mean {mean} vs baseline {baseline}"
        );
    }
}

/// Engines agree on AVC (including the intermediate-level machinery).
#[test]
fn avc_means_agree_across_engines() {
    let avc = Avc::new(9, 2).expect("valid parameters");
    let instance = MajorityInstance::new(65, 55);
    let baseline = mean_time(&avc, instance, 1, ConvergenceRule::OutputConsensus, 60, 5);
    for engine in [0usize, 2, 3] {
        let mean = mean_time(
            &avc,
            instance,
            engine,
            ConvergenceRule::OutputConsensus,
            60,
            6 + engine as u64,
        );
        let ratio = mean / baseline;
        assert!(
            (0.7..1.4).contains(&ratio),
            "engine {engine}: mean {mean} vs baseline {baseline}"
        );
    }
}

/// The one-way (order-sensitive) three-state protocol is also equivalent
/// across engines — the ordered-pair semantics match.
#[test]
fn three_state_means_agree_across_engines() {
    let p = ThreeState::new();
    let instance = MajorityInstance::new(80, 40);
    let baseline = mean_time(&p, instance, 0, ConvergenceRule::StateConsensus, 60, 9);
    for engine in 1..=3 {
        let mean = mean_time(
            &p,
            instance,
            engine,
            ConvergenceRule::StateConsensus,
            60,
            10 + engine as u64,
        );
        let ratio = mean / baseline;
        assert!(
            (0.7..1.4).contains(&ratio),
            "engine {engine}: mean {mean} vs baseline {baseline}"
        );
    }
}

/// Absorption probabilities (not just times) agree: the voter model's
/// P[consensus A] = a/n on every engine.
#[test]
fn voter_absorption_probability_agrees_across_engines() {
    let instance = MajorityInstance::new(12, 6);
    let trials = 300u64;
    for engine in 0..=3usize {
        let seeds = SeedSequence::new(20 + engine as u64);
        let mut wins = 0u64;
        for t in 0..trials {
            let mut rng = seeds.rng_for(t);
            let config = Config::from_input(&Voter, instance.a(), instance.b());
            let out = match engine {
                0 => AgentSim::on_clique(Voter, config).run_to_consensus(&mut rng, u64::MAX),
                1 => CountSim::new(Voter, config).run_to_consensus(&mut rng, u64::MAX),
                2 => JumpSim::new(Voter, config).run_to_consensus(&mut rng, u64::MAX),
                _ => AdaptiveSim::new(Voter, config).run_to_consensus(&mut rng, u64::MAX),
            };
            if out.verdict.opinion() == Some(Opinion::A) {
                wins += 1;
            }
        }
        let frac = wins as f64 / trials as f64;
        assert!(
            (frac - 12.0 / 18.0).abs() < 0.09,
            "engine {engine}: absorption fraction {frac}"
        );
    }
}

/// The approximate τ-leaping engine agrees with the exact engines in mean
/// convergence time within its documented few-percent bias band.
#[test]
fn tau_leap_agrees_statistically() {
    use avc::population::engine::TauLeapSim;
    let instance = MajorityInstance::new(1_400, 600);
    let seeds = SeedSequence::new(77);
    let trials = 40;
    let mut tau_mean = 0.0;
    let mut exact_mean = 0.0;
    for t in 0..trials {
        let mut rng = seeds.rng_for(t);
        let config = Config::from_input(&ThreeState::new(), instance.a(), instance.b());
        tau_mean += TauLeapSim::new(ThreeState::new(), config)
            .run_to_consensus_with(&mut rng, u64::MAX, ConvergenceRule::StateConsensus)
            .parallel_time;
        let mut rng = seeds.child(9).rng_for(t);
        let config = Config::from_input(&ThreeState::new(), instance.a(), instance.b());
        exact_mean += CountSim::new(ThreeState::new(), config)
            .run_to_consensus_with(&mut rng, u64::MAX, ConvergenceRule::StateConsensus)
            .parallel_time;
    }
    tau_mean /= trials as f64;
    exact_mean /= trials as f64;
    let ratio = tau_mean / exact_mean;
    assert!(
        (0.8..1.25).contains(&ratio),
        "tau-leap {tau_mean} vs exact {exact_mean}"
    );
}

/// The jump engine reports identical *final configurations* to the count
/// engine for a deterministic-outcome protocol, and strictly fewer events
/// than steps in a silent-dominated run.
#[test]
fn jump_engine_skips_but_preserves_outcome() {
    let instance = MajorityInstance::new(900, 30);
    let seeds = SeedSequence::new(31);
    let config = Config::from_input(&FourState, instance.a(), instance.b());
    let mut sim = JumpSim::new(FourState, config);
    let mut rng = seeds.rng_for(0);
    let out = sim.run_to_consensus(&mut rng, u64::MAX);
    assert_eq!(out.verdict.opinion(), Some(Opinion::A));
    assert!(
        sim.events() * 10 < sim.steps(),
        "expected heavy skipping: {} events vs {} steps",
        sim.events(),
        sim.steps()
    );
    // Value conservation visible in the final configuration: +1 count minus
    // −1 count must equal the initial margin.
    let counts = sim.counts();
    assert_eq!(counts[0] as i64 - counts[1] as i64, 870);
}

/// KS check on the **full convergence-step distribution** across every
/// exact engine pair: 200 four-state trials per engine must be
/// indistinguishable at α ≈ 0.01. A biased sampler in any single engine
/// shifts its CDF and fails every pair involving it.
#[test]
fn convergence_step_distributions_agree_pairwise() {
    let instance = MajorityInstance::new(40, 28);
    let trials = 200u64;
    let samples: Vec<Vec<f64>> = (0..4)
        .map(|engine| {
            convergence_steps(
                &FourState,
                instance,
                engine,
                ConvergenceRule::OutputConsensus,
                trials,
                40 + engine as u64,
            )
        })
        .collect();
    let crit = ks_critical(trials as usize, trials as usize, 1.63);
    for i in 0..4 {
        for j in (i + 1)..4 {
            let d = ks_statistic(&samples[i], &samples[j]);
            assert!(
                d < crit,
                "{} vs {}: KS distance {d:.4} ≥ critical {crit:.4}",
                ENGINE_NAMES[i],
                ENGINE_NAMES[j]
            );
        }
    }
}

/// KS check on the **trajectory marginal**: the distribution of the
/// majority-species count at a fixed mid-run step checkpoint must agree
/// across every exact engine pair. This compares the `counts()` process
/// itself (not just its absorption time), at matched step counts, so an
/// engine whose per-step transition kernel is subtly wrong fails even if
/// its convergence times happen to match.
#[test]
fn trajectory_marginals_agree_pairwise() {
    let instance = MajorityInstance::new(18, 12);
    let checkpoint = 150u64;
    let trials = 200u64;
    let samples: Vec<Vec<f64>> = (0..4)
        .map(|engine| {
            let seeds = SeedSequence::new(60 + engine as u64);
            (0..trials)
                .map(|t| {
                    let mut rng = seeds.rng_for(t);
                    let config = Config::from_input(&Voter, instance.a(), instance.b());
                    let mut sim = make_engine(&Voter, config, engine);
                    counts_at_step(sim.as_mut(), &mut rng, checkpoint)[0] as f64
                })
                .collect()
        })
        .collect();
    let crit = ks_critical(trials as usize, trials as usize, 1.63);
    for i in 0..4 {
        for j in (i + 1)..4 {
            let d = ks_statistic(&samples[i], &samples[j]);
            assert!(
                d < crit,
                "{} vs {}: KS distance {d:.4} ≥ critical {crit:.4}",
                ENGINE_NAMES[i],
                ENGINE_NAMES[j]
            );
        }
    }
}

/// The same distributional agreement holds for AVC's larger state space —
/// here on the Count/Jump/Adaptive engines' convergence steps (the agent
/// engine is covered on the four-state workload above).
#[test]
fn avc_step_distributions_agree_pairwise() {
    let avc = Avc::new(7, 1).expect("valid parameters");
    let instance = MajorityInstance::new(36, 28);
    let trials = 200u64;
    let samples: Vec<Vec<f64>> = (1..4)
        .map(|engine| {
            convergence_steps(
                &avc,
                instance,
                engine,
                ConvergenceRule::OutputConsensus,
                trials,
                80 + engine as u64,
            )
        })
        .collect();
    let crit = ks_critical(trials as usize, trials as usize, 1.63);
    for i in 0..3 {
        for j in (i + 1)..3 {
            let d = ks_statistic(&samples[i], &samples[j]);
            assert!(
                d < crit,
                "{} vs {}: KS distance {d:.4} ≥ critical {crit:.4}",
                ENGINE_NAMES[i + 1],
                ENGINE_NAMES[j + 1]
            );
        }
    }
}

/// Where RNG streams *do* coincide, the agreement is exact: the adaptive
/// engine's dense phase is `CountSim` with the same draw sequence, so their
/// `counts()` trajectories under a shared seed match bit for bit at every
/// step (the voter run here ends long before the 4096-step switch window).
#[test]
fn adaptive_dense_phase_is_exactly_count_sim() {
    let seeds = SeedSequence::new(90);
    for trial in 0..5u64 {
        let config = Config::from_input(&Voter, 20, 10);
        let mut count = CountSim::new(Voter, config.clone());
        let mut adaptive = AdaptiveSim::new(Voter, config);
        let mut rng_c = seeds.rng_for(trial);
        let mut rng_a = seeds.rng_for(trial);
        for step in 0..300 {
            let c = count.advance(&mut rng_c);
            let a = adaptive.advance(&mut rng_a);
            assert_eq!(c, a, "trial {trial}, step {step}");
            assert_eq!(
                count.counts(),
                adaptive.counts(),
                "trial {trial}, step {step}"
            );
            if c == 0 {
                break;
            }
        }
        assert_eq!(count.steps(), adaptive.steps());
        assert_eq!(count.events(), adaptive.events());
    }
}

/// Sanity check on the KS machinery itself: it separates genuinely
/// different distributions at the same sample sizes the engine checks use
/// (guarding against a vacuous-threshold bug making the suite toothless).
#[test]
fn ks_statistic_detects_a_shifted_distribution() {
    let base = convergence_steps(
        &Voter,
        MajorityInstance::new(18, 12),
        1,
        ConvergenceRule::OutputConsensus,
        200,
        71,
    );
    // A 30% multiplicative bias — the size a broken sampler easily causes.
    let biased: Vec<f64> = convergence_steps(
        &Voter,
        MajorityInstance::new(18, 12),
        1,
        ConvergenceRule::OutputConsensus,
        200,
        72,
    )
    .iter()
    .map(|s| s * 1.3)
    .collect();
    let crit = ks_critical(200, 200, 1.63);
    assert!(
        ks_statistic(&base, &biased) > crit,
        "KS check failed to flag a 30% step-count bias"
    );
    // And identical samples give distance 0.
    assert_eq!(ks_statistic(&base, &base), 0.0);
}
