//! Exhaustive protocol-space enumeration.
//!
//! Two studies from the paper's lower-bound context:
//!
//! * **Three states are not enough** [MNRS14, cited in §1]: enumerate *all*
//!   symmetric three-state protocols and show none satisfies the three
//!   exact-majority correctness properties on every small instance.
//! * **The four-state protocol is essentially forced** (Claim B.5 and the
//!   case analysis of Theorem B.1): mutate any single interaction rule of
//!   the known-correct four-state protocol and verify every mutant violates
//!   a property on some small instance.

use crate::reach::check_exact_majority;
use crate::table_protocol::TableProtocol;
use avc_population::{Opinion, Protocol, StateId};
use avc_protocols::FourState;

/// All unordered pairs of states over `0..q`, in lexicographic order.
fn unordered_pairs(q: u32) -> Vec<(StateId, StateId)> {
    let mut pairs = Vec::new();
    for a in 0..q {
        for b in a..q {
            pairs.push((a, b));
        }
    }
    pairs
}

/// A summary of a family enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationOutcome {
    /// Total candidates examined.
    pub candidates: u64,
    /// Candidates surviving every instance check.
    pub survivors: u64,
}

/// Enumerates every symmetric three-state protocol (two input states with
/// fixed outputs `A`/`B`, one free state with either output; each of the 6
/// unordered state pairs maps to one of the 6 unordered pairs) and checks
/// the exact-majority properties on all instances with `2 ≤ n ≤ max_n`.
///
/// Returns the enumeration outcome; the MNRS14 impossibility predicts
/// `survivors == 0` for `max_n ≥ 5`.
///
/// # Panics
///
/// Panics if `max_n < 2`.
#[must_use]
pub fn three_state_impossibility(max_n: u64) -> EnumerationOutcome {
    assert!(max_n >= 2, "need at least two agents");
    let pairs = unordered_pairs(3); // 6 unordered pairs
    let results = unordered_pairs(3); // 6 possible unordered outcomes
    let num_pairs = pairs.len();
    let num_choices = results.len().pow(num_pairs as u32) as u64; // 6^6

    let mut candidates = 0;
    let mut survivors = 0;
    for third_output in [Opinion::A, Opinion::B] {
        let outputs = vec![Opinion::A, Opinion::B, third_output];
        for code in 0..num_choices {
            candidates += 1;
            let mut c = code;
            let mut choice = [(0 as StateId, 0 as StateId); 6];
            for slot in &mut choice {
                *slot = results[(c % 6) as usize];
                c /= 6;
            }
            let protocol = TableProtocol::symmetric(3, outputs.clone(), (0, 1), |a, b| {
                let idx = pairs.iter().position(|&p| p == (a, b)).expect("pair");
                choice[idx]
            });
            if survives_all_instances(&protocol, max_n) {
                survivors += 1;
            }
        }
    }
    EnumerationOutcome {
        candidates,
        survivors,
    }
}

/// Whether `protocol` passes the three correctness properties on every
/// untied instance with `2 ≤ a + b ≤ max_n`.
fn survives_all_instances<P: Protocol>(protocol: &P, max_n: u64) -> bool {
    // Check the cheapest instances first so failing candidates die early.
    for n in 2..=max_n {
        for a in 0..=n {
            if a == n - a {
                continue;
            }
            match check_exact_majority(protocol, a, n - a, 200_000) {
                Ok(verdict) if verdict.is_correct() => {}
                _ => return false,
            }
        }
    }
    true
}

/// Mutates a single unordered interaction rule of the four-state protocol
/// in every possible way and counts the mutants that still pass all small
/// instances (`n ≤ max_n`).
///
/// The paper's case analysis shows the four-state protocol's behaviour is
/// forced up to relabeling; accordingly only "mutations" that do not change
/// the configuration dynamics (e.g. replacing a silent rule `(a,b) → (a,b)`
/// by the swap `(a,b) → (b,a)`) can survive. The outcome counts survivors
/// *excluding* such dynamics-preserving rewrites.
#[must_use]
pub fn four_state_mutation_study(max_n: u64) -> EnumerationOutcome {
    let base = FourState;
    let pairs = unordered_pairs(4); // 10 unordered pairs
    let results = unordered_pairs(4); // 10 possible unordered outcomes
    let outputs: Vec<Opinion> = (0..4).map(|s| base.output(s)).collect();

    let mut candidates = 0;
    let mut survivors = 0;
    for (mut_idx, &(ma, mb)) in pairs.iter().enumerate() {
        let (bx, by) = base.transition(ma, mb);
        let base_unordered = if bx <= by { (bx, by) } else { (by, bx) };
        for &replacement in &results {
            if replacement == base_unordered {
                continue; // not a mutation
            }
            candidates += 1;
            let protocol = TableProtocol::symmetric(4, outputs.clone(), (0, 1), |a, b| {
                if pairs[mut_idx] == (a, b) {
                    replacement
                } else {
                    base.transition(a, b)
                }
            });
            if survives_all_instances(&protocol, max_n) {
                survivors += 1;
            }
        }
    }
    EnumerationOutcome {
        candidates,
        survivors,
    }
}

/// Surveys the constrained four-state family of Theorem B.1's case
/// analysis: same-output pairs are frozen to the behaviour forced by
/// Claim B.5 (no change), while the four cross-output interactions
/// (`[S₀,S₁]`, `[S₀,Y]`, `[S₁,X]`, `[X,Y]`) range over all 10 unordered
/// outcomes each — 10⁴ candidates. Returns the outcome together with a
/// human-readable description of each surviving rule assignment.
///
/// The paper's analysis concludes that the surviving algorithms are
/// exactly those preserving the majority–minority difference invariant
/// (Claim B.8 families); the survey confirms survivors exist and are few.
#[must_use]
pub fn four_state_family_survey(max_n: u64) -> (EnumerationOutcome, Vec<String>) {
    // State numbering: 0 = S0 (output A), 1 = S1 (output B), 2 = X (A),
    // 3 = Y (B). Note: `check_exact_majority` follows the crate convention
    // that input(A) is the majority-A state, so S0 here plays "A".
    let outputs = vec![Opinion::A, Opinion::B, Opinion::A, Opinion::B];
    let cross: [(StateId, StateId); 4] = [(0, 1), (0, 3), (1, 2), (2, 3)];
    let results = unordered_pairs(4);
    let mut candidates = 0;
    let mut survivors = Vec::new();
    let mut assignment = [(0 as StateId, 0 as StateId); 4];
    let total = results.len().pow(4) as u64;
    for code in 0..total {
        candidates += 1;
        let mut c = code as usize;
        for slot in &mut assignment {
            *slot = results[c % results.len()];
            c /= results.len();
        }
        let protocol = TableProtocol::symmetric(4, outputs.clone(), (0, 1), |a, b| {
            if let Some(idx) = cross.iter().position(|&p| p == (a, b)) {
                assignment[idx]
            } else {
                (a, b) // same-output pairs: frozen per Claim B.5
            }
        });
        if survives_all_instances(&protocol, max_n) {
            let describe = |pair: (StateId, StateId), to: (StateId, StateId)| {
                let name = |s: StateId| ["S0", "S1", "X", "Y"][s as usize];
                format!(
                    "[{},{}]→[{},{}]",
                    name(pair.0),
                    name(pair.1),
                    name(to.0),
                    name(to.1)
                )
            };
            survivors.push(
                cross
                    .iter()
                    .zip(&assignment)
                    .map(|(&p, &t)| describe(p, t))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
        }
    }
    (
        EnumerationOutcome {
            candidates,
            survivors: survivors.len() as u64,
        },
        survivors,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_enumeration_counts() {
        assert_eq!(unordered_pairs(3).len(), 6);
        assert_eq!(unordered_pairs(4).len(), 10);
        assert_eq!(unordered_pairs(2), vec![(0, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn four_state_base_survives() {
        assert!(survives_all_instances(&FourState, 6));
    }

    #[test]
    fn four_state_mutants_mostly_die() {
        // 10 pairs × 9 replacements = 90 mutants. Some replacements are
        // dynamics-preserving relabelings that remain correct; the vast
        // majority must fail a small-instance check.
        let outcome = four_state_mutation_study(6);
        assert_eq!(outcome.candidates, 90);
        assert!(
            outcome.survivors <= 6,
            "too many surviving mutants: {}",
            outcome.survivors
        );
    }

    #[test]
    fn four_state_family_contains_the_known_protocol() {
        // The survey over the constrained family must keep the DV12-style
        // rules ([S0,S1]→[X,Y], weak adoption) among its few survivors.
        let (outcome, survivors) = four_state_family_survey(5);
        assert_eq!(outcome.candidates, 10_000);
        assert!(outcome.survivors >= 1, "the known protocol must survive");
        assert!(
            outcome.survivors <= 40,
            "correct behaviour should be rare: {} survivors",
            outcome.survivors
        );
        assert!(
            survivors.iter().any(|s| s.contains("[S0,S1]→[X,Y]")),
            "expected a DV12-style survivor among: {survivors:?}"
        );
    }

    // The full 3-state sweep (93 312 candidates) runs in the `mc_three_state`
    // binary; here we only exercise a slice to keep test time bounded.
    #[test]
    fn three_state_slice_has_no_survivors() {
        // The fixed three-state *approximate* protocol must fail.
        let approx = TableProtocol::symmetric(
            3,
            vec![Opinion::A, Opinion::B, Opinion::A],
            (0, 1),
            |a, b| match (a, b) {
                (0, 1) => (0, 2),
                (0, 2) => (0, 0),
                (1, 2) => (1, 1),
                other => other,
            },
        );
        assert!(!survives_all_instances(&approx, 5));
    }
}
