//! Empirical validation of the four-state lower bound (Theorem B.1).
//!
//! The paper proves that *any* four-state exact-majority protocol needs
//! `Ω(1/ε)` expected parallel time. This experiment measures the four-state
//! protocol's convergence time across a margin sweep at fixed `n` and fits
//! the log–log slope of time against `1/ε`; the paper's bound predicts a
//! slope of ≈ 1 for small margins.

use crate::harness::{EngineKind, Parallelism, ScenarioPlan, StatsCollector};
use crate::stats::{loglog_slope, Summary};
use crate::table::{fmt_num, Table};
use avc_population::{MajorityInstance, ProtocolSpec, Scenario};

/// Parameters for the scaling experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// Margins to sweep (small margins are where the bound binds).
    pub epsilons: Vec<f64>,
    /// Runs per margin.
    pub runs: u64,
    /// Master seed.
    pub seed: u64,
    /// Thread sharding of each margin's trials (results are unaffected).
    pub parallelism: Parallelism,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            n: 100_001,
            epsilons: vec![1e-5, 3.16e-5, 1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2],
            runs: 25,
            seed: 77,
            parallelism: Parallelism::default(),
        }
    }
}

impl Config {
    /// A downscaled configuration for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Config {
        Config {
            n: 2_001,
            epsilons: vec![1e-3, 1e-2, 1e-1],
            runs: 9,
            seed: 77,
            parallelism: Parallelism::default(),
        }
    }

    /// Builds a configuration from parsed CLI arguments (`--quick`, `--n`,
    /// `--runs`, `--seed`, `--serial`/`--threads`).
    #[must_use]
    pub fn from_args(args: &crate::cli::Args) -> Config {
        let mut config = if args.flag("quick") {
            Config::quick()
        } else {
            Config::default()
        };
        config.n = args.get_u64("n", config.n);
        config.runs = args.get_u64("runs", config.runs);
        config.seed = args.get_u64("seed", config.seed);
        config.parallelism = args.parallelism();
        config
    }
}

/// One margin point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Margin realized after integer rounding.
    pub epsilon: f64,
    /// Parallel-time summary.
    pub summary: Summary,
}

/// The sweep outcome: per-margin summaries plus the fitted scaling exponent
/// of time against `1/ε`.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Per-margin measurements.
    pub points: Vec<Point>,
    /// Fitted log–log slope of mean time vs `1/ε` (expected ≈ 1).
    pub slope: f64,
}

/// Runs the sweep and fits the exponent.
#[must_use]
pub fn run(config: &Config) -> Outcome {
    run_with_stats(config, &StatsCollector::new())
}

/// As [`run`], folding per-margin throughput telemetry into `stats`.
#[must_use]
pub fn run_with_stats(config: &Config, stats: &StatsCollector) -> Outcome {
    let points: Vec<Point> = (0..config.epsilons.len())
        .map(|i| run_point(config, i, stats))
        .collect();
    let slope = fit_slope(&points);
    Outcome { points, slope }
}

/// Lowers one margin point to a declarative run scenario; `i` indexes
/// [`Config::epsilons`]. Seeded by the index alone, so the point reruns
/// identically in isolation.
///
/// # Panics
///
/// Panics if `i` is out of range.
#[must_use]
pub fn cell_scenario(config: &Config, i: usize) -> Scenario {
    let instance = MajorityInstance::with_margin(config.n, config.epsilons[i]);
    Scenario::new(ProtocolSpec::FourState, instance)
        .engine(EngineKind::Jump)
        .runs(config.runs)
        .seed(config.seed + i as u64)
}

/// Runs one margin point through the shared [`ScenarioPlan`] harness.
///
/// # Panics
///
/// As [`cell_scenario`].
#[must_use]
pub fn run_point(config: &Config, i: usize, stats: &StatsCollector) -> Point {
    let scenario = cell_scenario(config, i);
    let epsilon = scenario.instance.margin();
    let results = ScenarioPlan::new(scenario)
        .parallelism(config.parallelism)
        .run_with_stats(stats);
    Point {
        epsilon,
        summary: results.summary(),
    }
}

/// Fits the log–log slope of mean time against `1/ε` over `points`.
#[must_use]
pub fn fit_slope(points: &[Point]) -> f64 {
    let inv_eps: Vec<f64> = points.iter().map(|p| 1.0 / p.epsilon).collect();
    let times: Vec<f64> = points.iter().map(|p| p.summary.mean).collect();
    loglog_slope(&inv_eps, &times)
}

/// Renders the result table, with the fitted exponent in the title.
#[must_use]
pub fn table(outcome: &Outcome, n: u64) -> Table {
    let mut t = Table::new(
        format!(
            "Theorem B.1 check: four-state time vs margin at n = {n} (fitted exponent {:.3}, theory: 1)",
            outcome.slope
        ),
        ["eps", "one_over_eps", "mean_parallel_time", "std_dev", "runs"],
    );
    for p in &outcome.points {
        t.push_row([
            fmt_num(p.epsilon),
            fmt_num(1.0 / p.epsilon),
            fmt_num(p.summary.mean),
            fmt_num(p.summary.std_dev),
            p.summary.count.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_exponent_is_near_one() {
        let outcome = run(&Config {
            n: 4_001,
            epsilons: vec![1e-3, 3.16e-3, 1e-2, 3.16e-2],
            runs: 15,
            seed: 3,
            parallelism: Parallelism::Auto,
        });
        // Θ(1/ε) with log corrections: generous band around 1.
        assert!(
            (0.6..=1.4).contains(&outcome.slope),
            "slope {} outside Θ(1/eps) band",
            outcome.slope
        );
        // Times must be monotone decreasing in eps (up to noise at ends).
        assert!(
            outcome.points.first().unwrap().summary.mean
                > outcome.points.last().unwrap().summary.mean
        );
    }

    #[test]
    fn table_embeds_slope() {
        let outcome = run(&Config::quick());
        let t = table(&outcome, Config::quick().n);
        assert!(t.title().contains("fitted exponent"));
        assert_eq!(t.num_rows(), 3);
    }
}
