//! Regenerates the **`d` ablation** from the §6 discussion: splitting a
//! fixed state budget between the weight range `m` and the level count `d`
//! barely changes the running time, supporting the paper's observation that
//! `d = 1` suffices in practice.
//!
//! Usage: `cargo run --release -p avc-bench --bin ablation_d [--quick]
//! [--runs N] [--seed N] [--n N] [--budget S] [--serial | --threads N]
//! [--progress] [--out DIR]`

use avc_analysis::cli::Args;
use avc_analysis::experiments::{ablation_d, report};

fn main() {
    let args = Args::from_env();
    let mut config = if args.flag("quick") {
        ablation_d::Config::quick()
    } else {
        ablation_d::Config::default()
    };
    config.runs = args.get_u64("runs", config.runs);
    config.seed = args.get_u64("seed", config.seed);
    config.n = args.get_u64("n", config.n);
    config.state_budget = args.get_u64("budget", config.state_budget);
    config.parallelism = args.parallelism();

    avc_bench::banner(
        "Ablation Abl-1 (levels d)",
        &format!(
            "AVC with budget {} states split across d in {:?}, n = {}",
            config.state_budget, config.ds, config.n
        ),
    );

    let stats = avc_bench::collector(&args);
    let points = ablation_d::run_with_stats(&config, &stats);
    let out = avc_bench::out_dir(&args);
    report(&ablation_d::table(&points, &config), &out, "ablation_d");
    println!("throughput: {}", stats.snapshot());
}
