//! Canonical JSON value type — re-exported from `avc_population::json`.
//!
//! The JSON machinery originated here (PR 2) but moved down to
//! `avc-population` so scenario specs can share the exact same canonical
//! serialization (sorted keys, integer-only numbers) that manifest hashing
//! relies on. This module stays as a shim so `avc_store::json::Json` keeps
//! working for existing clients.

pub use avc_population::json::*;
