//! Figure 4: AVC convergence time vs margin `ε` and state count `s`.
//!
//! The paper sweeps the margin over several decades for thirteen values of
//! the per-node state count `s` (with `d = 1`, so `m = s − 3`), at a fixed
//! population. The left panel plots mean parallel convergence time against
//! `ε` — one curve per `s`, each `Θ(1/ε)` for small `ε` and shifted down as
//! `s` grows; the right panel plots the same data against the product `s·ε`,
//! collapsing the curves and supporting the `Θ̃(1/(sε))` claim.
//!
//! Trials execute through the chunked run driver (`avc_population::driver`),
//! as in [`fig3`](crate::experiments::fig3).

use crate::harness::{Parallelism, ScenarioPlan, StatsCollector};
use crate::stats::Summary;
use crate::table::{fmt_num, Table};
use avc_population::telemetry::CellTelemetry;
use avc_population::{MajorityInstance, ProtocolSpec, Scenario};
use avc_protocols::Avc;

/// The paper's thirteen state counts (Figure 4 caption).
pub const PAPER_STATE_COUNTS: [u64; 13] = [
    4, 6, 12, 24, 34, 66, 130, 258, 514, 1_026, 2_050, 4_098, 16_340,
];

/// Parameters for the Figure 4 reproduction.
#[derive(Debug, Clone)]
pub struct Config {
    /// Population size (the paper uses `n` on the order of `10⁵`).
    pub n: u64,
    /// State counts to sweep (`d = 1`, `m = s − 3`).
    pub state_counts: Vec<u64>,
    /// Margins to sweep.
    pub epsilons: Vec<f64>,
    /// Independent runs per `(s, ε)` point.
    pub runs: u64,
    /// Master seed.
    pub seed: u64,
    /// Thread sharding of each point's trials (results are unaffected).
    pub parallelism: Parallelism,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            n: 100_001,
            state_counts: PAPER_STATE_COUNTS.to_vec(),
            // Half-decade grid over the paper's range 10^-5 … 10^-0.5.
            epsilons: vec![
                1e-5, 3.16e-5, 1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1, 3.16e-1,
            ],
            runs: 15,
            seed: 4,
            parallelism: Parallelism::default(),
        }
    }
}

impl Config {
    /// A downscaled configuration for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Config {
        Config {
            n: 10_001,
            state_counts: vec![4, 12, 66, 514],
            epsilons: vec![1e-3, 1e-2, 1e-1],
            runs: 5,
            seed: 4,
            parallelism: Parallelism::default(),
        }
    }

    /// Builds a configuration from parsed CLI arguments (`--quick`, `--n`,
    /// `--states`, `--runs`, `--seed`, `--serial`/`--threads`).
    #[must_use]
    pub fn from_args(args: &crate::cli::Args) -> Config {
        let mut config = if args.flag("quick") {
            Config::quick()
        } else {
            Config::default()
        };
        config.n = args.get_u64("n", config.n);
        config.state_counts = args.get_u64_list("states", &config.state_counts);
        config.runs = args.get_u64("runs", config.runs);
        config.seed = args.get_u64("seed", config.seed);
        config.parallelism = args.parallelism();
        config
    }
}

/// One `(s, ε)` point of Figure 4.
#[derive(Debug, Clone)]
pub struct Point {
    /// Number of states per agent.
    pub s: u64,
    /// Requested margin.
    pub epsilon: f64,
    /// Margin actually realized after integer rounding of the instance.
    pub achieved_epsilon: f64,
    /// Parallel-time summary over the runs.
    pub summary: Summary,
    /// Aggregated run telemetry (engine counters, convergence histogram,
    /// wall timings) for the point's batch.
    pub telemetry: CellTelemetry,
}

/// Runs the sweep. Points are emitted in `(s, ε)` lexicographic order.
///
/// # Panics
///
/// Panics if a state count is below 4 or the population is even (the
/// one-agent-advantage margins need odd `n` only when `εn` rounds to 1;
/// margins are realized via [`MajorityInstance::with_margin`], which handles
/// parity, so only degenerate configurations panic).
#[must_use]
pub fn run(config: &Config) -> Vec<Point> {
    run_with_stats(config, &StatsCollector::new())
}

/// As [`run`], folding per-point throughput telemetry into `stats`.
#[must_use]
pub fn run_with_stats(config: &Config, stats: &StatsCollector) -> Vec<Point> {
    let mut points = Vec::new();
    for si in 0..config.state_counts.len() {
        for ei in 0..config.epsilons.len() {
            points.push(run_point(config, si, ei, stats));
        }
    }
    points
}

/// Lowers one `(s, ε)` point to a declarative run scenario: `si` indexes
/// [`Config::state_counts`], `ei` indexes [`Config::epsilons`]. Each
/// point's seed is derived from the grid indices alone, so a point reruns
/// identically regardless of which other points run alongside it (the
/// basis of checkpoint/resume).
///
/// # Panics
///
/// Panics if either index is out of range, or the state count is below 4.
#[must_use]
pub fn cell_scenario(config: &Config, si: usize, ei: usize) -> Scenario {
    let avc = Avc::with_states(config.state_counts[si]).expect("state count >= 4");
    let instance = MajorityInstance::with_margin(config.n, config.epsilons[ei]);
    Scenario::new(
        ProtocolSpec::Avc {
            m: avc.m(),
            d: avc.d(),
        },
        instance,
    )
    .runs(config.runs)
    .seed(config.seed + (si as u64) * 1_000 + ei as u64)
}

/// Runs one `(s, ε)` point through the shared [`ScenarioPlan`] harness.
///
/// # Panics
///
/// As [`cell_scenario`].
#[must_use]
pub fn run_point(config: &Config, si: usize, ei: usize, stats: &StatsCollector) -> Point {
    let avc = Avc::with_states(config.state_counts[si]).expect("state count >= 4");
    let eps = config.epsilons[ei];
    let scenario = cell_scenario(config, si, ei);
    let achieved_epsilon = scenario.instance.margin();
    let (results, telemetry) = ScenarioPlan::new(scenario)
        .parallelism(config.parallelism)
        .run_with_telemetry(stats);
    Point {
        s: avc.s(),
        epsilon: eps,
        achieved_epsilon,
        summary: results.summary(),
        telemetry,
    }
}

/// Renders the combined table (serves both panels: the left keyed by `ε`,
/// the right by the `s·ε` column).
#[must_use]
pub fn table(points: &[Point], n: u64) -> Table {
    let mut t = Table::new(
        format!("Figure 4: AVC parallel convergence time vs eps and s (n = {n})"),
        [
            "s",
            "eps",
            "achieved_eps",
            "s_times_eps",
            "mean_parallel_time",
            "std_dev",
            "runs",
        ],
    );
    for p in points {
        t.push_row([
            p.s.to_string(),
            format!("{:e}", p.epsilon),
            fmt_num(p.achieved_epsilon),
            fmt_num(p.s as f64 * p.achieved_epsilon),
            fmt_num(p.summary.mean),
            fmt_num(p.summary.std_dev),
            p.summary.count.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_speedup_in_s_and_slowdown_in_small_eps() {
        let points = run(&Config {
            n: 2_001,
            state_counts: vec![4, 34],
            epsilons: vec![1e-3, 1e-1],
            runs: 7,
            seed: 9,
            parallelism: Parallelism::Auto,
        });
        assert_eq!(points.len(), 4);
        let get = |s: u64, eps: f64| {
            points
                .iter()
                .find(|p| p.s == s && (p.epsilon - eps).abs() < 1e-12)
                .unwrap()
        };
        // More states → faster at the hard margin.
        assert!(
            get(4, 1e-3).summary.mean > 2.0 * get(34, 1e-3).summary.mean,
            "s speedup missing"
        );
        // Smaller margin → slower at fixed s = 4.
        assert!(
            get(4, 1e-3).summary.mean > 3.0 * get(4, 1e-1).summary.mean,
            "eps slowdown missing"
        );
    }

    #[test]
    fn table_shape() {
        let points = run(&Config {
            n: 501,
            state_counts: vec![4],
            epsilons: vec![0.1],
            runs: 3,
            seed: 1,
            parallelism: Parallelism::Serial,
        });
        let t = table(&points, 501);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.columns().len(), 7);
    }
}
