//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++.
///
/// Matches the role (not the stream) of `rand::rngs::SmallRng`. Passes
/// BigCrush-class statistical tests per its authors; period `2^256 − 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> SmallRng {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is a fixed point of xoshiro; remap it.
        if s == [0; 4] {
            let mut sm = 0x1234_5678_9abc_def0u64;
            for word in &mut s {
                *word = crate::splitmix64(&mut sm);
            }
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_xoshiro_vector() {
        // Reference sequence for state [1, 2, 3, 4] from the xoshiro256++
        // reference implementation.
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SmallRng::from_seed([0; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }

    #[test]
    fn streams_look_uncorrelated_across_seeds() {
        let mut x = SmallRng::seed_from_u64(0);
        let mut y = SmallRng::seed_from_u64(1);
        let same = (0..64).filter(|_| x.next_u64() == y.next_u64()).count();
        assert_eq!(same, 0);
    }
}
