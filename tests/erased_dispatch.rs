//! Byte-identity of the scenario plane's erased dispatch seam.
//!
//! The scenario builder returns a `Box<dyn ErasedChunkedSim>` whose
//! `advance_chunk_erased` forwards to the same `advance_chunk::<SmallRng>`
//! monomorphization concrete dispatch uses, so erased runs must match
//! concrete runs *exactly*: identical outcomes, identical trajectories,
//! and — the sharp check — identical RNG stream positions afterwards
//! (a single extra or missing draw shifts every later trial). These tests
//! pin that invariant across all five engines, under a non-uniform
//! scheduler, and through the faulted driver path.

use avc::population::driver::{Driver, NullObserver};
use avc::population::engine::{AdaptiveSim, AgentSim, CountSim, JumpSim, Simulator, TauLeapSim};
use avc::population::faults::{Fault, FaultPlan};
use avc::population::graph::Graph;
use avc::population::scenario::build_erased;
use avc::population::sched::BiasedPair;
use avc::population::spec::RunOutcome;
use avc::population::{
    Config, ConvergenceRule, EngineKind, MajorityInstance, Protocol, SchedulerSpec,
};
use avc::protocols::{Avc, FourState};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

const MAX_STEPS: u64 = 5_000_000;

fn driver() -> Driver {
    Driver::new(ConvergenceRule::OutputConsensus).with_max_steps(MAX_STEPS)
}

/// Runs `protocol` on the concretely-constructed engine named by `kind`
/// (dispatching on the *name* keeps the `EngineKind` match confined to the
/// scenario builder), returning the outcome, the final state counts, and
/// the RNG's next draw — the stream-position witness.
fn concrete_run<P: Protocol + Clone + 'static>(
    protocol: &P,
    config: Config,
    kind: EngineKind,
    seed: u64,
) -> (RunOutcome, Vec<u64>, u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let d = driver();
    let (out, counts) = match kind.name() {
        "agent" => {
            let mut sim = AgentSim::on_clique(protocol.clone(), config);
            (
                d.run(&mut sim, &mut rng, &mut NullObserver),
                sim.counts().to_vec(),
            )
        }
        "count" => {
            let mut sim = CountSim::new(protocol.clone(), config);
            (
                d.run(&mut sim, &mut rng, &mut NullObserver),
                sim.counts().to_vec(),
            )
        }
        "jump" => {
            let mut sim = JumpSim::new(protocol.clone(), config);
            (
                d.run(&mut sim, &mut rng, &mut NullObserver),
                sim.counts().to_vec(),
            )
        }
        "tau_leap" => {
            let mut sim = TauLeapSim::new(protocol.clone(), config);
            (
                d.run(&mut sim, &mut rng, &mut NullObserver),
                sim.counts().to_vec(),
            )
        }
        _ => {
            let mut sim = AdaptiveSim::new(protocol.clone(), config);
            (
                d.run(&mut sim, &mut rng, &mut NullObserver),
                sim.counts().to_vec(),
            )
        }
    };
    (out, counts, rng.next_u64())
}

/// As [`concrete_run`] through the erased seam.
fn erased_run<P: Protocol + Clone + 'static>(
    protocol: &P,
    config: Config,
    kind: EngineKind,
    scheduler: &SchedulerSpec,
    seed: u64,
) -> (RunOutcome, Vec<u64>, u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sim =
        build_erased(protocol.clone(), config, kind, scheduler).expect("buildable scenario");
    let out = driver().run_erased(sim.as_mut(), &mut rng, &mut NullObserver);
    (out, sim.counts().to_vec(), rng.next_u64())
}

#[test]
fn erased_matches_concrete_on_all_five_engines() {
    let protocol = Avc::new(7, 1).unwrap();
    let instance = MajorityInstance::with_margin(501, 0.05);
    for kind in EngineKind::CONCRETE {
        for seed in [0, 1, 42] {
            let config = Config::from_input(&protocol, instance.a(), instance.b());
            let concrete = concrete_run(&protocol, config.clone(), kind, seed);
            let erased = erased_run(&protocol, config, kind, &SchedulerSpec::Uniform, seed);
            assert_eq!(
                concrete, erased,
                "{kind} seed {seed}: erased dispatch diverged from concrete \
                 (outcome, trajectory, or RNG stream position)"
            );
        }
    }
}

#[test]
fn auto_engine_is_adaptive() {
    let protocol = FourState;
    let instance = MajorityInstance::one_extra(301);
    let config = Config::from_input(&protocol, instance.a(), instance.b());
    let auto = erased_run(
        &protocol,
        config.clone(),
        EngineKind::Auto,
        &SchedulerSpec::Uniform,
        9,
    );
    let adaptive = erased_run(
        &protocol,
        config,
        EngineKind::Adaptive,
        &SchedulerSpec::Uniform,
        9,
    );
    assert_eq!(auto, adaptive, "auto must resolve to the adaptive engine");
}

#[test]
fn erased_matches_concrete_under_biased_scheduler() {
    let protocol = FourState;
    let instance = MajorityInstance::with_margin(101, 0.2);
    let config = Config::from_input(&protocol, instance.a(), instance.b());
    let spec = SchedulerSpec::Biased { hot: 8, bias: 0.9 };

    let mut rng = SmallRng::seed_from_u64(5);
    let mut sim = AgentSim::with_scheduler(
        protocol,
        config.clone(),
        Graph::clique(config.population() as usize),
        BiasedPair::new(8, 0.9),
    );
    let out = driver().run(&mut sim, &mut rng, &mut NullObserver);
    let concrete = (out, sim.counts().to_vec(), rng.next_u64());

    let erased = erased_run(&protocol, config, EngineKind::Agent, &spec, 5);
    assert_eq!(
        concrete, erased,
        "biased-scheduler erased run diverged from concrete"
    );
}

#[test]
fn non_uniform_scheduler_rejects_batching_engines() {
    let protocol = FourState;
    let config = Config::from_input(&protocol, 6, 5);
    let err = build_erased(
        protocol,
        config,
        EngineKind::Jump,
        &SchedulerSpec::RestrictedStar,
    )
    .err()
    .expect("batching engines cannot honor per-agent schedules");
    assert!(err.contains("agent"), "{err}");
}

#[test]
fn faulted_erased_matches_faulted_concrete() {
    let protocol = FourState;
    let instance = MajorityInstance::one_extra(201);
    let config = Config::from_input(&protocol, instance.a(), instance.b());
    let events = vec![
        avc::population::faults::FaultEvent {
            at_step: 50,
            fault: Fault::Crash { agent: 3 },
        },
        avc::population::faults::FaultEvent {
            at_step: 900,
            fault: Fault::Revive { agent: 3 },
        },
    ];

    let mut rng = SmallRng::seed_from_u64(13);
    let mut sim = AgentSim::on_clique(protocol, config.clone());
    let mut plan = FaultPlan::from_events(events.clone());
    let out = driver().run_faulted(&mut sim, &mut rng, &mut NullObserver, &mut plan);
    let concrete = (out, sim.counts().to_vec(), rng.next_u64());

    let mut rng = SmallRng::seed_from_u64(13);
    let mut sim = build_erased(protocol, config, EngineKind::Agent, &SchedulerSpec::Uniform)
        .expect("buildable scenario");
    let mut plan = FaultPlan::from_events(events);
    let out = driver().run_faulted_erased(sim.as_mut(), &mut rng, &mut NullObserver, &mut plan);
    let erased = (out, sim.counts().to_vec(), rng.next_u64());

    assert_eq!(
        concrete, erased,
        "faulted erased run diverged from concrete"
    );
}
