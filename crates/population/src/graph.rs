//! Interaction graphs.
//!
//! The scheduler draws interacting pairs from the edge set of an
//! *interaction graph* `G` over the agents. The paper (like most of the
//! population-protocol literature) focuses on the complete graph, but the
//! four-state protocol was originally analyzed on arbitrary connected graphs
//! \[DV12], so the agent-level engine supports them too.

use rand::Rng;

/// An undirected interaction graph over agents `0..n`.
///
/// Sampling draws an *ordered* pair: an undirected edge uniformly at random,
/// then a uniformly random orientation. On the complete graph this is exactly
/// the uniform ordered pair of distinct agents used in the discrete-time
/// population model.
///
/// # Example
///
/// ```
/// use avc_population::graph::Graph;
/// use rand::SeedableRng;
///
/// let g = Graph::cycle(5);
/// assert_eq!(g.num_agents(), 5);
/// assert_eq!(g.num_edges(), 5);
/// assert!(g.is_connected());
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let (u, v) = g.sample_pair(&mut rng);
/// assert!(u != v && u < 5 && v < 5);
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    topology: Topology,
}

#[derive(Debug, Clone)]
enum Topology {
    /// Complete graph; pairs are sampled directly without an edge list.
    Clique,
    /// Explicit undirected edge list.
    Explicit { edges: Vec<(u32, u32)> },
}

impl Graph {
    /// The complete graph on `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn clique(n: usize) -> Graph {
        assert!(n >= 2, "need at least two agents, got {n}");
        Graph {
            n,
            topology: Topology::Clique,
        }
    }

    /// The cycle `0 — 1 — … — (n−1) — 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    #[must_use]
    pub fn cycle(n: usize) -> Graph {
        assert!(n >= 3, "a cycle needs at least three agents, got {n}");
        let edges = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Graph::from_edges(n, edges)
    }

    /// The path `0 — 1 — … — (n−1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn path(n: usize) -> Graph {
        assert!(n >= 2, "a path needs at least two agents, got {n}");
        let edges = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, edges)
    }

    /// The star with center `0` and leaves `1..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn star(n: usize) -> Graph {
        assert!(n >= 2, "a star needs at least two agents, got {n}");
        let edges = (1..n as u32).map(|i| (0, i)).collect();
        Graph::from_edges(n, edges)
    }

    /// The `rows × cols` grid (4-neighborhood).
    ///
    /// # Panics
    ///
    /// Panics if the grid has fewer than two agents.
    #[must_use]
    pub fn grid(rows: usize, cols: usize) -> Graph {
        let n = rows * cols;
        assert!(
            n >= 2,
            "a grid needs at least two agents, got {rows}x{cols}"
        );
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let id = (r * cols + c) as u32;
                if c + 1 < cols {
                    edges.push((id, id + 1));
                }
                if r + 1 < rows {
                    edges.push((id, id + cols as u32));
                }
            }
        }
        Graph::from_edges(n, edges)
    }

    /// The complete bipartite graph on parts of size `left` and `right`
    /// (agents `0..left` vs `left..left+right`).
    ///
    /// # Panics
    ///
    /// Panics if either part is empty.
    #[must_use]
    pub fn complete_bipartite(left: usize, right: usize) -> Graph {
        assert!(left >= 1 && right >= 1, "both parts must be nonempty");
        let mut edges = Vec::with_capacity(left * right);
        for u in 0..left as u32 {
            for v in 0..right as u32 {
                edges.push((u, left as u32 + v));
            }
        }
        Graph::from_edges(left + right, edges)
    }

    /// An Erdős–Rényi `G(n, p)` sample. Not guaranteed to be connected;
    /// check with [`Graph::is_connected`] and resample if needed.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `p` is not in `[0, 1]`.
    pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
        assert!(n >= 2, "need at least two agents, got {n}");
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        Graph::from_edges(n, edges)
    }

    /// A graph from an explicit undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range or an edge is a self-loop.
    #[must_use]
    pub fn from_edges(n: usize, edges: Vec<(u32, u32)>) -> Graph {
        for &(u, v) in &edges {
            assert!(u != v, "self-loop at agent {u}");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for {n} agents"
            );
        }
        Graph {
            n,
            topology: Topology::Explicit { edges },
        }
    }

    /// Number of agents.
    #[must_use]
    pub fn num_agents(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        match &self.topology {
            Topology::Clique => self.n * (self.n - 1) / 2,
            Topology::Explicit { edges } => edges.len(),
        }
    }

    /// Whether this graph is the complete graph (dedicated fast path).
    #[must_use]
    pub fn is_clique(&self) -> bool {
        matches!(self.topology, Topology::Clique)
    }

    /// Iterator over undirected edges as `(u, v)` pairs.
    ///
    /// For the clique the pairs are generated on the fly (`n(n−1)/2` of
    /// them), so prefer structural fast paths for very large cliques.
    pub fn edge_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let (clique_n, edges): (usize, &[(u32, u32)]) = match &self.topology {
            Topology::Clique => (self.n, &[]),
            Topology::Explicit { edges } => (0, edges.as_slice()),
        };
        (0..clique_n)
            .flat_map(move |u| (u + 1..clique_n).map(move |v| (u, v)))
            .chain(edges.iter().map(|&(u, v)| (u as usize, v as usize)))
    }

    /// A random simple `k`-regular graph, generated from a `k`-regular
    /// circulant graph randomized by `10·|E|` double-edge swaps (the
    /// standard Markov-chain construction; unlike configuration-model
    /// rejection it succeeds for any feasible `(n, k)`). The result is not
    /// guaranteed connected — check [`Graph::is_connected`].
    ///
    /// # Panics
    ///
    /// Panics if `n·k` is odd, `k ≥ n`, or `k = 0`.
    pub fn random_regular<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Graph {
        assert!(k >= 1, "degree must be positive");
        assert!(k < n, "degree {k} must be below n = {n}");
        assert!((n * k).is_multiple_of(2), "n·k must be even, got {n}·{k}");

        // Start from the circulant graph: i ~ i ± 1, …, i ± ⌊k/2⌋, plus the
        // antipodal matching when k is odd (n is then even by the parity
        // assertion above).
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * k / 2);
        let mut present = std::collections::HashSet::with_capacity(n * k / 2);
        let add = |edges: &mut Vec<(u32, u32)>,
                   present: &mut std::collections::HashSet<(u32, u32)>,
                   u: u32,
                   v: u32| {
            let key = (u.min(v), u.max(v));
            if present.insert(key) {
                edges.push(key);
            }
        };
        for j in 1..=(k / 2) as u32 {
            for i in 0..n as u32 {
                add(&mut edges, &mut present, i, (i + j) % n as u32);
            }
        }
        if k % 2 == 1 {
            for i in 0..(n / 2) as u32 {
                add(&mut edges, &mut present, i, i + (n / 2) as u32);
            }
        }
        debug_assert_eq!(edges.len(), n * k / 2);

        // Randomize by double-edge swaps: pick edges (a,b), (c,d) and
        // rewire to (a,d), (c,b) when the result stays simple.
        let swaps = 10 * edges.len();
        for _ in 0..swaps {
            let i = rng.gen_range(0..edges.len());
            let j = rng.gen_range(0..edges.len());
            if i == j {
                continue;
            }
            let (a, b) = edges[i];
            let (c, d) = edges[j];
            // Randomize orientation of the second edge.
            let (c, d) = if rng.gen_bool(0.5) { (c, d) } else { (d, c) };
            if a == d || c == b || a == c || b == d {
                continue; // would create a self-loop or is a shared vertex
            }
            let new1 = (a.min(d), a.max(d));
            let new2 = (c.min(b), c.max(b));
            if present.contains(&new1) || present.contains(&new2) {
                continue; // would create a parallel edge
            }
            present.remove(&(a.min(b), a.max(b)));
            present.remove(&(c.min(d), c.max(d)));
            present.insert(new1);
            present.insert(new2);
            edges[i] = new1;
            edges[j] = new2;
        }
        Graph::from_edges(n, edges)
    }

    /// Draws a uniformly random ordered pair of adjacent agents.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    pub fn sample_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, usize) {
        match &self.topology {
            Topology::Clique => {
                let u = rng.gen_range(0..self.n);
                let mut v = rng.gen_range(0..self.n - 1);
                if v >= u {
                    v += 1;
                }
                (u, v)
            }
            Topology::Explicit { edges } => {
                assert!(!edges.is_empty(), "graph has no edges to sample");
                let (u, v) = edges[rng.gen_range(0..edges.len())];
                if rng.gen_bool(0.5) {
                    (u as usize, v as usize)
                } else {
                    (v as usize, u as usize)
                }
            }
        }
    }

    /// Whether every agent can reach every other agent.
    ///
    /// Population protocols can only compute global predicates on connected
    /// interaction graphs.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        match &self.topology {
            Topology::Clique => true,
            Topology::Explicit { edges } => {
                if self.n == 0 {
                    return true;
                }
                let mut adj = vec![Vec::new(); self.n];
                for &(u, v) in edges {
                    adj[u as usize].push(v as usize);
                    adj[v as usize].push(u as usize);
                }
                let mut seen = vec![false; self.n];
                let mut stack = vec![0usize];
                seen[0] = true;
                let mut visited = 1;
                while let Some(u) = stack.pop() {
                    for &v in &adj[u] {
                        if !seen[v] {
                            seen[v] = true;
                            visited += 1;
                            stack.push(v);
                        }
                    }
                }
                visited == self.n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn clique_pairs_are_distinct_and_uniformish() {
        let g = Graph::clique(4);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut hits = [[0u32; 4]; 4];
        for _ in 0..120_000 {
            let (u, v) = g.sample_pair(&mut rng);
            assert_ne!(u, v);
            hits[u][v] += 1;
        }
        // 12 ordered pairs, each expected 10_000 times.
        for (u, row) in hits.iter().enumerate() {
            for (v, &count) in row.iter().enumerate() {
                if u != v {
                    assert!((count as i64 - 10_000).abs() < 1_000, "pair ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn edge_counts() {
        assert_eq!(Graph::clique(10).num_edges(), 45);
        assert_eq!(Graph::cycle(7).num_edges(), 7);
        assert_eq!(Graph::path(7).num_edges(), 6);
        assert_eq!(Graph::star(7).num_edges(), 6);
        assert_eq!(Graph::grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(Graph::complete_bipartite(3, 4).num_edges(), 12);
    }

    #[test]
    fn standard_topologies_are_connected() {
        assert!(Graph::clique(5).is_connected());
        assert!(Graph::cycle(5).is_connected());
        assert!(Graph::path(5).is_connected());
        assert!(Graph::star(5).is_connected());
        assert!(Graph::grid(4, 4).is_connected());
        assert!(Graph::complete_bipartite(2, 3).is_connected());
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let empty = Graph::erdos_renyi(5, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = Graph::erdos_renyi(5, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 10);
        assert!(full.is_connected());
    }

    #[test]
    fn explicit_pair_sampling_respects_edges() {
        let g = Graph::path(3); // edges (0,1), (1,2)
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let (u, v) = g.sample_pair(&mut rng);
            assert!(matches!((u, v), (0, 1) | (1, 0) | (1, 2) | (2, 1)));
        }
    }

    #[test]
    fn edge_pairs_enumerates_all_edges() {
        let g = Graph::cycle(5);
        let edges: Vec<_> = g.edge_pairs().collect();
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&(0, 1)) && edges.contains(&(4, 0)) || edges.contains(&(0, 4)));

        let clique: Vec<_> = Graph::clique(4).edge_pairs().collect();
        assert_eq!(clique.len(), 6);
        assert!(clique.iter().all(|&(u, v)| u < v && v < 4));
    }

    #[test]
    fn random_regular_has_uniform_degree() {
        let mut rng = SmallRng::seed_from_u64(17);
        let g = Graph::random_regular(30, 4, &mut rng);
        assert_eq!(g.num_edges(), 30 * 4 / 2);
        let mut degree = [0u32; 30];
        for (u, v) in g.edge_pairs() {
            degree[u] += 1;
            degree[v] += 1;
        }
        assert!(degree.iter().all(|&d| d == 4));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_rejects_odd_stub_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = Graph::random_regular(5, 3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let _ = Graph::from_edges(3, vec![(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = Graph::from_edges(3, vec![(0, 3)]);
    }
}
