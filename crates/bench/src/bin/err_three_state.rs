//! Regenerates the **three-state error law** behind Figure 3 (right):
//! empirical error fraction vs the \[PVV09] bound `exp(−D((1+ε)/2‖1/2)·n)`.
//!
//! Alias for `avc sweep err_three_state` followed by `avc export
//! err_three_state` (flags: `--quick --ns --runs --seed --serial/--threads
//! --progress --out`), with checkpoint/resume through the result store.

fn main() {
    avc_store::cli::legacy("err_three_state");
}
