//! The two-state voter model \[HP99].

use avc_population::{Opinion, Protocol, StateId};

const A: StateId = 0;
const B: StateId = 1;

/// The classical two-state voter model (distributed probabilistic polling,
/// Hassin–Peleg; the voter model of interacting particle systems).
///
/// On each interaction the responder simply adopts the initiator's opinion.
/// On the clique this is a martingale on the count of `A`-agents: it
/// converges to consensus on `A` with probability exactly `a/n`, so the
/// error probability from margin `ε` is `(1 − ε)/2`, and the expected
/// convergence time is `Θ(n)` parallel time. It is included as the weakest
/// baseline of the protocol family.
///
/// # Example
///
/// ```
/// use avc_population::engine::{CountSim, Simulator};
/// use avc_population::Config;
/// use avc_protocols::Voter;
/// use rand::SeedableRng;
///
/// let config = Config::from_input(&Voter, 90, 10);
/// let mut sim = CountSim::new(Voter, config);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
/// assert!(sim.run_to_consensus(&mut rng, u64::MAX).verdict.is_consensus());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Voter;

impl Protocol for Voter {
    fn num_states(&self) -> u32 {
        2
    }

    fn transition(&self, initiator: StateId, _responder: StateId) -> (StateId, StateId) {
        (initiator, initiator)
    }

    fn output(&self, state: StateId) -> Opinion {
        if state == A {
            Opinion::A
        } else {
            Opinion::B
        }
    }

    fn input(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => A,
            Opinion::B => B,
        }
    }

    fn state_label(&self, state: StateId) -> String {
        if state == A {
            "A".to_string()
        } else {
            "B".to_string()
        }
    }

    fn name(&self) -> &str {
        "voter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_population::engine::{CountSim, Simulator};
    use avc_population::Config;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn responder_adopts_initiator() {
        assert_eq!(Voter.transition(A, B), (A, A));
        assert_eq!(Voter.transition(B, A), (B, B));
        assert!(Voter.is_silent(A, A));
        assert!(Voter.is_silent(B, B));
    }

    #[test]
    fn absorption_probability_is_initial_fraction() {
        // Martingale: P[consensus A] = a/n. With a = 15, n = 20 expect 75%.
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 400;
        let mut wins_a = 0;
        for _ in 0..trials {
            let config = Config::from_input(&Voter, 15, 5);
            let mut sim = CountSim::new(Voter, config);
            let out = sim.run_to_consensus(&mut rng, u64::MAX);
            if out.verdict.opinion() == Some(Opinion::A) {
                wins_a += 1;
            }
        }
        let frac = wins_a as f64 / trials as f64;
        assert!((frac - 0.75).abs() < 0.07, "absorption fraction {frac}");
    }
}
