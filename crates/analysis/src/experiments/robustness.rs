//! Protocol robustness under adversarial schedulers and injected faults.
//!
//! The paper proves AVC exact under the uniform scheduler, and the
//! four-state baseline is exact under any *fair* scheduler \[DV12]. This
//! experiment probes both protocols across a grid of scenarios: four
//! adversarial (but fair, fault-free) schedulers from
//! [`avc_population::sched`], plus crash/revive and state-corruption fault
//! scenarios from [`avc_population::faults`]. Reported per cell: the
//! wrong-consensus fraction (exactness violations), timeout count, and the
//! convergence-time summary, from which the export derives per-scenario
//! *slowdown factors* relative to the uniform baseline.
//!
//! Headline structure of the results: both protocols stay exact in every
//! cell; AVC additionally *stalls* (times out in a frozen mixed
//! configuration, never answering wrong) when the schedule is restricted
//! to a sparse interaction graph, while the four-state protocol converges
//! on any connected graph per \[DV12].
//!
//! Every scenario is deterministic per seed: schedulers draw all
//! randomness from the trial RNG, and fault injection draws none, so a
//! cell replays bit-identically — the property the checkpoint/resume
//! byte-identity of the `robustness` sweep spec rests on.

use crate::harness::{run_indexed_with_stats, Parallelism, StatsCollector};
use crate::stats::Summary;
use crate::table::{fmt_num, Table};
use avc_population::cached::Cached;
use avc_population::driver::{Driver, NullObserver};
use avc_population::engine::AgentSim;
use avc_population::faults::{Fault, FaultPlan};
use avc_population::graph::Graph;
use avc_population::rngutil::SeedSequence;
use avc_population::sched::{BiasedPair, EpochBatched, GraphRestricted, LaggardStarving};
use avc_population::spec::RunOutcome;
use avc_population::{
    Config as PopulationConfig, ConvergenceRule, MajorityInstance, Opinion, Protocol,
};
use avc_protocols::{Avc, FourState};

/// Protocols measured, in cell order. AVC runs with `m = 7, d = 1`
/// (10 states — exactness is parameter-independent; speed is not the
/// subject here).
pub const PROTOCOLS: [&str; 2] = ["avc", "four_state"];

/// Parameters for the robustness experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Population size (odd, so the majority instance is never a tie).
    pub n: u64,
    /// Margin.
    pub epsilon: f64,
    /// Runs per (protocol, scenario) cell.
    pub runs: u64,
    /// Master seed.
    pub seed: u64,
    /// Step budget per run (slow scenarios are reported as timeouts).
    pub max_steps: u64,
    /// Thread sharding of each cell's trials (results are unaffected).
    pub parallelism: Parallelism,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            n: 201,
            epsilon: 0.2,
            runs: 25,
            seed: 77,
            max_steps: 100_000_000,
            parallelism: Parallelism::default(),
        }
    }
}

impl Config {
    /// A downscaled configuration for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Config {
        Config {
            n: 41,
            epsilon: 0.5,
            runs: 6,
            seed: 77,
            max_steps: 10_000_000,
            parallelism: Parallelism::default(),
        }
    }

    /// Builds a configuration from parsed CLI arguments (`--quick`, `--n`,
    /// `--runs`, `--seed`, `--serial`/`--threads`).
    #[must_use]
    pub fn from_args(args: &crate::cli::Args) -> Config {
        let mut config = if args.flag("quick") {
            Config::quick()
        } else {
            Config::default()
        };
        config.n = args.get_u64("n", config.n);
        config.runs = args.get_u64("runs", config.runs);
        config.seed = args.get_u64("seed", config.seed);
        config.parallelism = args.parallelism();
        config
    }
}

/// How one scenario perturbs the run (parameters already resolved for a
/// concrete population size).
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// The uniform baseline every slowdown factor is measured against.
    Uniform,
    /// [`BiasedPair`] hammering a hot clique of `hot` agents.
    Biased {
        /// Hot-set size.
        hot: usize,
        /// Probability a step stays inside the hot set.
        bias: f64,
    },
    /// [`LaggardStarving`] the `laggards` highest-numbered agents.
    Starved {
        /// Starved-set size.
        laggards: usize,
        /// Steps between laggard-eligible slots.
        period: u64,
    },
    /// [`EpochBatched`] random perfect matchings.
    Epoch,
    /// [`GraphRestricted`] to the star (all traffic through one center).
    StarRestricted,
    /// [`GraphRestricted`] to the cycle (worst standard spectral gap).
    CycleRestricted,
    /// Crash `agents` agents at step `crash_at`, revive them all at
    /// `revive_at` (uniform scheduling throughout).
    CrashRevive {
        /// Number of crashed agents (ids `0..agents`).
        agents: usize,
        /// Crash step.
        crash_at: u64,
        /// Revive step.
        revive_at: u64,
    },
    /// At step `at`, corrupt `agents` agents from the initial-A state to
    /// the initial-B state (uniform scheduling throughout).
    Corrupt {
        /// Number of corrupted agents (clamped to the source count).
        agents: u64,
        /// Corruption step.
        at: u64,
    },
}

/// One row of the scenario grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Short cell label (`uniform`, `biased`, `crash_revive`, …).
    pub label: String,
    /// The perturbation.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// Whether the scenario injects faults (as opposed to only skewing
    /// the schedule).
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        matches!(
            self.kind,
            ScenarioKind::CrashRevive { .. } | ScenarioKind::Corrupt { .. }
        )
    }

    /// The scenario's scheduler description, for manifests and tables.
    #[must_use]
    pub fn scheduler_spec(&self) -> String {
        match &self.kind {
            ScenarioKind::Biased { hot, bias } => format!("biased(hot={hot},bias={bias})"),
            ScenarioKind::Starved { laggards, period } => {
                format!("starved(laggards={laggards},period={period})")
            }
            ScenarioKind::Epoch => "epoch".to_string(),
            ScenarioKind::StarRestricted => "restricted(star)".to_string(),
            ScenarioKind::CycleRestricted => "restricted(cycle)".to_string(),
            ScenarioKind::Uniform
            | ScenarioKind::CrashRevive { .. }
            | ScenarioKind::Corrupt { .. } => "uniform".to_string(),
        }
    }

    /// The scenario's fault-plan description, for manifests and tables
    /// (`none` for fault-free scenarios).
    #[must_use]
    pub fn fault_spec(&self) -> String {
        match &self.kind {
            ScenarioKind::CrashRevive {
                agents,
                crash_at,
                revive_at,
            } => format!("crash_revive(agents={agents},crash_at={crash_at},revive_at={revive_at})"),
            ScenarioKind::Corrupt { agents, at } => {
                format!("corrupt(agents={agents},at={at},A->B)")
            }
            _ => "none".to_string(),
        }
    }
}

/// The scenario grid at population `n` (parameters scale with `n`).
#[must_use]
pub fn scenarios(n: u64) -> Vec<Scenario> {
    let mk = |label: &str, kind| Scenario {
        label: label.to_string(),
        kind,
    };
    vec![
        mk("uniform", ScenarioKind::Uniform),
        mk(
            "biased",
            ScenarioKind::Biased {
                hot: (n as usize / 10).max(2),
                bias: 0.5,
            },
        ),
        mk(
            "starved",
            ScenarioKind::Starved {
                laggards: (n as usize / 4).max(1),
                period: 16,
            },
        ),
        mk("epoch", ScenarioKind::Epoch),
        mk("star_restricted", ScenarioKind::StarRestricted),
        mk("cycle_restricted", ScenarioKind::CycleRestricted),
        mk(
            "crash_revive",
            ScenarioKind::CrashRevive {
                agents: (n as usize / 10).max(1),
                crash_at: n,
                revive_at: 20 * n,
            },
        ),
        mk(
            "corrupt",
            ScenarioKind::Corrupt {
                agents: (n / 20).max(1),
                at: n,
            },
        ),
    ]
}

/// One (protocol, scenario) cell's measurement.
///
/// Exactness and convergence are reported separately: a run that
/// *converges to the wrong majority* violates exactness
/// (`wrong_fraction`), while a run that never converges within the step
/// budget is a `timeout` — AVC under graph-restricted schedules stalls in
/// mixed configurations (its transition structure assumes the clique) but
/// never reports a wrong answer.
#[derive(Debug, Clone)]
pub struct Point {
    /// Protocol name (an entry of [`PROTOCOLS`]).
    pub protocol: String,
    /// The scenario measured.
    pub scenario: Scenario,
    /// Fraction of runs converging to the *wrong* majority (exactness
    /// violations).
    pub wrong_fraction: f64,
    /// Runs that hit the step budget without converging.
    pub timeouts: u64,
    /// Parallel-time summary over converged runs (`None` if every run hit
    /// the budget).
    pub summary: Option<Summary>,
    /// Runs attempted.
    pub runs: u64,
}

/// Runs one trial of `protocol` under `scenario`.
///
/// # Panics
///
/// Panics if a fault is rejected by the engine (mis-specified scenario).
pub fn run_scenario<P: Protocol>(
    protocol: &P,
    a: u64,
    b: u64,
    scenario: &ScenarioKind,
    max_steps: u64,
    rng: &mut rand::rngs::SmallRng,
) -> RunOutcome {
    let initial = PopulationConfig::from_input(protocol, a, b);
    let n = initial.population() as usize;
    let graph = Graph::clique(n);
    let driver = Driver::new(ConvergenceRule::OutputConsensus).with_max_steps(max_steps);
    let obs = &mut NullObserver;
    match scenario {
        ScenarioKind::Uniform => driver.run(&mut AgentSim::new(protocol, initial, graph), rng, obs),
        ScenarioKind::Biased { hot, bias } => {
            let sched = BiasedPair::new(*hot, *bias);
            driver.run(
                &mut AgentSim::with_scheduler(protocol, initial, graph, sched),
                rng,
                obs,
            )
        }
        ScenarioKind::Starved { laggards, period } => {
            let sched = LaggardStarving::new(*laggards, *period);
            driver.run(
                &mut AgentSim::with_scheduler(protocol, initial, graph, sched),
                rng,
                obs,
            )
        }
        ScenarioKind::Epoch => driver.run(
            &mut AgentSim::with_scheduler(protocol, initial, graph, EpochBatched::new()),
            rng,
            obs,
        ),
        ScenarioKind::StarRestricted => {
            let sched = GraphRestricted::new(Graph::star(n));
            driver.run(
                &mut AgentSim::with_scheduler(protocol, initial, graph, sched),
                rng,
                obs,
            )
        }
        ScenarioKind::CycleRestricted => {
            let sched = GraphRestricted::new(Graph::cycle(n));
            driver.run(
                &mut AgentSim::with_scheduler(protocol, initial, graph, sched),
                rng,
                obs,
            )
        }
        ScenarioKind::CrashRevive {
            agents,
            crash_at,
            revive_at,
        } => {
            let mut events = Vec::with_capacity(2 * agents);
            for agent in 0..*agents {
                events.push(avc_population::faults::FaultEvent {
                    at_step: *crash_at,
                    fault: Fault::Crash { agent },
                });
                events.push(avc_population::faults::FaultEvent {
                    at_step: *revive_at,
                    fault: Fault::Revive { agent },
                });
            }
            let mut plan = FaultPlan::from_events(events);
            driver.run_faulted(
                &mut AgentSim::new(protocol, initial, graph),
                rng,
                obs,
                &mut plan,
            )
        }
        ScenarioKind::Corrupt { agents, at } => {
            let mut plan = FaultPlan::new().at(
                *at,
                Fault::Corrupt {
                    from: protocol.input(Opinion::A),
                    to: protocol.input(Opinion::B),
                    agents: *agents,
                },
            );
            driver.run_faulted(
                &mut AgentSim::new(protocol, initial, graph),
                rng,
                obs,
                &mut plan,
            )
        }
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &Config) -> Vec<Point> {
    run_with_stats(config, &StatsCollector::new())
}

/// As [`run`], folding per-cell throughput telemetry into `stats`.
#[must_use]
pub fn run_with_stats(config: &Config, stats: &StatsCollector) -> Vec<Point> {
    let num_scenarios = scenarios(config.n).len();
    (0..PROTOCOLS.len())
        .flat_map(|pi| (0..num_scenarios).map(move |si| (pi, si)))
        .map(|(pi, si)| run_point(config, pi, si, stats))
        .collect()
}

/// One cell's raw trial outcomes. The protocol's transition table is
/// shared (read-only) across the cell's threads.
fn measure<P: Protocol + Sync>(
    config: &Config,
    protocol: &P,
    inst: &MajorityInstance,
    scenario: &ScenarioKind,
    cell_seeds: &SeedSequence,
) -> (Vec<RunOutcome>, crate::harness::BatchStats) {
    run_indexed_with_stats(config.runs, config.parallelism, |trial| {
        let mut rng = cell_seeds.rng_for(trial);
        let out = run_scenario(
            protocol,
            inst.a(),
            inst.b(),
            scenario,
            config.max_steps,
            &mut rng,
        );
        (out, out.steps)
    })
}

/// Runs one cell; `pi` indexes [`PROTOCOLS`], `si` indexes
/// [`scenarios`]`(config.n)`. Trial seeds derive from `(pi, si)` alone, so
/// a cell reruns identically in isolation (the basis of
/// checkpoint/resume).
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
pub fn run_point(config: &Config, pi: usize, si: usize, stats: &StatsCollector) -> Point {
    let scenario = scenarios(config.n)
        .into_iter()
        .nth(si)
        .expect("scenario index in range");
    let num_scenarios = scenarios(config.n).len();
    let cell_seeds = SeedSequence::new(config.seed).child((pi * num_scenarios + si) as u64);
    let inst = MajorityInstance::with_margin(config.n, config.epsilon);
    let name = PROTOCOLS[pi];
    let (outcomes, batch) = match name {
        "avc" => {
            let protocol = Cached::new(Avc::new(7, 1).expect("valid parameters"));
            measure(config, &protocol, &inst, &scenario.kind, &cell_seeds)
        }
        "four_state" => {
            let protocol = Cached::new(FourState);
            measure(config, &protocol, &inst, &scenario.kind, &cell_seeds)
        }
        other => unreachable!("unknown protocol {other}"),
    };
    stats.record(&batch);
    let expected = inst.winner().expect("positive margin has a winner");
    let wrong = outcomes
        .iter()
        .filter(|o| o.verdict.is_consensus() && !o.verdict.is_correct(expected))
        .count() as u64;
    let timeouts = outcomes
        .iter()
        .filter(|o| !o.verdict.is_consensus())
        .count() as u64;
    let times: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.verdict.is_consensus())
        .map(|o| o.parallel_time)
        .collect();
    let summary = (!times.is_empty()).then(|| Summary::from_samples(&times));
    Point {
        protocol: name.to_string(),
        scenario,
        wrong_fraction: wrong as f64 / config.runs as f64,
        timeouts,
        summary,
        runs: config.runs,
    }
}

/// Per-scenario slowdown factors relative to each protocol's uniform
/// baseline: `(protocol, scenario_label, mean / uniform_mean)`. Cells
/// whose baseline or own mean is unavailable are omitted.
#[must_use]
pub fn slowdowns(points: &[Point]) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for protocol in PROTOCOLS {
        let baseline = points
            .iter()
            .find(|p| p.protocol == protocol && p.scenario.label == "uniform")
            .and_then(|p| p.summary.as_ref().map(|s| s.mean));
        let Some(base) = baseline else { continue };
        for p in points.iter().filter(|p| p.protocol == protocol) {
            if p.scenario.label == "uniform" {
                continue;
            }
            if let Some(s) = &p.summary {
                out.push((
                    protocol.to_string(),
                    p.scenario.label.clone(),
                    s.mean / base,
                ));
            }
        }
    }
    out
}

/// Renders the result table.
#[must_use]
pub fn table(points: &[Point], config: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Robustness under adversarial schedulers and faults (n = {}, eps = {}, {} runs)",
            config.n, config.epsilon, config.runs
        ),
        [
            "protocol",
            "scenario",
            "scheduler",
            "faults",
            "wrong_consensus",
            "mean_parallel_time",
            "std_dev",
            "timeouts",
            "runs",
        ],
    );
    for p in points {
        let (mean, std) = match &p.summary {
            Some(s) => (fmt_num(s.mean), fmt_num(s.std_dev)),
            None => ("-".to_string(), "-".to_string()),
        };
        t.push_row([
            p.protocol.clone(),
            p.scenario.label.clone(),
            p.scenario.scheduler_spec(),
            p.scenario.fault_spec(),
            fmt_num(p.wrong_fraction),
            mean,
            std,
            p.timeouts.to_string(),
            p.runs.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_is_exact_where_the_paper_says_so() {
        let config = Config::quick();
        let points = run(&config);
        assert_eq!(points.len(), PROTOCOLS.len() * scenarios(config.n).len());
        for p in &points {
            // Exactness: no scenario — adversarial or faulted — may
            // produce a wrong consensus at these fault magnitudes.
            assert_eq!(
                p.wrong_fraction, 0.0,
                "{} answered wrong under {}",
                p.protocol, p.scenario.label
            );
            // four_state converges under every scenario (\[DV12] holds on
            // any connected graph), as does AVC under the clique-fair
            // schedulers; AVC stalls when the schedule is restricted to a
            // sparse graph — its transition structure assumes the clique.
            let avc_stalls = p.protocol == "avc"
                && matches!(
                    p.scenario.kind,
                    ScenarioKind::StarRestricted | ScenarioKind::CycleRestricted
                );
            if avc_stalls {
                assert_eq!(p.timeouts, p.runs, "AVC unexpectedly converged");
            } else {
                assert_eq!(
                    p.timeouts, 0,
                    "{} timed out under {}",
                    p.protocol, p.scenario.label
                );
            }
        }
        // Slowdowns resolve against the uniform baselines.
        let factors = slowdowns(&points);
        assert!(factors
            .iter()
            .any(|(p, s, _)| p == "four_state" && s == "cycle_restricted"));
    }

    #[test]
    fn cells_rerun_identically_in_isolation() {
        let config = Config::quick();
        let stats = StatsCollector::new();
        let a = run_point(&config, 1, 2, &stats);
        let b = run_point(&config, 1, 2, &stats);
        assert_eq!(a.wrong_fraction, b.wrong_fraction);
        assert_eq!(a.timeouts, b.timeouts);
        assert_eq!(
            a.summary.as_ref().map(|s| s.mean),
            b.summary.as_ref().map(|s| s.mean)
        );
    }
}
