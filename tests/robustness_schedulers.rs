//! Adversarial-scheduler stress suite: exactness and slowdown of the
//! majority protocols when the interaction sequence is chosen by an
//! adversary instead of the uniform scheduler the paper analyzes.
//!
//! The suite runs a quick tier by default; set `ROBUSTNESS_FULL=1` for
//! more seeds per combination. Every assertion is deterministic per seed:
//! schedulers draw all their randomness from the trial RNG, so there is no
//! statistical flake — a failure is a real regression.

use avc::population::driver::{Driver, NullObserver};
use avc::population::engine::{AgentSim, Simulator};
use avc::population::graph::Graph;
use avc::population::sched::{
    BiasedPair, EpochBatched, GraphRestricted, LaggardStarving, Scheduler, Uniform,
};
use avc::population::spec::RunOutcome;
use avc::population::{Config, ConvergenceRule, MajorityInstance, Protocol};
use avc::protocols::{Avc, Bef, Degssu, FourState};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Step budget: ~24k parallel time at the populations used here — orders
/// of magnitude above any converging combination.
const BUDGET: u64 = 1_000_000;

/// Seeds per (protocol, scheduler) combination: quick tier by default,
/// `ROBUSTNESS_FULL=1` for the deeper sweep.
fn num_seeds() -> u64 {
    if std::env::var_os("ROBUSTNESS_FULL").is_some() {
        20
    } else {
        6
    }
}

/// Drives one run of `protocol` on the clique under `scheduler`.
fn run_scheduled<P: Protocol, S: Scheduler>(
    protocol: &P,
    a: u64,
    b: u64,
    scheduler: S,
    seed: u64,
    max_steps: u64,
) -> RunOutcome {
    let config = Config::from_input(protocol, a, b);
    let n = config.population() as usize;
    let mut sim = AgentSim::with_scheduler(protocol, config, Graph::clique(n), scheduler);
    let mut rng = SmallRng::seed_from_u64(seed);
    Driver::new(ConvergenceRule::OutputConsensus)
        .with_max_steps(max_steps)
        .run(&mut sim, &mut rng, &mut NullObserver)
}

/// Asserts `protocol` decides a margin-1 instance correctly under every
/// clique-fair adversarial scheduler (all pairs stay reachable), across
/// seeds and with both majorities.
fn assert_exact_under_fair_adversaries<P: Protocol>(protocol: &P, label: &str) {
    let n = 25;
    let inst = MajorityInstance::one_extra(n);
    // Majority-A and the mirrored majority-B instance.
    for (a, b) in [(inst.a(), inst.b()), (inst.b(), inst.a())] {
        let expected = if a > b {
            avc::population::Opinion::A
        } else {
            avc::population::Opinion::B
        };
        for seed in 0..num_seeds() {
            let outcomes = [
                (
                    "biased",
                    run_scheduled(protocol, a, b, BiasedPair::new(4, 0.75), seed, BUDGET),
                ),
                (
                    "starved",
                    run_scheduled(
                        protocol,
                        a,
                        b,
                        LaggardStarving::new(n as usize / 3, 8),
                        seed,
                        BUDGET,
                    ),
                ),
                (
                    "epoch",
                    run_scheduled(protocol, a, b, EpochBatched::new(), seed, BUDGET),
                ),
                (
                    "uniform",
                    run_scheduled(protocol, a, b, Uniform, seed, BUDGET),
                ),
            ];
            for (sched, out) in outcomes {
                assert!(
                    out.verdict.is_consensus(),
                    "{label} did not converge under {sched} (seed {seed}, a={a}, b={b}): {:?}",
                    out.verdict
                );
                assert!(
                    out.verdict.is_correct(expected),
                    "{label} answered wrong under {sched} (seed {seed}, a={a}, b={b}): {:?}",
                    out.verdict
                );
            }
        }
    }
}

/// AVC stays exact under every fair adversarial schedule, at the hardest
/// margin (one extra agent).
#[test]
fn avc_exact_under_fair_adversarial_schedulers() {
    let avc = Avc::new(5, 1).expect("valid parameters");
    assert_exact_under_fair_adversaries(&avc, "avc");
}

/// The four-state protocol stays exact under every fair adversarial
/// schedule, at the hardest margin.
#[test]
fn four_state_exact_under_fair_adversarial_schedulers() {
    assert_exact_under_fair_adversaries(&FourState, "four_state");
}

/// The BEF split/cancel rival stays exact under every fair adversarial
/// schedule, at the hardest margin. (Graph-restricted schedules are out of
/// scope: BEF assumes the clique — see the module docs on `Bef`.)
#[test]
fn bef_exact_under_fair_adversarial_schedulers() {
    let bef = Bef::new(5).expect("valid parameters");
    assert_exact_under_fair_adversaries(&bef, "bef");
}

/// The DEGSSU clocked rival stays exact under every fair adversarial
/// schedule, at the hardest margin.
#[test]
fn degssu_exact_under_fair_adversarial_schedulers() {
    let degssu = Degssu::new(5, 3).expect("valid parameters");
    assert_exact_under_fair_adversaries(&degssu, "degssu");
}

/// The four-state protocol additionally converges exactly when the
/// schedule is *graph-restricted* — \[DV12] holds on any connected
/// interaction graph.
#[test]
fn four_state_exact_under_graph_restricted_schedules() {
    let n = 25usize;
    let inst = MajorityInstance::one_extra(n as u64);
    for sub in [Graph::star(n), Graph::cycle(n)] {
        for seed in 0..num_seeds() {
            let out = run_scheduled(
                &FourState,
                inst.a(),
                inst.b(),
                GraphRestricted::new(sub.clone()),
                seed,
                BUDGET,
            );
            assert!(
                out.verdict.is_correct(avc::population::Opinion::A),
                "four_state wrong/stuck on restricted graph (seed {seed}): {:?}",
                out.verdict
            );
        }
    }
}

/// AVC on graph-restricted schedules *stalls* rather than erring: its
/// transition structure assumes the clique, and on the star it freezes in
/// a mixed configuration. The pinned guarantees are (a) it never reports a
/// wrong consensus, and (b) the stall is real — the configuration stops
/// changing entirely (the paper's exactness is a safety property; lack of
/// progress under a restricted scheduler is outside its fairness model).
#[test]
fn avc_never_errs_but_stalls_on_restricted_graphs() {
    let n = 25usize;
    let avc = Avc::new(5, 1).expect("valid parameters");
    let inst = MajorityInstance::one_extra(n as u64);
    let mut stalls = 0u32;
    for sub in [Graph::star(n), Graph::cycle(n)] {
        for seed in 0..num_seeds() {
            let out = run_scheduled(
                &avc,
                inst.a(),
                inst.b(),
                GraphRestricted::new(sub.clone()),
                seed,
                200_000,
            );
            match out.verdict {
                v if v.is_consensus() => assert!(
                    v.is_correct(avc::population::Opinion::A),
                    "AVC answered wrong on a restricted graph (seed {seed})"
                ),
                _ => stalls += 1,
            }
        }
    }
    assert!(
        stalls > 0,
        "every restricted run converged — the stall finding no longer reproduces, \
         update the suite to quantify restricted-graph slowdown instead"
    );
}

/// Quantified slowdown: the cycle-restricted schedule costs the four-state
/// protocol well over 2x the uniform schedule's steps (the \[DV12] bound
/// scales with the inverse spectral gap, and the cycle's gap is `Θ(1/n²)`
/// against the clique's `Θ(1)`).
#[test]
fn cycle_restriction_slows_four_state_beyond_2x() {
    let n = 41usize;
    let inst = MajorityInstance::with_margin(n as u64, 0.5);
    let mean_steps = |restricted: bool| -> f64 {
        let mut total = 0u64;
        for seed in 0..num_seeds() {
            let out = if restricted {
                run_scheduled(
                    &FourState,
                    inst.a(),
                    inst.b(),
                    GraphRestricted::new(Graph::cycle(n)),
                    seed,
                    BUDGET * 10,
                )
            } else {
                run_scheduled(&FourState, inst.a(), inst.b(), Uniform, seed, BUDGET * 10)
            };
            assert!(out.verdict.is_consensus(), "run timed out (seed {seed})");
            total += out.steps;
        }
        total as f64 / num_seeds() as f64
    };
    let uniform = mean_steps(false);
    let cycle = mean_steps(true);
    assert!(
        cycle > 2.0 * uniform,
        "expected >2x slowdown, got cycle {cycle} vs uniform {uniform}"
    );
}

/// The scheduler seam is free on the default path: `AgentSim::new` (the
/// pre-seam constructor) and an explicit `Uniform` scheduler consume the
/// RNG stream identically and land on bit-identical trajectories.
#[test]
fn explicit_uniform_scheduler_is_bit_identical_to_default() {
    let avc = Avc::new(7, 1).expect("valid parameters");
    let config = Config::from_input(&avc, 30, 21);
    let graph = Graph::clique(51);

    let mut default_sim = AgentSim::new(&avc, config.clone(), graph.clone());
    let mut explicit_sim = AgentSim::with_scheduler(&avc, config, graph, Uniform);
    let mut rng_a = SmallRng::seed_from_u64(99);
    let mut rng_b = SmallRng::seed_from_u64(99);

    let out_a = default_sim.run_to_consensus(&mut rng_a, BUDGET);
    let out_b = explicit_sim.run_to_consensus(&mut rng_b, BUDGET);
    assert_eq!(out_a, out_b);
    assert_eq!(default_sim.counts(), explicit_sim.counts());
    assert_eq!(default_sim.steps(), explicit_sim.steps());
    // Both RNGs must sit at the same stream position afterwards.
    use rand::RngCore;
    assert_eq!(rng_a.next_u64(), rng_b.next_u64());
}
