//! The three-state approximate-majority protocol [AAE08, PVV09].

use avc_population::{Opinion, Protocol, StateId};

const X: StateId = 0; // opinion A
const Y: StateId = 1; // opinion B
const BLANK: StateId = 2;

/// The three-state *approximate* majority protocol of
/// Angluin–Aspnes–Eisenstat (also studied by Perron–Vasudevan–Vojnović as
/// three-state binary consensus, and by Dodd et al. as a model of epigenetic
/// cell memory).
///
/// Interactions are one-way — only the responder updates:
///
/// * `(x, y) → (x, blank)` and `(y, x) → (y, blank)` — a responder holding
///   the opposite opinion is knocked down to *blank*;
/// * `(x, blank) → (x, x)` and `(y, blank) → (y, y)` — a blank responder
///   adopts the initiator's opinion;
/// * everything else is silent.
///
/// The protocol converges in `O(log n)` parallel time w.h.p., but is only
/// approximate: starting from margin `ε` it converges to the *initial
/// minority* with probability `exp(−Θ(ε²n))` \[PVV09] — sizable for small
/// margins, which is what Figure 3 (right) measures.
///
/// Terminal configurations are all-`x` and all-`y`; configurations may pass
/// through output consensus while blanks remain, so convergence should be
/// measured with
/// [`ConvergenceRule::StateConsensus`](avc_population::ConvergenceRule::StateConsensus).
/// The output assigned to blank is a reporting convention only and is
/// configurable via [`ThreeState::with_blank_output`].
///
/// # Example
///
/// ```
/// use avc_population::engine::{CountSim, Simulator};
/// use avc_population::{Config, ConvergenceRule};
/// use avc_protocols::ThreeState;
/// use rand::SeedableRng;
///
/// let p = ThreeState::new();
/// let config = Config::from_input(&p, 600, 400);
/// let mut sim = CountSim::new(p, config);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
/// let out = sim.run_to_consensus_with(&mut rng, u64::MAX, ConvergenceRule::StateConsensus);
/// assert!(out.verdict.is_consensus()); // fast — but may pick the minority!
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ThreeState {
    blank_output: Opinion,
}

impl ThreeState {
    /// Creates the protocol with blank reporting output `A`.
    #[must_use]
    pub fn new() -> ThreeState {
        ThreeState {
            blank_output: Opinion::A,
        }
    }

    /// Sets the output `γ(blank)` used when reporting before termination.
    #[must_use]
    pub fn with_blank_output(self, opinion: Opinion) -> ThreeState {
        ThreeState {
            blank_output: opinion,
        }
    }

    /// The blank (undecided) state.
    #[must_use]
    pub fn blank(&self) -> StateId {
        BLANK
    }
}

impl Default for ThreeState {
    fn default() -> ThreeState {
        ThreeState::new()
    }
}

impl Protocol for ThreeState {
    fn num_states(&self) -> u32 {
        3
    }

    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        match (initiator, responder) {
            (X, Y) => (X, BLANK),
            (Y, X) => (Y, BLANK),
            (X, BLANK) => (X, X),
            (Y, BLANK) => (Y, Y),
            other => other,
        }
    }

    fn output(&self, state: StateId) -> Opinion {
        match state {
            X => Opinion::A,
            Y => Opinion::B,
            _ => self.blank_output,
        }
    }

    fn input(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => X,
            Opinion::B => Y,
        }
    }

    fn state_label(&self, state: StateId) -> String {
        match state {
            X => "x".to_string(),
            Y => "y".to_string(),
            _ => "blank".to_string(),
        }
    }

    fn name(&self) -> &str {
        "three-state"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_population::engine::{CountSim, Simulator};
    use avc_population::{Config, ConvergenceRule};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn one_way_rules() {
        let p = ThreeState::new();
        assert_eq!(p.transition(X, Y), (X, BLANK));
        assert_eq!(p.transition(Y, X), (Y, BLANK));
        assert_eq!(p.transition(X, BLANK), (X, X));
        assert_eq!(p.transition(Y, BLANK), (Y, Y));
        // Initiator is never affected.
        for a in 0..3 {
            for b in 0..3 {
                let (x, _) = p.transition(a, b);
                assert_eq!(x, a);
            }
        }
    }

    #[test]
    fn blank_initiator_is_passive() {
        let p = ThreeState::new();
        assert!(p.is_silent(BLANK, X));
        assert!(p.is_silent(BLANK, Y));
        assert!(p.is_silent(BLANK, BLANK));
    }

    #[test]
    fn asymmetric_pairs_are_order_sensitive() {
        let p = ThreeState::new();
        // (x, blank) is productive but (blank, x) is silent: the initiator
        // recruits, the responder is recruited.
        assert!(!p.is_silent(X, BLANK));
        assert!(p.is_silent(BLANK, X));
    }

    #[test]
    fn terminal_states_are_unanimous() {
        let p = ThreeState::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let config = Config::from_input(&p, 70, 30);
        let mut sim = CountSim::new(p, config);
        let out = sim.run_to_consensus_with(&mut rng, u64::MAX, ConvergenceRule::StateConsensus);
        assert!(out.verdict.is_consensus());
        let state = sim.unanimous_state().unwrap();
        assert!(state == X || state == Y, "terminal state must be x or y");
    }

    #[test]
    fn errs_with_nonzero_probability_on_balanced_inputs() {
        // With a one-agent advantage the error probability is near 1/2; over
        // 60 trials we should observe both outcomes.
        let p = ThreeState::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut wins_a = 0;
        let mut wins_b = 0;
        for _ in 0..60 {
            let config = Config::from_input(&p, 26, 25);
            let mut sim = CountSim::new(p, config);
            let out =
                sim.run_to_consensus_with(&mut rng, u64::MAX, ConvergenceRule::StateConsensus);
            match out.verdict.opinion().unwrap() {
                Opinion::A => wins_a += 1,
                Opinion::B => wins_b += 1,
            }
        }
        assert!(wins_a > 0 && wins_b > 0, "A={wins_a}, B={wins_b}");
    }

    #[test]
    fn blank_output_is_configurable() {
        let p = ThreeState::new().with_blank_output(Opinion::B);
        assert_eq!(p.output(BLANK), Opinion::B);
        assert_eq!(ThreeState::new().output(BLANK), Opinion::A);
    }

    #[test]
    fn labels() {
        let p = ThreeState::new();
        assert_eq!(p.state_label(X), "x");
        assert_eq!(p.state_label(Y), "y");
        assert_eq!(p.state_label(BLANK), "blank");
        assert_eq!(p.blank(), BLANK);
    }
}
