//! Kill-and-resume integrity: `SIGKILL` an `avc sweep` mid-cell, resume it
//! at a *different* parallelism, and require the exported CSVs to be
//! byte-identical to an uninterrupted reference run.
//!
//! This is the crash-safety contract end to end: the store loses at most
//! the in-flight cell, the resumed sweep recomputes exactly the missing
//! cells, and per-cell seeding makes the worker count irrelevant.

use avc_store::store::Store;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Flags chosen so the sweep has three cells of roughly 0.4s / 0.5s / 4s
/// on one core: the first record lands fast and the kill window after it
/// is wide.
const SWEEP_FLAGS: [&str; 4] = ["--ns", "5001", "--runs", "80"];
const TOTAL_CELLS: usize = 3;

fn avc(dir: &Path, args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_avc"));
    cmd.args(args)
        .args(SWEEP_FLAGS)
        .args(["--out", dir.to_str().expect("utf-8 temp path")]);
    cmd
}

fn read_csvs(dir: &Path) -> (Vec<u8>, Vec<u8>) {
    let read = |stem: &str| {
        let path = dir.join(format!("{stem}.csv"));
        std::fs::read(&path).unwrap_or_else(|e| panic!("missing {}: {e}", path.display()))
    };
    (read("fig3_time"), read("fig3_error"))
}

fn record_count(dir: &Path) -> usize {
    std::fs::read_to_string(dir.join("store/records.jsonl"))
        .map(|text| text.lines().filter(|l| !l.trim().is_empty()).count())
        .unwrap_or(0)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("avc-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn killed_sweep_resumes_to_byte_identical_export() {
    // Uninterrupted reference, serial workers.
    let reference = temp_dir("reference");
    let status = avc(&reference, &["sweep", "fig3", "--serial"])
        .status()
        .expect("spawn avc");
    assert!(status.success(), "reference sweep failed");
    let status = avc(&reference, &["export", "fig3"])
        .stdout(Stdio::null())
        .status()
        .expect("spawn avc");
    assert!(status.success(), "reference export failed");
    let (ref_time, ref_error) = read_csvs(&reference);

    // Interrupted run: SIGKILL once the first cell is durable and the next
    // one is (very likely) in flight.
    let victim = temp_dir("victim");
    let mut child = avc(&victim, &["sweep", "fig3", "--serial"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn avc");
    let deadline = Instant::now() + Duration::from_secs(60);
    while record_count(&victim) == 0 {
        assert!(Instant::now() < deadline, "no cell completed within 60s");
        if child.try_wait().expect("poll child").is_some() {
            panic!("sweep finished before any kill could land");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(200));
    child.kill().expect("SIGKILL the sweep"); // SIGKILL on unix: no cleanup runs
    let _ = child.wait();

    // The kill can leave an unterminated final line in the telemetry
    // journal; make that certain by appending one ourselves. The resumed
    // sweep must drop exactly this fragment and continue the stream.
    let journal_path = victim.join("store/telemetry.jsonl");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .expect("open journal for torn-tail injection");
        f.write_all(b"{\"hash\":\"torn").expect("inject torn tail");
    }

    // The store must hold a durable, loadable prefix of the grid.
    let survived = record_count(&victim);
    assert!(
        survived < TOTAL_CELLS,
        "kill landed after the sweep finished; widen the sweep to keep this test honest"
    );
    let store = Store::open(victim.join("store")).expect("killed store still parses");
    assert_eq!(store.len(), survived);

    // Export must refuse while cells are missing.
    let output = avc(&victim, &["export", "fig3"])
        .output()
        .expect("spawn avc");
    assert!(
        !output.status.success(),
        "export of a partial store must fail"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("missing from the store"),
        "unexpected export error: {stderr}"
    );

    // Resume at a different worker count; only missing cells may run.
    let output = avc(&victim, &["sweep", "fig3", "--threads", "2"])
        .output()
        .expect("spawn avc");
    assert!(output.status.success(), "resume failed");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        stderr.matches("— cached").count(),
        survived,
        "resume recomputed a cell that was already durable: {stderr}"
    );

    let status = avc(&victim, &["export", "fig3"])
        .stdout(Stdio::null())
        .status()
        .expect("spawn avc");
    assert!(status.success(), "post-resume export failed");
    let (victim_time, victim_error) = read_csvs(&victim);
    assert_eq!(victim_time, ref_time, "fig3_time.csv differs after resume");
    assert_eq!(
        victim_error, ref_error,
        "fig3_error.csv differs after resume"
    );

    // Telemetry stream self-consistency after the crash + resume: the
    // injected torn tail is gone, every surviving line is a complete JSON
    // journal entry, and every durable record's hash is journaled (the
    // journal line lands before the store append, so a durable record
    // implies its line survived).
    let journal = std::fs::read_to_string(&journal_path).expect("journal readable after resume");
    assert!(
        journal.ends_with('\n'),
        "resumed journal left an unterminated tail"
    );
    let mut journaled = std::collections::BTreeSet::new();
    for line in journal.lines() {
        let parsed = avc_store::json::Json::parse(line)
            .unwrap_or_else(|e| panic!("torn or corrupt journal line `{line}`: {e}"));
        let hash = parsed
            .get("hash")
            .and_then(avc_store::json::Json::as_str)
            .expect("journal line missing hash");
        assert_ne!(hash, "torn", "injected torn fragment survived the resume");
        assert!(parsed.get("telemetry").is_some(), "line missing telemetry");
        journaled.insert(hash.to_string());
    }
    let store = Store::open(victim.join("store")).expect("resumed store parses");
    for record in store.iter_latest() {
        let hash = record.manifest.hash();
        assert!(
            journaled.contains(&hash),
            "durable record {hash} has no telemetry journal line"
        );
    }

    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&victim);
}

/// As above for the `robustness` sweep, whose grid includes fault-config
/// cells (crash/revive and corruption plans) and adversarial-scheduler
/// cells: killing mid-grid and resuming must recompute exactly the missing
/// cells — faulted ones included — and export byte-identically. This holds
/// because fault injection draws no randomness and cell seeds derive from
/// the (protocol, scenario) index alone.
#[test]
fn killed_robustness_sweep_resumes_to_byte_identical_export() {
    const ROBUSTNESS_CELLS: usize = 16;
    let avc = |dir: &Path, args: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_avc"));
        cmd.args(args)
            .args(["--quick", "--out", dir.to_str().expect("utf-8 temp path")]);
        cmd
    };
    let read_csv = |dir: &Path| {
        let path = dir.join("robustness.csv");
        std::fs::read(&path).unwrap_or_else(|e| panic!("missing {}: {e}", path.display()))
    };

    // Uninterrupted reference.
    let reference = temp_dir("robustness-reference");
    let status = avc(&reference, &["sweep", "robustness", "--serial"])
        .status()
        .expect("spawn avc");
    assert!(status.success(), "reference sweep failed");
    let status = avc(&reference, &["export", "robustness"])
        .stdout(Stdio::null())
        .status()
        .expect("spawn avc");
    assert!(status.success(), "reference export failed");
    let ref_csv = read_csv(&reference);

    // Interrupted run: SIGKILL once the first cell is durable.
    let victim = temp_dir("robustness-victim");
    let mut child = avc(&victim, &["sweep", "robustness", "--serial"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn avc");
    let deadline = Instant::now() + Duration::from_secs(60);
    while record_count(&victim) == 0 {
        assert!(Instant::now() < deadline, "no cell completed within 60s");
        if child.try_wait().expect("poll child").is_some() {
            panic!("sweep finished before any kill could land");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL the sweep");
    let _ = child.wait();

    let survived = record_count(&victim);
    assert!(
        survived < ROBUSTNESS_CELLS,
        "kill landed after the sweep finished; widen the sweep to keep this test honest"
    );
    let store = Store::open(victim.join("store")).expect("killed store still parses");
    assert_eq!(store.len(), survived);

    // Resume at a different worker count; only missing cells may run. The
    // grid ends with the four_state fault-config cells, so the recomputed
    // tail always exercises at least one faulted cell.
    let output = avc(&victim, &["sweep", "robustness", "--threads", "2"])
        .output()
        .expect("spawn avc");
    assert!(output.status.success(), "resume failed");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        stderr.matches("— cached").count(),
        survived,
        "resume recomputed a cell that was already durable: {stderr}"
    );

    let status = avc(&victim, &["export", "robustness"])
        .stdout(Stdio::null())
        .status()
        .expect("spawn avc");
    assert!(status.success(), "post-resume export failed");
    assert_eq!(
        read_csv(&victim),
        ref_csv,
        "robustness.csv differs after resume"
    );

    // Every durable record of the resumed store — survivors and recomputed
    // cells alike — embeds its declarative scenario: the manifest alone is
    // a re-run recipe (`avc run` executes the embedded JSON directly), and
    // the stored hash matches a reparse of the stored form.
    let store = Store::open(victim.join("store")).expect("resumed store parses");
    assert_eq!(store.len(), ROBUSTNESS_CELLS);
    for record in store.iter_latest() {
        let text = record
            .manifest
            .get("scenario")
            .expect("robustness manifest lacks an embedded scenario");
        let scenario = avc_population::Scenario::parse(text)
            .unwrap_or_else(|e| panic!("embedded scenario does not parse: {e}"));
        assert_eq!(
            record.manifest.get("scenario_hash"),
            Some(scenario.hash().as_str()),
            "scenario_hash param disagrees with the embedded scenario"
        );
    }

    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&victim);
}
