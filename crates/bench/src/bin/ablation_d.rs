//! Regenerates the **`d` ablation** from the §6 discussion: splitting a
//! fixed state budget between the weight range `m` and the level count `d`
//! barely changes the running time, supporting the paper's observation that
//! `d = 1` suffices in practice.
//!
//! Alias for `avc sweep ablation_d` followed by `avc export ablation_d`
//! (flags: `--quick --n --budget --runs --seed --serial/--threads
//! --progress --out`), with checkpoint/resume through the result store.

fn main() {
    avc_store::cli::legacy("ablation_d");
}
