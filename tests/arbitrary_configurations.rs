//! Lemma A.1: from an *arbitrary* starting configuration with nonzero
//! total value `S`, AVC converges with probability 1 to the sign of `S`,
//! and the sign is stable afterwards. These tests start from adversarial,
//! non-input configurations — a stronger property than input-correctness.

use avc::population::engine::{CountSim, Simulator};
use avc::population::rngutil::SeedSequence;
use avc::population::{Config, Opinion, Protocol, StateId};
use avc::protocols::{Avc, Sign};
use avc::verify::reach::ReachabilityGraph;
use rand::Rng;

/// A random configuration over AVC's state space with `n` agents.
fn random_config(avc: &Avc, n: u64, rng: &mut impl Rng) -> Config {
    let s = avc.num_states() as usize;
    let mut counts = vec![0u64; s];
    for _ in 0..n {
        counts[rng.gen_range(0..s)] += 1;
    }
    Config::from_counts(counts)
}

#[test]
fn random_starts_converge_to_the_sign_of_the_total_value() {
    let seeds = SeedSequence::new(42);
    for (m, d) in [(5u64, 1u32), (9, 2), (15, 3)] {
        let avc = Avc::new(m, d).expect("valid parameters");
        let mut tested = 0;
        let mut trial = 0u64;
        while tested < 15 {
            let mut rng = seeds.child(m * 10 + d as u64).rng_for(trial);
            trial += 1;
            let config = random_config(&avc, 60, &mut rng);
            let total = avc.total_value(config.as_slice());
            if total == 0 {
                continue; // Lemma A.1 assumes S ≠ 0
            }
            let expected = if total > 0 { Opinion::A } else { Opinion::B };
            let mut sim = CountSim::new(avc.clone(), config);
            let out = sim.run_to_consensus(&mut rng, u64::MAX);
            assert_eq!(
                out.verdict.opinion(),
                Some(expected),
                "m={m}, d={d}, trial {trial}: S={total}"
            );
            tested += 1;
        }
    }
}

#[test]
fn sign_stability_after_convergence() {
    // "In all later configurations no node can ever have a different sign":
    // keep simulating past convergence and observe the sign histogram.
    let seeds = SeedSequence::new(7);
    let avc = Avc::new(7, 1).expect("valid parameters");
    let mut rng = seeds.rng_for(0);
    let config = Config::from_input(&avc, 25, 15);
    let mut sim = CountSim::new(avc.clone(), config);
    let out = sim.run_to_consensus(&mut rng, u64::MAX);
    assert_eq!(out.verdict.opinion(), Some(Opinion::A));
    for _ in 0..20_000 {
        sim.advance(&mut rng);
        assert_eq!(sim.count_a(), 40, "an agent flipped sign after convergence");
    }
}

#[test]
fn exhaustive_sign_safety_from_arbitrary_tiny_configurations() {
    // Model-checking version: from EVERY configuration of 4 agents over
    // AVC(3,1)'s state space with S > 0, no reachable configuration is
    // all-negative (the safety half of Lemma A.1).
    let avc = Avc::new(3, 1).expect("valid parameters");
    let s = avc.num_states();
    let n = 4u64;

    // Enumerate all multisets of size n over s states.
    fn enumerate(s: usize, n: u64) -> Vec<Vec<u64>> {
        fn rec(slots: usize, remaining: u64, prefix: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
            if slots == 1 {
                let mut full = prefix.clone();
                full.push(remaining);
                out.push(full);
                return;
            }
            for take in 0..=remaining {
                prefix.push(take);
                rec(slots - 1, remaining - take, prefix, out);
                prefix.pop();
            }
        }
        let mut out = Vec::new();
        rec(s, n, &mut Vec::new(), &mut out);
        out
    }

    let mut checked = 0;
    for counts in enumerate(s as usize, n) {
        let total = avc.total_value(&counts);
        if total <= 0 {
            continue;
        }
        let config = Config::from_counts(counts);
        let graph = ReachabilityGraph::explore(&avc, &config, 500_000).expect("tiny space");
        for id in 0..graph.len() {
            let all_negative =
                graph.config(id).iter().enumerate().all(|(state, &c)| {
                    c == 0 || avc.decode(state as StateId).sign() == Sign::Minus
                });
            assert!(
                !all_negative,
                "reached an all-negative configuration from S = {total} > 0"
            );
        }
        checked += 1;
    }
    assert!(
        checked > 40,
        "expected many positive-sum configurations, got {checked}"
    );
}
