//! Fault injection: perturbing a running simulation at scheduled steps.
//!
//! The paper's exactness guarantees assume a well-behaved population. This
//! module models the standard ways real agents misbehave, so the stress
//! suite can probe how each protocol degrades:
//!
//! * [`Fault::Corrupt`] — transient state corruption in count space: move
//!   `agents` agents from one state to another. Meaningful on every engine
//!   (count-based engines only know the multiset).
//! * [`Fault::BitFlip`] — flip one bit of one agent's state id (a
//!   single-event-upset model). A flip that would leave the protocol's
//!   state space is a no-op, mirroring hardware whose registers are range
//!   checked on read.
//! * [`Fault::Crash`] / [`Fault::Revive`] — a crashed agent keeps its
//!   state and stays counted, but every interaction scheduled onto it is
//!   burned (the step elapses, nothing happens) until it is revived.
//! * [`Fault::StickAt`] / [`Fault::Unstick`] — a stuck agent still
//!   interacts (its partner updates normally) but its own state never
//!   changes: a Byzantine-lite agent that answers but never learns.
//!
//! Agent-addressed faults require per-agent identity, so they are only
//! supported by [`AgentSim`](crate::engine::AgentSim); count-based engines
//! report [`FaultError::Unsupported`]. Faults are injected between driver
//! chunks via [`Driver::run_faulted`](crate::driver::Driver::run_faulted)
//! and a [`FaultPlan`], which keeps injection off every engine's hot path
//! and leaves the RNG stream untouched: a faulted run draws exactly the
//! randomness a fault-free run of the same length would.

use crate::protocol::StateId;
use std::fmt;

/// One perturbation applied to a simulation at a scheduled step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Move up to `agents` agents from state `from` to state `to`
    /// (clamped to the current count of `from`).
    Corrupt {
        /// Source state.
        from: StateId,
        /// Destination state.
        to: StateId,
        /// Number of agents to move (clamped).
        agents: u64,
    },
    /// Flip bit `bit` of agent `agent`'s state id; a no-op if the flipped
    /// id is outside the protocol's state space.
    BitFlip {
        /// Target agent.
        agent: usize,
        /// Bit index to flip (0 = least significant).
        bit: u32,
    },
    /// Freeze `agent`: it keeps its state and stays counted, but every
    /// step that schedules it is burned without an interaction.
    Crash {
        /// Target agent.
        agent: usize,
    },
    /// Undo a [`Fault::Crash`].
    Revive {
        /// Target agent.
        agent: usize,
    },
    /// Make `agent` stuck-at: it interacts (partners update) but its own
    /// state never changes.
    StickAt {
        /// Target agent.
        agent: usize,
    },
    /// Undo a [`Fault::StickAt`].
    Unstick {
        /// Target agent.
        agent: usize,
    },
}

impl Fault {
    /// Whether this fault addresses an individual agent (and therefore
    /// needs an engine with per-agent identity).
    #[must_use]
    pub fn is_agent_addressed(&self) -> bool {
        !matches!(self, Fault::Corrupt { .. })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Corrupt { from, to, agents } => {
                write!(f, "corrupt({agents}: {from}->{to})")
            }
            Fault::BitFlip { agent, bit } => write!(f, "bitflip(agent {agent}, bit {bit})"),
            Fault::Crash { agent } => write!(f, "crash(agent {agent})"),
            Fault::Revive { agent } => write!(f, "revive(agent {agent})"),
            Fault::StickAt { agent } => write!(f, "stick(agent {agent})"),
            Fault::Unstick { agent } => write!(f, "unstick(agent {agent})"),
        }
    }
}

/// Why a [`Simulator::inject`](crate::engine::Simulator::inject) call was
/// rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// The engine has no mechanism for this fault class (agent-addressed
    /// faults on an engine without per-agent identity).
    Unsupported {
        /// Name of the rejecting engine.
        engine: &'static str,
        /// The rejected fault.
        fault: Fault,
    },
    /// The fault addresses a state or agent outside the simulation.
    OutOfRange {
        /// Human-readable description of the bad address.
        detail: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Unsupported { engine, fault } => {
                write!(
                    f,
                    "{engine} does not support {fault} (no per-agent identity)"
                )
            }
            FaultError::OutOfRange { detail } => write!(f, "fault out of range: {detail}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// A fault scheduled for a step.
///
/// The driver applies it at the first *reachable* step at or after
/// `at_step` (batching engines may land past the exact boundary, like
/// observer cadences).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Earliest scheduler step at which the fault fires.
    pub at_step: u64,
    /// The perturbation to apply.
    pub fault: Fault,
}

/// An ordered schedule of faults consumed by
/// [`Driver::run_faulted`](crate::driver::Driver::run_faulted).
///
/// Events are kept sorted by step (stable for equal steps, so faults
/// scheduled at the same step fire in insertion order — a `Crash` then a
/// `Revive` at one step net to a revived agent).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// Index of the first not-yet-applied event.
    cursor: usize,
}

impl FaultPlan {
    /// An empty plan (a faulted run over it is a fault-free run).
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builds a plan from events in any order (stable-sorted by step).
    #[must_use]
    pub fn from_events(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at_step);
        FaultPlan { events, cursor: 0 }
    }

    /// Adds a fault scheduled at `at_step` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the plan has already started being consumed.
    #[must_use]
    pub fn at(mut self, at_step: u64, fault: Fault) -> FaultPlan {
        assert_eq!(self.cursor, 0, "cannot extend a partially-consumed plan");
        self.events.push(FaultEvent { at_step, fault });
        self.events.sort_by_key(|e| e.at_step);
        self
    }

    /// The step of the next pending fault, if any.
    #[must_use]
    pub fn next_step(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|e| e.at_step)
    }

    /// Pops every pending event with `at_step ≤ now`, in schedule order.
    pub fn take_due(&mut self, now: u64) -> Vec<FaultEvent> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at_step <= now {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    /// Number of not-yet-applied events.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// All scheduled events, applied or not, in schedule order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Rewinds the plan so it can drive another run.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_orders_and_consumes_events() {
        let mut plan = FaultPlan::new()
            .at(100, Fault::Crash { agent: 3 })
            .at(10, Fault::Crash { agent: 1 })
            .at(10, Fault::Revive { agent: 1 });
        assert_eq!(plan.next_step(), Some(10));
        assert_eq!(plan.remaining(), 3);

        let due = plan.take_due(9);
        assert!(due.is_empty());

        // Equal-step events come out in insertion order (crash before revive).
        let due = plan.take_due(10);
        assert_eq!(
            due.iter().map(|e| e.fault).collect::<Vec<_>>(),
            vec![Fault::Crash { agent: 1 }, Fault::Revive { agent: 1 }]
        );
        assert_eq!(plan.next_step(), Some(100));

        let due = plan.take_due(u64::MAX);
        assert_eq!(due.len(), 1);
        assert_eq!(plan.remaining(), 0);
        assert_eq!(plan.next_step(), None);

        plan.reset();
        assert_eq!(plan.remaining(), 3);
    }

    #[test]
    fn display_is_compact() {
        let fault = Fault::Corrupt {
            from: 0,
            to: 1,
            agents: 5,
        };
        assert_eq!(fault.to_string(), "corrupt(5: 0->1)");
        assert!(!fault.is_agent_addressed());
        assert!(Fault::Crash { agent: 2 }.is_agent_addressed());
    }
}
