//! The metric cells: counters, gauges, and log₂-bucket histograms.
//!
//! Every cell is a thin wrapper over `AtomicU64` with `Relaxed` ordering —
//! recording is a single uncontended `fetch_add` on the hot path, and the
//! cells are freely shareable across trial workers without locks. Each cell
//! has a plain (non-atomic) *snapshot* form that merges associatively and
//! commutatively, so per-worker telemetry folds into one total in any
//! order with the same result.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one per possible `u64` bit length, plus a
/// dedicated zero bucket.
pub const NUM_BUCKETS: usize = 65;

/// The bucket index a value lands in: its bit length (`0` for `0`, else
/// `64 − leading_zeros`). Bucket `k ≥ 1` therefore covers `[2^(k−1), 2^k)`.
///
/// # Example
///
/// ```
/// use avc_telemetry::metrics::bucket_index;
/// assert_eq!(bucket_index(0), 0);
/// assert_eq!(bucket_index(1), 1);
/// assert_eq!(bucket_index(2), 2);
/// assert_eq!(bucket_index(3), 2);
/// assert_eq!(bucket_index(4), 3);
/// assert_eq!(bucket_index(u64::MAX), 64);
/// ```
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The inclusive `[lo, hi]` value range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= NUM_BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket {index} out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        k => (1 << (k - 1), (1 << k) - 1),
    }
}

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-written-value cell (merged across workers by maximum, the only
/// order-free combination).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the value to at least `value`.
    #[inline]
    pub fn raise(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log₂-scale histogram over `u64` with lock-free recording.
///
/// Bucket `k` counts values of bit length `k` (see [`bucket_index`]), so 65
/// buckets cover the full `u64` range with one cache-cheap `leading_zeros`
/// per record and no configuration. Count and sum ride along for exact
/// means.
///
/// # Example
///
/// ```
/// use avc_telemetry::LogHistogram;
/// let h = LogHistogram::new();
/// for v in [0, 1, 5, 5, 900] {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 5);
/// assert_eq!(s.sum, 911);
/// assert_eq!(s.buckets[0], 1); // the zero
/// assert_eq!(s.buckets[3], 2); // the fives: [4, 8)
/// ```
#[derive(Debug)]
pub struct LogHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LogHistogram {
        LogHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A plain copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// The plain, mergeable form of a [`LogHistogram`] (also usable directly as
/// a single-threaded histogram via [`HistogramSnapshot::record`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow, matching the
    /// atomic `fetch_add`; step counts fit comfortably in practice).
    pub sum: u64,
    /// Per-bucket observation counts, indexed by [`bucket_index`].
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Whether no observation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one observation (non-atomic counterpart of
    /// [`LogHistogram::record`], for single-owner sinks).
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Folds another snapshot in. Associative and commutative: every field
    /// is a sum.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Exact mean of the observations (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`None` when empty). Resolution is one bucket — a factor of two —
    /// which is the deal log-scale histograms offer.
    #[must_use]
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bounds(i).1);
            }
        }
        Some(u64::MAX)
    }

    /// `(bucket_index, count)` pairs of the nonzero buckets, in index order
    /// (the sparse wire form).
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        let mut expected_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} lower bound");
            assert!(lo <= hi);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "last bucket ends at u64::MAX");
    }

    #[test]
    fn values_land_inside_their_bucket_bounds() {
        for v in [0u64, 1, 2, 3, 4, 63, 64, 1_000_000, u64::MAX / 2, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.raise(3);
        assert_eq!(g.get(), 7);
        g.raise(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn atomic_and_plain_histograms_agree() {
        let atomic = LogHistogram::new();
        let mut plain = HistogramSnapshot::new();
        for v in [0u64, 1, 7, 8, 1 << 40, u64::MAX] {
            atomic.record(v);
            plain.record(v);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn quantile_bound_tracks_bucket_edges() {
        let mut h = HistogramSnapshot::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 15]
        }
        h.record(1 << 20);
        assert_eq!(h.quantile_bound(0.5), Some(15));
        assert_eq!(h.quantile_bound(1.0), Some((1 << 21) - 1));
        assert_eq!(HistogramSnapshot::new().quantile_bound(0.5), None);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LogHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for v in 0..1_000u64 {
                        h.record(v);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4_000);
        assert_eq!(s.sum, 4 * (0..1_000).sum::<u64>());
    }
}
