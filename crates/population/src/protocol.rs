//! The population-protocol state machine abstraction.

use std::fmt;

/// Identifier of a protocol state.
///
/// States are dense indices `0..num_states`, so configurations can be stored
/// as flat count vectors. `u32` accommodates the largest state spaces used in
/// the paper's evaluation (the "n-state" AVC instance at `n = 100 001`).
pub type StateId = u32;

/// One of the two opinions in a binary consensus / majority task.
///
/// By the paper's convention, `A` is the opinion whose initial majority must
/// map to output `1` and `B` to output `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opinion {
    /// The first input opinion (paper output `1`, AVC sign `+`).
    A,
    /// The second input opinion (paper output `0`, AVC sign `−`).
    B,
}

impl Opinion {
    /// The opposite opinion.
    ///
    /// ```
    /// use avc_population::Opinion;
    /// assert_eq!(Opinion::A.flip(), Opinion::B);
    /// ```
    #[must_use]
    pub fn flip(self) -> Opinion {
        match self {
            Opinion::A => Opinion::B,
            Opinion::B => Opinion::A,
        }
    }

    /// The paper's output value: `1` for `A`, `0` for `B`.
    #[must_use]
    pub fn as_output_bit(self) -> u8 {
        match self {
            Opinion::A => 1,
            Opinion::B => 0,
        }
    }
}

impl fmt::Display for Opinion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opinion::A => write!(f, "A"),
            Opinion::B => write!(f, "B"),
        }
    }
}

/// A deterministic population protocol.
///
/// A protocol is a finite state machine `(Q, δ, γ)` together with an input
/// encoding: agents start in `input(A)` or `input(B)` and update on pairwise
/// interactions via `transition`. All randomness lives in the scheduler; the
/// transition function itself is deterministic.
///
/// Interactions are *ordered*: the first argument is the initiator, the
/// second the responder. Symmetric (two-way) protocols simply ignore the
/// order. The asymmetric three-state protocol of \[AAE08] uses it.
///
/// # Contract
///
/// * `transition` must be total over `0..num_states × 0..num_states` and
///   closed (outputs in `0..num_states`). The engines debug-assert closure.
/// * `output` must be total over `0..num_states`.
///
/// # Example
///
/// See the [crate-level example](crate) for a two-state voter protocol.
pub trait Protocol {
    /// Number of states `|Q|`; states are `0..num_states()`.
    fn num_states(&self) -> u32;

    /// The transition function `δ(initiator, responder)`.
    ///
    /// Returns the pair of successor states `(initiator', responder')`.
    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId);

    /// The output function `γ`.
    fn output(&self, state: StateId) -> Opinion;

    /// The initial state encoding an input opinion.
    fn input(&self, opinion: Opinion) -> StateId;

    /// Human-readable label for a state, used in traces and tables.
    fn state_label(&self, state: StateId) -> String {
        format!("q{state}")
    }

    /// Short protocol name for reports (e.g. `"avc(m=15,d=1)"`).
    fn name(&self) -> &str;

    /// Whether the interaction of the ordered state pair `(a, b)` leaves the
    /// configuration unchanged (as a multiset of states).
    ///
    /// A pair is *silent* when `δ(a, b)` equals `(a, b)` or `(b, a)`;
    /// swapping two agents' states does not change the configuration. The
    /// [`JumpSim`](crate::engine::JumpSim) engine skips silent steps in
    /// batches; this default implementation is correct for every protocol,
    /// and implementations may override it with a cheaper direct check.
    fn is_silent(&self, a: StateId, b: StateId) -> bool {
        let (x, y) = self.transition(a, b);
        (x == a && y == b) || (x == b && y == a)
    }

    /// Whether a configuration, given as per-state agent counts, is *silent*:
    /// no ordered pair of distinct agents can change it.
    ///
    /// This default brute-forces every ordered pair of live species in
    /// `O(live²)` calls to [`Protocol::is_silent`] (a self-pair `(q, q)`
    /// counts only when at least two agents occupy `q`).
    /// [`Cached`](crate::cached::Cached) overrides it with a scan of its
    /// precomputed productive-pair bitset.
    fn config_silent(&self, counts: &[u64]) -> bool {
        let live: Vec<StateId> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(q, _)| q as StateId)
            .collect();
        for &a in &live {
            for &b in &live {
                if a == b && counts[a as usize] < 2 {
                    continue;
                }
                if !self.is_silent(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

impl<P: Protocol + ?Sized> Protocol for &P {
    fn num_states(&self) -> u32 {
        (**self).num_states()
    }
    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        (**self).transition(initiator, responder)
    }
    fn output(&self, state: StateId) -> Opinion {
        (**self).output(state)
    }
    fn input(&self, opinion: Opinion) -> StateId {
        (**self).input(opinion)
    }
    fn state_label(&self, state: StateId) -> String {
        (**self).state_label(state)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn is_silent(&self, a: StateId, b: StateId) -> bool {
        (**self).is_silent(a, b)
    }
    fn config_silent(&self, counts: &[u64]) -> bool {
        (**self).config_silent(counts)
    }
}

/// Tiny protocols used by unit tests across this crate.
///
/// Not part of the public API; real protocols live in the `avc-protocols`
/// crate.
#[doc(hidden)]
pub mod tests_support {
    use super::{Opinion, Protocol, StateId};

    /// Two-state voter model: the responder adopts the initiator's state.
    #[derive(Debug, Clone, Copy)]
    pub struct Voter;

    impl Protocol for Voter {
        fn num_states(&self) -> u32 {
            2
        }
        fn transition(&self, initiator: StateId, _responder: StateId) -> (StateId, StateId) {
            (initiator, initiator)
        }
        fn output(&self, state: StateId) -> Opinion {
            if state == 0 {
                Opinion::A
            } else {
                Opinion::B
            }
        }
        fn input(&self, opinion: Opinion) -> StateId {
            match opinion {
                Opinion::A => 0,
                Opinion::B => 1,
            }
        }
        fn name(&self) -> &str {
            "voter-test"
        }
    }

    /// Annihilation: opposite strong states cancel to a common dead state.
    ///
    /// States: 0 = +1 (A), 1 = −1 (B), 2 = dead (outputs A).
    /// `(+1, −1) → (dead, dead)`; everything else is silent. Useful for
    /// engines tests because the number of productive interactions is
    /// exactly `min(a, b)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Annihilate;

    impl Protocol for Annihilate {
        fn num_states(&self) -> u32 {
            3
        }
        fn transition(&self, a: StateId, b: StateId) -> (StateId, StateId) {
            if (a == 0 && b == 1) || (a == 1 && b == 0) {
                (2, 2)
            } else {
                (a, b)
            }
        }
        fn output(&self, state: StateId) -> Opinion {
            if state == 1 {
                Opinion::B
            } else {
                Opinion::A
            }
        }
        fn input(&self, opinion: Opinion) -> StateId {
            match opinion {
                Opinion::A => 0,
                Opinion::B => 1,
            }
        }
        fn name(&self) -> &str {
            "annihilate-test"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Swap;
    impl Protocol for Swap {
        fn num_states(&self) -> u32 {
            2
        }
        fn transition(&self, a: StateId, b: StateId) -> (StateId, StateId) {
            (b, a)
        }
        fn output(&self, state: StateId) -> Opinion {
            if state == 0 {
                Opinion::A
            } else {
                Opinion::B
            }
        }
        fn input(&self, opinion: Opinion) -> StateId {
            match opinion {
                Opinion::A => 0,
                Opinion::B => 1,
            }
        }
        fn name(&self) -> &str {
            "swap"
        }
    }

    #[test]
    fn opinion_flip_is_involutive() {
        assert_eq!(Opinion::A.flip().flip(), Opinion::A);
        assert_eq!(Opinion::B.flip().flip(), Opinion::B);
    }

    #[test]
    fn opinion_output_bits_follow_paper_convention() {
        assert_eq!(Opinion::A.as_output_bit(), 1);
        assert_eq!(Opinion::B.as_output_bit(), 0);
    }

    #[test]
    fn swapping_transitions_are_silent() {
        // δ(0,1) = (1,0): a pure swap leaves the configuration unchanged.
        assert!(Swap.is_silent(0, 1));
        assert!(Swap.is_silent(1, 0));
        assert!(Swap.is_silent(0, 0));
    }

    #[test]
    fn protocol_impl_for_reference_delegates() {
        let p = &Swap;
        assert_eq!(Protocol::num_states(&p), 2);
        assert_eq!(Protocol::transition(&p, 0, 1), (1, 0));
        assert_eq!(Protocol::output(&p, 0), Opinion::A);
        assert_eq!(Protocol::input(&p, Opinion::B), 1);
        assert_eq!(Protocol::name(&p), "swap");
        assert!(Protocol::is_silent(&p, 0, 1));
        assert_eq!(Protocol::state_label(&p, 3), "q3");
    }
}
