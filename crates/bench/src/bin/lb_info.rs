//! Empirically validates **Theorem C.1 / Claim C.2**: the knowledge set
//! needs `≈ n·ln n` interactions (`Θ(log n)` parallel time) to cover the
//! population, so no exact-majority protocol beats `Ω(log n)`.
//!
//! Usage: `cargo run --release -p avc-bench --bin lb_info [--quick]
//! [--runs N] [--seed N] [--serial | --threads N] [--progress] [--out DIR]`

use avc_analysis::cli::Args;
use avc_analysis::experiments::report;
use avc_analysis::harness::run_indexed_with_stats;
use avc_analysis::stats::{loglog_slope, Summary};
use avc_analysis::table::{fmt_num, Table};
use avc_population::rngutil::SeedSequence;
use avc_verify::knowledge::{cover_steps, expected_cover_steps};

fn main() {
    let args = Args::from_env();
    let ns: Vec<u64> = if args.flag("quick") {
        vec![100, 1_000, 10_000]
    } else {
        vec![100, 1_000, 10_000, 100_000, 1_000_000]
    };
    let ns = args.get_u64_list("ns", &ns);
    let runs = args.get_u64("runs", 101);
    let seeds = SeedSequence::new(args.get_u64("seed", 12));

    avc_bench::banner(
        "Lower bound LB-2 (Theorem C.1)",
        &format!("knowledge-set cover time, n in {ns:?}, {runs} runs per n"),
    );

    let mut table = Table::new(
        "Information-propagation lower bound: steps until |K_t| = n",
        [
            "n",
            "mean_steps",
            "expected_steps_closed_form",
            "mean_parallel_time",
            "ln_n",
            "runs",
        ],
    );
    let mut lns = Vec::new();
    let mut times = Vec::new();
    let stats = avc_bench::collector(&args);
    for (i, &n) in ns.iter().enumerate() {
        let cell_seeds = seeds.child(i as u64);
        let (samples, batch) = run_indexed_with_stats(runs, args.parallelism(), |t| {
            let mut rng = cell_seeds.rng_for(t);
            let steps = cover_steps(n, &mut rng);
            (steps as f64, steps)
        });
        stats.record(&batch);
        let summary = Summary::from_samples(&samples);
        let parallel = summary.mean / n as f64;
        lns.push((n as f64).ln());
        times.push(parallel);
        table.push_row([
            n.to_string(),
            fmt_num(summary.mean),
            fmt_num(expected_cover_steps(n)),
            fmt_num(parallel),
            fmt_num((n as f64).ln()),
            runs.to_string(),
        ]);
    }
    let out = avc_bench::out_dir(&args);
    report(&table, &out, "lb_info");
    let slope = loglog_slope(&lns, &times);
    println!(
        "log-log slope of parallel cover time vs ln n: {slope:.3} (theory: linear in ln n ⇒ 1)"
    );
    println!("throughput: {}", stats.snapshot());
}
