//! Regenerates the **graph-expansion study** (\[DV12]): four-state
//! convergence time against the interaction graph's spectral gap across
//! five topologies.
//!
//! Alias for `avc sweep graph_gap` followed by `avc export graph_gap`
//! (flags: `--quick --n --runs --seed --serial/--threads --progress
//! --out`), with checkpoint/resume through the result store.

fn main() {
    avc_store::cli::legacy("graph_gap");
}
