//! Experiment harness and statistics for the paper's evaluation.
//!
//! This crate turns the protocols and engines of the workspace into the
//! tables behind every figure of *Fast and Exact Majority in Population
//! Protocols*:
//!
//! * [`stats`] — summary statistics and log–log scaling fits;
//! * [`io`] — crash-safe (write-temp-fsync-rename) file output;
//! * [`plot`] — dependency-free ASCII log–log plots for the terminal;
//! * [`mean_field`] — the ODE limit of the three-state protocol \[PVV09];
//! * [`table`] — plain CSV / markdown table rendering (no serde);
//! * [`harness`] — seeded multi-trial runners with automatic engine choice;
//! * [`experiments`] — one module per figure/experiment of the paper
//!   (Figure 3, Figure 4, the lower-bound scaling experiments, and the
//!   ablations discussed in §6);
//! * [`cli`] — a tiny argument parser shared by the experiment binaries.
//!
//! # Example: one Figure-3 cell
//!
//! ```
//! use avc_analysis::harness::{run_trials, EngineKind, TrialPlan};
//! use avc_population::{ConvergenceRule, MajorityInstance};
//! use avc_protocols::FourState;
//!
//! let plan = TrialPlan::new(MajorityInstance::one_extra(101))
//!     .runs(20)
//!     .seed(7);
//! let results = run_trials(&FourState, &plan, EngineKind::Jump, ConvergenceRule::OutputConsensus);
//! assert_eq!(results.error_fraction(), 0.0); // the four-state protocol is exact
//! assert!(results.mean_parallel_time() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod harness;
pub mod io;
pub mod mean_field;
pub mod plot;
pub mod stats;
pub mod table;
