//! Sweep specs for the exhaustive model checks (MC-1 and MC-2).
//!
//! These are deterministic (no RNG), so their cells carry only the
//! enumeration sizes in the manifest; a rerun at the same sizes is a cache
//! hit by construction.

use crate::manifest::Manifest;
use crate::record::CellResult;
use crate::sweep::{Cell, Export, Plan};
use avc_analysis::cli::Args;
use avc_analysis::table::Table;
use avc_population::Config;
use avc_protocols::{Avc, FourState};
use avc_verify::enumerate::{
    four_state_family_survey, four_state_mutation_study, three_state_impossibility,
};
use avc_verify::reach::{check_exact_majority, check_invariant};
use std::collections::BTreeMap;

/// The AVC `(m, d)` parameterizations explored by MC-2.
fn avc_params(quick: bool) -> &'static [(u64, u32)] {
    if quick {
        &[(1, 1), (3, 1)]
    } else {
        &[(1, 1), (3, 1), (3, 2), (5, 1), (5, 2), (7, 1)]
    }
}

fn mc_avc_table() -> Table {
    Table::new(
        "Exhaustive correctness checks",
        [
            "check",
            "protocol",
            "instances",
            "configs_explored",
            "result",
        ],
    )
}

fn params_text(params: &[(u64, u32)]) -> String {
    params
        .iter()
        .map(|(m, d)| format!("({m},{d})"))
        .collect::<Vec<_>>()
        .join(",")
}

fn check_cell(
    label: &str,
    extra_params: impl IntoIterator<Item = (&'static str, String)>,
    run: impl Fn() -> CellResult + 'static,
) -> Cell {
    let mut params = vec![("cell", label.to_string())];
    params.extend(extra_params);
    Cell {
        manifest: Manifest::new("mc_avc", params),
        label: label.to_string(),
        run: Box::new(move |_| run()),
    }
}

fn one_row_result(row: Vec<String>) -> CellResult {
    CellResult {
        tables: BTreeMap::from([("mc_avc".to_string(), vec![row])]),
        ..CellResult::default()
    }
}

pub(super) fn mc_avc_plan(args: &Args) -> Plan {
    let quick = args.flag("quick");
    let params = avc_params(quick);
    let max_n = if quick { 6 } else { 9 };
    let mutation_n = if quick { 5 } else { 7 };
    let survey_n = if quick { 5 } else { 6 };

    let invariant = check_cell(
        "invariant",
        [
            ("check", "invariant_4_3".to_string()),
            ("params", params_text(params)),
            ("budget", "5000000".to_string()),
        ],
        move || {
            let mut explored = 0usize;
            let mut instances = 0;
            for &(m, d) in params {
                let avc = Avc::new(m, d).expect("valid parameters");
                for (a, b) in [(3u64, 2u64), (2, 3), (4, 2), (1, 4), (3, 3)] {
                    let initial = Config::from_input(&avc, a, b);
                    let checked =
                        check_invariant(&avc, &initial, 5_000_000, |c| avc.total_value(c))
                            .expect("state space within budget")
                            .unwrap_or_else(|bad| {
                                panic!("Invariant 4.3 violated for m={m}, d={d} at {bad:?}")
                            });
                    explored += checked;
                    instances += 1;
                }
            }
            one_row_result(vec![
                "invariant 4.3 (value sum)".to_string(),
                format!("avc, {} parameterizations", params.len()),
                instances.to_string(),
                explored.to_string(),
                "holds".to_string(),
            ])
        },
    );

    let exact_avc = check_cell(
        "exact_avc",
        [
            ("check", "exact_majority_avc".to_string()),
            ("params", params_text(params)),
            ("budget", "5000000".to_string()),
        ],
        move || {
            let mut explored = 0usize;
            let mut instances = 0;
            for &(m, d) in params {
                let avc = Avc::new(m, d).expect("valid parameters");
                for (a, b) in [(2u64, 1u64), (1, 2), (3, 2), (2, 3), (4, 1), (3, 3)] {
                    let v = check_exact_majority(&avc, a, b, 5_000_000).expect("within budget");
                    assert!(v.is_correct(), "AVC(m={m},d={d}) violated at a={a}, b={b}");
                    explored += v.explored;
                    instances += 1;
                }
            }
            one_row_result(vec![
                "exact majority (Thm B.1 properties)".to_string(),
                "avc".to_string(),
                instances.to_string(),
                explored.to_string(),
                "holds".to_string(),
            ])
        },
    );

    let exact_four_state = check_cell(
        "exact_four_state",
        [
            ("check", "exact_majority_four_state".to_string()),
            ("max_n", max_n.to_string()),
            ("budget", "1000000".to_string()),
        ],
        move || {
            let mut explored = 0usize;
            let mut instances = 0;
            for n in 2..=max_n {
                for a in 0..=n {
                    let v = check_exact_majority(&FourState, a, n - a, 1_000_000)
                        .expect("within budget");
                    assert!(v.is_correct(), "four-state violated at a={a}, b={}", n - a);
                    explored += v.explored;
                    instances += 1;
                }
            }
            one_row_result(vec![
                "exact majority, all instances".to_string(),
                "four-state".to_string(),
                instances.to_string(),
                explored.to_string(),
                "holds".to_string(),
            ])
        },
    );

    let mutations = check_cell(
        "mutations",
        [
            ("check", "four_state_mutations".to_string()),
            ("mutation_n", mutation_n.to_string()),
        ],
        move || {
            let outcome = four_state_mutation_study(mutation_n);
            one_row_result(vec![
                format!("single-rule mutations (n ≤ {mutation_n})"),
                "four-state".to_string(),
                outcome.candidates.to_string(),
                "-".to_string(),
                format!(
                    "{} of {} mutants survive",
                    outcome.survivors, outcome.candidates
                ),
            ])
        },
    );

    let family_survey = check_cell(
        "family_survey",
        [
            ("check", "four_state_family_survey".to_string()),
            ("survey_n", survey_n.to_string()),
        ],
        move || {
            let (survey, survivors) = four_state_family_survey(survey_n);
            let mut result = one_row_result(vec![
                format!("constrained 4-state family (n ≤ {survey_n})"),
                "Theorem B.1 case analysis".to_string(),
                survey.candidates.to_string(),
                "-".to_string(),
                format!(
                    "{} of {} assignments correct",
                    survey.survivors, survey.candidates
                ),
            ]);
            result.notes = survivors;
            result
        },
    );

    Plan {
        name: "mc_avc".to_string(),
        banner: "reachability over full configuration spaces at small n".to_string(),
        cells: vec![
            invariant,
            exact_avc,
            exact_four_state,
            mutations,
            family_survey,
        ],
        export: Box::new(|results| {
            let mut table = mc_avc_table();
            for r in results {
                for row in r.rows("mc_avc") {
                    table.push_row(row.clone());
                }
            }
            let mut trailer = vec!["surviving four-state rule assignments:".to_string()];
            for s in &results[4].notes {
                trailer.push(format!("  {s}"));
            }
            trailer.push("✔ all exhaustive checks passed".to_string());
            Export {
                tables: vec![("mc_avc".to_string(), table)],
                trailer: vec![trailer.join("\n")],
            }
        }),
    }
}

pub(super) fn mc_three_state_plan(args: &Args) -> Plan {
    let max_n = args.get_u64("max-n", if args.flag("quick") { 5 } else { 7 });
    let label = format!("max_n={max_n}");
    let cell = Cell {
        manifest: Manifest::new(
            "mc_three_state",
            [
                ("cell", label.clone()),
                ("check", "three_state_impossibility".to_string()),
                ("max_n", max_n.to_string()),
            ],
        ),
        label,
        run: Box::new(move |_| {
            let outcome = three_state_impossibility(max_n);
            assert_eq!(
                outcome.survivors, 0,
                "impossibility violated: some 3-state protocol solved exact majority!"
            );
            CellResult {
                tables: BTreeMap::from([(
                    "mc_three_state".to_string(),
                    vec![vec![
                        outcome.candidates.to_string(),
                        outcome.survivors.to_string(),
                        max_n.to_string(),
                    ]],
                )]),
                ..CellResult::default()
            }
        }),
    };

    Plan {
        name: "mc_three_state".to_string(),
        banner: format!("all symmetric 3-state protocols, instances up to n = {max_n}"),
        cells: vec![cell],
        export: Box::new(move |results| {
            let mut table = Table::new(
                "Exhaustive 3-state enumeration",
                ["candidates", "survivors", "max_n"],
            );
            for row in results[0].rows("mc_three_state") {
                table.push_row(row.clone());
            }
            Export {
                tables: vec![("mc_three_state".to_string(), table)],
                trailer: vec![format!(
                    "✔ no three-state protocol solves exact majority (n ≤ {max_n})"
                )],
            }
        }),
    }
}
