//! Property suite for the scenario plane's canonical form: parse → print →
//! parse is the identity, the canonical string is a fixed point, and the
//! content hash is stable across re-serialization. Together these make a
//! store manifest's embedded scenario a faithful re-run recipe.

use avc::population::faults::{Fault, FaultEvent};
use avc::population::json::Json;
use avc::population::{
    ConvergenceRule, EngineKind, MajorityInstance, Opinion, ProtocolSpec, Scenario, SchedulerSpec,
};
use proptest::prelude::*;

fn protocol_spec(choice: usize, half_m: u64, d: u32) -> ProtocolSpec {
    match choice % 6 {
        0 => ProtocolSpec::Avc {
            m: 2 * half_m + 1,
            d,
        },
        1 => ProtocolSpec::FourState,
        2 => ProtocolSpec::ThreeState,
        // Reuse the AVC parameter ranges for the rivals: `half_m` ∈ 0..=20
        // keeps levels within 1..=32 and `d` ∈ 1..=4 within 1..=64.
        3 => ProtocolSpec::Bef {
            levels: 1 + half_m as u32,
        },
        4 => ProtocolSpec::Degssu {
            levels: 1 + half_m as u32,
            phase: d,
        },
        _ => ProtocolSpec::Voter,
    }
}

fn engine_kind(choice: usize) -> EngineKind {
    match choice % 6 {
        0 => EngineKind::Auto,
        1 => EngineKind::Agent,
        2 => EngineKind::Count,
        3 => EngineKind::Jump,
        4 => EngineKind::Adaptive,
        _ => EngineKind::TauLeap,
    }
}

fn scheduler_spec(choice: usize, x: u64, y: u64) -> SchedulerSpec {
    match choice % 6 {
        0 => SchedulerSpec::Uniform,
        1 => SchedulerSpec::Biased {
            hot: 2 + x % 14,
            bias: (y % 10) as f64 / 10.0,
        },
        2 => SchedulerSpec::Starved {
            laggards: 1 + x % 8,
            period: 2 + y % 50,
        },
        3 => SchedulerSpec::Epoch,
        4 => SchedulerSpec::RestrictedStar,
        _ => SchedulerSpec::RestrictedCycle,
    }
}

fn fault(choice: usize, at: u64, x: u64, y: u64) -> FaultEvent {
    let agent = (x % 64) as usize;
    let fault = match choice % 6 {
        0 => Fault::Crash { agent },
        1 => Fault::Revive { agent },
        2 => Fault::StickAt { agent },
        3 => Fault::Unstick { agent },
        4 => Fault::BitFlip {
            agent,
            bit: (y % 8) as u32,
        },
        _ => Fault::Corrupt {
            from: (x % 10) as u32,
            to: (y % 10) as u32,
            agents: 1 + y % 5,
        },
    };
    FaultEvent { at_step: at, fault }
}

fn rule(choice: usize, count: u64) -> ConvergenceRule {
    match choice % 4 {
        0 => ConvergenceRule::OutputConsensus,
        1 => ConvergenceRule::StateConsensus,
        2 => ConvergenceRule::Silence,
        _ => ConvergenceRule::OutputCount {
            opinion: if count.is_multiple_of(2) {
                Opinion::A
            } else {
                Opinion::B
            },
            count,
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn scenario(
    (p_choice, half_m, d): (usize, u64, u32),
    (a, b): (u64, u64),
    e_choice: usize,
    (s_choice, sx, sy): (usize, u64, u64),
    faults: Vec<(usize, u64, u64, u64)>,
    (r_choice, r_count): (usize, u64),
    (max_steps_raw, runs, seed): (u64, u64, u64),
    seed_child: u64,
) -> Scenario {
    let mut built = Scenario::new(
        protocol_spec(p_choice, half_m, d),
        MajorityInstance::new(a, b),
    )
    .engine(engine_kind(e_choice))
    .scheduler(scheduler_spec(s_choice, sx, sy))
    .rule(rule(r_choice, r_count))
    .runs(runs)
    .seed(seed);
    // Exercise both the "absent because default" and the explicit spelling.
    if max_steps_raw != 0 {
        built = built.max_steps(max_steps_raw);
    }
    if seed_child.is_multiple_of(2) {
        built = built.seed_child(seed_child);
    }
    for (choice, at, x, y) in faults {
        built = built.fault(at, fault(choice, at, x, y).fault);
    }
    built
}

proptest! {
    /// parse(canonical(s)) == s for arbitrary scenarios.
    #[test]
    fn parse_print_parse_is_identity(
        p in (0usize..6, 0u64..=20, 1u32..=4),
        inst in (1u64..500, 1u64..500),
        e_choice in 0usize..6,
        sched in (0usize..6, any::<u64>(), any::<u64>()),
        faults in proptest::collection::vec((0usize..6, 0u64..10_000, any::<u64>(), any::<u64>()), 0..4),
        r in (0usize..4, 0u64..1_000),
        tail in (0u64..5_000_000, 1u64..200, any::<u64>()),
        seed_child in any::<u64>(),
    ) {
        let original = scenario(p, inst, e_choice, sched, faults, r, tail, seed_child);
        let reparsed = Scenario::parse(&original.canonical()).expect("canonical form parses");
        prop_assert_eq!(&reparsed, &original);
        // The canonical string is a fixed point, so the hash is stable.
        prop_assert_eq!(reparsed.canonical(), original.canonical());
        prop_assert_eq!(reparsed.hash(), original.hash());
    }

    /// Pretty-printed (hand-authored style) JSON parses to the same value
    /// and the same canonical hash as the compact canonical form.
    #[test]
    fn pretty_form_is_equivalent(
        p in (0usize..6, 0u64..=20, 1u32..=4),
        inst in (1u64..500, 1u64..500),
        e_choice in 0usize..6,
        sched in (0usize..6, any::<u64>(), any::<u64>()),
        r in (0usize..4, 0u64..1_000),
        tail in (0u64..5_000_000, 1u64..200, any::<u64>()),
    ) {
        let original = scenario(p, inst, e_choice, sched, Vec::new(), r, tail, 1);
        let pretty = Json::parse(&original.canonical())
            .expect("canonical form is JSON")
            .to_string_pretty();
        let reparsed = Scenario::parse(&pretty).expect("pretty form parses");
        prop_assert_eq!(reparsed.hash(), original.hash());
        prop_assert_eq!(reparsed, original);
    }
}

#[test]
fn unknown_fields_are_rejected() {
    let err = Scenario::parse(r#"{"protocol":"voter","typo":1}"#).unwrap_err();
    assert!(err.contains("typo"), "{err}");
}

#[test]
fn committed_example_scenarios_parse() {
    let mut singles = 0;
    let mut grids = 0;
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/scenarios"))
        .expect("examples/scenarios exists")
    {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".grid.json"))
        {
            // Grid files bundle many scenarios; `ScenarioGrid::parse`
            // validates every embedded one, including the non-uniform
            // scheduler ⇒ agent-engine constraint per cell.
            let grid = avc::store::scenario_grid::ScenarioGrid::parse(&text)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
            assert!(!grid.cells.is_empty(), "{}", path.display());
            grids += 1;
            continue;
        }
        let scenario = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        // Every committed example must be runnable: a non-uniform scheduler
        // implies the agent engine.
        if scenario.scheduler != SchedulerSpec::Uniform {
            assert_eq!(scenario.engine, EngineKind::Agent, "{}", path.display());
        }
        singles += 1;
    }
    assert!(singles > 0 && grids > 0, "{singles} singles, {grids} grids");
}
