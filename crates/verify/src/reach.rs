//! Exact reachability analysis over configuration space.
//!
//! A configuration of `n` agents over `q` states is a multiset, i.e. a count
//! vector summing to `n`; there are `C(n+q−1, q−1)` of them, so exhaustive
//! exploration is feasible for small `n` and `q`. This module computes
//! forward closures and checks the three correctness properties Theorem B.1
//! demands of any exact-majority protocol:
//!
//! 1. *Absorbing correctness is reachable*: some configuration from which
//!    every reachable configuration outputs the majority is reachable.
//! 2. *Never wrong*: no reachable configuration is absorbing for the
//!    minority output.
//! 3. *Always recoverable*: from every reachable configuration there is a
//!    schedule leading to a correct absorbing configuration.

use avc_population::{Config, Opinion, Protocol, StateId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Exploration exceeded the configuration budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateSpaceTooLarge {
    /// The configured limit that was exceeded.
    pub limit: usize,
}

impl fmt::Display for StateSpaceTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reachable configuration space exceeds limit {}",
            self.limit
        )
    }
}

impl Error for StateSpaceTooLarge {}

/// The forward-reachable configuration graph from one initial configuration.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    configs: Vec<Vec<u64>>,
    index: HashMap<Vec<u64>, usize>,
    successors: Vec<Vec<usize>>,
}

impl ReachabilityGraph {
    /// Explores the forward closure of `initial` under `protocol`,
    /// aborting if more than `max_configs` configurations are found.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceTooLarge`] if the closure exceeds the budget.
    pub fn explore<P: Protocol>(
        protocol: &P,
        initial: &Config,
        max_configs: usize,
    ) -> Result<ReachabilityGraph, StateSpaceTooLarge> {
        let mut configs: Vec<Vec<u64>> = Vec::new();
        let mut index: HashMap<Vec<u64>, usize> = HashMap::new();
        let mut successors: Vec<Vec<usize>> = Vec::new();

        let root = initial.as_slice().to_vec();
        index.insert(root.clone(), 0);
        configs.push(root);
        successors.push(Vec::new());

        let mut frontier = 0;
        while frontier < configs.len() {
            let current = configs[frontier].clone();
            let live: Vec<StateId> = current
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, _)| i as StateId)
                .collect();
            let mut succ = Vec::new();
            for &i in &live {
                for &j in &live {
                    if i == j && current[i as usize] < 2 {
                        continue;
                    }
                    let (x, y) = protocol.transition(i, j);
                    if (x == i && y == j) || (x == j && y == i) {
                        continue;
                    }
                    let mut next = current.clone();
                    next[i as usize] -= 1;
                    next[j as usize] -= 1;
                    next[x as usize] += 1;
                    next[y as usize] += 1;
                    let id = match index.get(&next) {
                        Some(&id) => id,
                        None => {
                            let id = configs.len();
                            if id >= max_configs {
                                return Err(StateSpaceTooLarge { limit: max_configs });
                            }
                            index.insert(next.clone(), id);
                            configs.push(next);
                            successors.push(Vec::new());
                            id
                        }
                    };
                    if !succ.contains(&id) {
                        succ.push(id);
                    }
                }
            }
            successors[frontier] = succ;
            frontier += 1;
        }
        Ok(ReachabilityGraph {
            configs,
            index,
            successors,
        })
    }

    /// Index of the configuration with the given counts, if reachable.
    #[must_use]
    pub fn find_config(&self, counts: &[u64]) -> Option<usize> {
        self.index.get(counts).copied()
    }

    /// Number of reachable configurations (including the initial one).
    #[must_use]
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the graph is empty (never: the initial config is present).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The count vector of configuration `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn config(&self, id: usize) -> &[u64] {
        &self.configs[id]
    }

    /// Distinct successor configurations of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn successors(&self, id: usize) -> &[usize] {
        &self.successors[id]
    }

    /// Whether all agents of configuration `id` output `opinion`.
    pub fn all_output<P: Protocol>(&self, protocol: &P, id: usize, opinion: Opinion) -> bool {
        self.configs[id]
            .iter()
            .enumerate()
            .all(|(s, &c)| c == 0 || protocol.output(s as StateId) == opinion)
    }

    /// The set of configurations that are *absorbing for `opinion`*: every
    /// configuration reachable from them (themselves included) has all
    /// agents outputting `opinion`. Returned as a boolean mask.
    ///
    /// This is the greatest fixpoint of "all-output ∧ all successors in the
    /// set" — the set `C_i` of the paper restricted to the explored closure.
    pub fn absorbing_for<P: Protocol>(&self, protocol: &P, opinion: Opinion) -> Vec<bool> {
        let mut in_set: Vec<bool> = (0..self.len())
            .map(|id| self.all_output(protocol, id, opinion))
            .collect();
        loop {
            let mut changed = false;
            for id in 0..self.len() {
                if in_set[id] && self.successors[id].iter().any(|&s| !in_set[s]) {
                    in_set[id] = false;
                    changed = true;
                }
            }
            if !changed {
                return in_set;
            }
        }
    }

    /// The set of configurations from which some configuration in `targets`
    /// is reachable (including targets themselves). Returned as a mask.
    #[must_use]
    pub fn can_reach(&self, targets: &[bool]) -> Vec<bool> {
        assert_eq!(targets.len(), self.len(), "mask length mismatch");
        let mut reachable = targets.to_vec();
        loop {
            let mut changed = false;
            for id in 0..self.len() {
                if !reachable[id] && self.successors[id].iter().any(|&s| reachable[s]) {
                    reachable[id] = true;
                    changed = true;
                }
            }
            if !changed {
                return reachable;
            }
        }
    }
}

/// The verdict of [`check_exact_majority`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorityVerdict {
    /// Number of configurations explored.
    pub explored: usize,
    /// Property 1: a correct absorbing configuration is reachable.
    pub correct_absorbing_reachable: bool,
    /// Property 2: no wrong absorbing configuration is reachable.
    pub never_wrong: bool,
    /// Property 3: every reachable configuration can still reach a correct
    /// absorbing configuration.
    pub always_recoverable: bool,
}

impl MajorityVerdict {
    /// Whether all three properties hold.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.correct_absorbing_reachable && self.never_wrong && self.always_recoverable
    }
}

/// Checks the three exact-majority correctness properties of Theorem B.1
/// for the instance with `a` agents of opinion `A` and `b` of opinion `B`.
///
/// Tied instances (`a == b`) are vacuously correct: the majority predicate
/// places no requirement on them.
///
/// # Errors
///
/// Returns [`StateSpaceTooLarge`] if the forward closure exceeds
/// `max_configs`.
pub fn check_exact_majority<P: Protocol>(
    protocol: &P,
    a: u64,
    b: u64,
    max_configs: usize,
) -> Result<MajorityVerdict, StateSpaceTooLarge> {
    let initial = Config::from_input(protocol, a, b);
    let graph = ReachabilityGraph::explore(protocol, &initial, max_configs)?;
    let Some(winner) = (match a.cmp(&b) {
        std::cmp::Ordering::Greater => Some(Opinion::A),
        std::cmp::Ordering::Less => Some(Opinion::B),
        std::cmp::Ordering::Equal => None,
    }) else {
        return Ok(MajorityVerdict {
            explored: graph.len(),
            correct_absorbing_reachable: true,
            never_wrong: true,
            always_recoverable: true,
        });
    };

    let good = graph.absorbing_for(protocol, winner);
    let bad = graph.absorbing_for(protocol, winner.flip());
    let can_recover = graph.can_reach(&good);

    Ok(MajorityVerdict {
        explored: graph.len(),
        correct_absorbing_reachable: good.iter().any(|&g| g),
        never_wrong: !bad.iter().any(|&b| b),
        always_recoverable: can_recover.iter().all(|&r| r),
    })
}

/// Checks a quantity is invariant across the entire forward closure — used
/// to machine-check Invariant 4.3 (the AVC value sum) on small instances.
///
/// Returns the number of configurations checked.
///
/// # Errors
///
/// Returns [`StateSpaceTooLarge`] if the closure exceeds `max_configs`.
pub fn check_invariant<P: Protocol>(
    protocol: &P,
    initial: &Config,
    max_configs: usize,
    quantity: impl Fn(&[u64]) -> i64,
) -> Result<Result<usize, Vec<u64>>, StateSpaceTooLarge> {
    let graph = ReachabilityGraph::explore(protocol, initial, max_configs)?;
    let reference = quantity(graph.config(0));
    for id in 1..graph.len() {
        if quantity(graph.config(id)) != reference {
            return Ok(Err(graph.config(id).to_vec()));
        }
    }
    Ok(Ok(graph.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_protocols::{Avc, FourState, ThreeState, Voter};

    #[test]
    fn four_state_is_exactly_correct_small_n() {
        for n in 2..=8u64 {
            for a in 0..=n {
                let v = check_exact_majority(&FourState, a, n - a, 1_000_000).unwrap();
                assert!(v.is_correct(), "four-state violated at a={a}, b={}", n - a);
            }
        }
    }

    #[test]
    fn avc_is_exactly_correct_small_n() {
        let avc = Avc::new(5, 2).unwrap();
        for (a, b) in [(2u64, 1u64), (1, 2), (3, 2), (2, 3), (4, 1), (3, 3)] {
            let v = check_exact_majority(&avc, a, b, 2_000_000).unwrap();
            assert!(v.is_correct(), "avc violated at a={a}, b={b}");
        }
    }

    #[test]
    fn three_state_fails_never_wrong() {
        // The approximate protocol can be driven to the wrong consensus:
        // property 2 must fail for some instance (this is the MNRS14
        // impossibility seen from the model checker's side).
        let p = ThreeState::new();
        let mut violated = false;
        for (a, b) in [(2u64, 1u64), (3, 2), (4, 3)] {
            let v = check_exact_majority(&p, a, b, 100_000).unwrap();
            if !v.never_wrong {
                violated = true;
            }
        }
        assert!(violated, "three-state protocol unexpectedly looked exact");
    }

    #[test]
    fn voter_fails_exactness() {
        let v = check_exact_majority(&Voter, 2, 1, 100_000).unwrap();
        assert!(!v.never_wrong, "voter can reach all-B from majority A");
    }

    #[test]
    fn tie_is_vacuously_correct() {
        let v = check_exact_majority(&FourState, 3, 3, 100_000).unwrap();
        assert!(v.is_correct());
    }

    #[test]
    fn avc_sum_invariant_holds_on_closure() {
        let avc = Avc::new(3, 1).unwrap();
        let initial = Config::from_input(&avc, 3, 2);
        let checked = check_invariant(&avc, &initial, 1_000_000, |counts| avc.total_value(counts))
            .unwrap()
            .expect("invariant must hold");
        assert!(checked > 1, "closure should be nontrivial, got {checked}");
    }

    #[test]
    fn explore_reports_budget_exhaustion() {
        let avc = Avc::new(9, 1).unwrap();
        let initial = Config::from_input(&avc, 6, 6);
        let err = ReachabilityGraph::explore(&avc, &initial, 10).unwrap_err();
        assert_eq!(err, StateSpaceTooLarge { limit: 10 });
    }

    #[test]
    fn graph_accessors() {
        let initial = Config::from_input(&Voter, 2, 1);
        let g = ReachabilityGraph::explore(&Voter, &initial, 100).unwrap();
        // Configurations: (2,1) -> (3,0) or (1,2); (1,2) -> (2,1)|(0,3)...
        assert!(g.len() >= 4);
        assert!(!g.is_empty());
        assert_eq!(g.config(0), &[2, 1]);
        assert!(!g.successors(0).is_empty());
        assert!(!g.all_output(&Voter, 0, Opinion::A));
    }
}
