//! Regenerates the **robustness study**: AVC and four-state exactness and
//! slowdown under adversarial schedulers (biased, starving, epoch-batched,
//! graph-restricted) and injected faults (crash/revive, state corruption).
//!
//! Alias for `avc sweep robustness` followed by `avc export robustness`
//! (flags: `--quick --n --runs --seed --serial/--threads --progress
//! --out`), with checkpoint/resume through the result store.

fn main() {
    avc_store::cli::legacy("robustness");
}
