//! # AVC: Average-and-Conquer — fast and exact majority in population protocols
//!
//! A production-quality Rust reproduction of *Fast and Exact Majority in
//! Population Protocols* (Dan Alistarh, Rati Gelashvili, Milan Vojnović;
//! PODC 2015 / MSR-TR-2015-13).
//!
//! This meta-crate re-exports the workspace crates:
//!
//! * [`population`] — the simulation substrate (protocol trait, engines,
//!   interaction graphs, schedulers);
//! * [`protocols`] — the majority protocols: AVC, the four-state exact
//!   protocol, the three-state approximate protocol, the voter model;
//! * [`verify`] — exhaustive reachability model checking, protocol-space
//!   enumeration, and the knowledge-set lower-bound machinery;
//! * [`analysis`] — the experiment harness, statistics, and table output;
//! * [`store`] — the crash-safe experiment registry behind the `avc`
//!   sweep CLI (checkpoint/resume, content-addressed cells).
//!
//! # Quickstart
//!
//! ```
//! use avc::population::engine::{CountSim, Simulator};
//! use avc::population::{Config, MajorityInstance};
//! use avc::protocols::Avc;
//! use rand::SeedableRng;
//!
//! // 101 agents, majority decided by a single agent (ε = 1/n).
//! let instance = MajorityInstance::one_extra(101);
//! let protocol = Avc::with_states(64)?; // s ≈ 64 states per agent
//! let config = Config::from_input(&protocol, instance.a(), instance.b());
//! let mut sim = CountSim::new(protocol, config);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(2015);
//! let outcome = sim.run_to_consensus(&mut rng, u64::MAX);
//! // AVC solves majority *exactly*: the verdict always matches the input
//! // majority, here opinion A.
//! assert!(outcome.verdict.is_correct(avc::population::Opinion::A));
//! # Ok::<(), avc::protocols::AvcParameterError>(())
//! ```

#![forbid(unsafe_code)]

pub use avc_analysis as analysis;
pub use avc_population as population;
pub use avc_protocols as protocols;
pub use avc_store as store;
pub use avc_verify as verify;

/// The most common imports in one place.
///
/// ```
/// use avc::prelude::*;
/// use rand::SeedableRng;
///
/// let protocol = Avc::with_states(16).expect("valid budget");
/// let config = Config::from_input(&protocol, 30, 21);
/// let mut sim = CountSim::new(protocol, config);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// assert!(sim.run_to_consensus(&mut rng, u64::MAX).verdict.is_consensus());
/// ```
pub mod prelude {
    pub use avc_population::engine::{
        AdaptiveSim, AgentSim, CountSim, JumpSim, Simulator, TauLeapSim,
    };
    pub use avc_population::graph::Graph;
    pub use avc_population::rngutil::SeedSequence;
    pub use avc_population::{
        Config, ConvergenceRule, MajorityInstance, Opinion, Protocol, StateId,
    };
    pub use avc_protocols::{Avc, Epidemic, FourState, LeaderElection, ThreeState, Voter};
}
