//! Uniform sampling over ranges and whole-domain ("standard") sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// An unbiased draw from `[0, span)` by Lemire's widening-multiply
/// rejection method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut low = m as u64;
    if low < span {
        // Rejection zone to remove the modulo bias.
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A uniform `f64` in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a natural "whole domain" uniform distribution (for
/// [`Rng::gen`](crate::Rng::gen); `[0, 1)` for floats).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// A uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned);
                lo.wrapping_add(uniform_below(rng, u64::from(span)) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned);
                if u64::from(span) == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, u64::from(span) + 1) as $t)
            }
        }
    )*};
}

uniform_int!(
    u8 => u8, u16 => u16, u32 => u32,
    i8 => u8, i16 => u16, i32 => u32
);

macro_rules! uniform_int_wide {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

uniform_int_wide!(u64, usize, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let u = unit_f64(rng) as $t;
                let x = lo + u * (hi - lo);
                // Floating rounding can land exactly on `hi`; fold back in.
                if x >= hi { lo.max(<$t>::from_bits(hi.to_bits() - 1)) } else { x }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let u = unit_f64(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range argument forms accepted by [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {

    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut saw_negative = false;
        for _ in 0..1_000 {
            let x: i64 = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&x));
            saw_negative |= x < 0;
        }
        assert!(saw_negative);
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut lo_hit = false;
        let mut hi_hit = false;
        for _ in 0..1_000 {
            match rng.gen_range(0u32..=3) {
                0 => lo_hit = true,
                3 => hi_hit = true,
                _ => {}
            }
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn float_half_open_stays_below_upper_bound() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100_000 {
            let x: f64 = rng.gen_range(0.0..1.0e-300);
            assert!((0.0..1.0e-300).contains(&x));
        }
    }

    #[test]
    fn small_int_types_sample_unbiased_ends() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut hist = [0u32; 3];
        for _ in 0..30_000 {
            hist[rng.gen_range(0u8..3) as usize] += 1;
        }
        for &h in &hist {
            assert!((9_000..11_000).contains(&h), "{hist:?}");
        }
    }
}
