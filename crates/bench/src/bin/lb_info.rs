//! Empirically validates **Theorem C.1 / Claim C.2**: the knowledge set
//! needs `≈ n·ln n` interactions (`Θ(log n)` parallel time) to cover the
//! population, so no exact-majority protocol beats `Ω(log n)`.
//!
//! Alias for `avc sweep lb_info` followed by `avc export lb_info` (flags:
//! `--quick --ns --runs --seed --serial/--threads --progress --out`), with
//! checkpoint/resume through the result store.

fn main() {
    avc_store::cli::legacy("lb_info");
}
