//! Regenerates **Figure 3**: three protocols at margin `ε = 1/n`.
//!
//! Alias for `avc sweep fig3` followed by `avc export fig3`: same flags
//! (`--quick --runs --seed --ns --serial/--threads --progress --out`), same
//! CSVs, plus checkpoint/resume through the result store (EXPERIMENTS.md).

fn main() {
    avc_store::cli::legacy("fig3");
}
