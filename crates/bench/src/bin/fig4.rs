//! Regenerates **Figure 4**: AVC convergence time vs `ε` and `s`, plus the
//! `s·ε` collapse.
//!
//! Usage: `cargo run --release -p avc-bench --bin fig4 [--quick] [--runs N]
//! [--seed N] [--n N] [--states 4,6,...] [--serial | --threads N]
//! [--progress] [--out DIR]`

use avc_analysis::cli::Args;
use avc_analysis::experiments::{fig4, report};
use avc_analysis::plot::ScatterPlot;

fn main() {
    let args = Args::from_env();
    let mut config = if args.flag("quick") {
        fig4::Config::quick()
    } else {
        fig4::Config::default()
    };
    config.runs = args.get_u64("runs", config.runs);
    config.seed = args.get_u64("seed", config.seed);
    config.n = args.get_u64("n", config.n);
    config.state_counts = args.get_u64_list("states", &config.state_counts);
    config.parallelism = args.parallelism();

    avc_bench::banner(
        "Figure 4",
        &format!(
            "AVC time vs margin, n = {}, s in {:?}, {} margins x {} runs",
            config.n,
            config.state_counts,
            config.epsilons.len(),
            config.runs
        ),
    );

    let started = std::time::Instant::now();
    let stats = avc_bench::collector(&args);
    let points = fig4::run_with_stats(&config, &stats);
    let out = avc_bench::out_dir(&args);
    report(&fig4::table(&points, config.n), &out, "fig4");

    // Left panel: one curve per s against eps.
    let mut left = ScatterPlot::new(
        "Figure 4 (left): time vs eps, one series per s (log-log)",
        64,
        18,
    )
    .log_log();
    for &s in &config.state_counts {
        let avc_s = avc_protocols::Avc::with_states(s)
            .expect("valid budget")
            .s();
        let series: Vec<(f64, f64)> = points
            .iter()
            .filter(|p| p.s == avc_s)
            .map(|p| (p.achieved_epsilon, p.summary.mean))
            .collect();
        if !series.is_empty() {
            left.add_series(format!("s={avc_s}"), series);
        }
    }
    println!("{}", left.render());

    // Right panel: everything against s·eps collapses onto one curve.
    let mut right = ScatterPlot::new(
        "Figure 4 (right): time vs s*eps, all series (log-log)",
        64,
        18,
    )
    .log_log();
    right.add_series(
        "all (s, eps)",
        points
            .iter()
            .map(|p| (p.s as f64 * p.achieved_epsilon, p.summary.mean)),
    );
    println!("{}", right.render());
    println!("throughput: {}", stats.snapshot());
    println!("total wall time: {:?}", started.elapsed());
}
