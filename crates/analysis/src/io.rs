//! Crash-safe file output.
//!
//! Every artifact this workspace persists — `results/*.csv` tables and the
//! experiment registry's JSONL records — goes through [`atomic_write`]: the
//! bytes land in a temporary sibling file, are fsynced, and are then renamed
//! over the destination. A reader (or a resumed sweep) therefore sees either
//! the old complete file or the new complete file, never a torn prefix, even
//! across `kill -9` or power loss mid-write.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::Path;

/// Writes `bytes` to `path` atomically (write temp sibling, fsync, rename),
/// creating parent directories as needed.
///
/// The temporary file lives in the same directory as `path` (rename is only
/// atomic within a filesystem) and carries a `.tmp` suffix derived from the
/// destination name plus the process id, so concurrent writers of
/// *different* destinations never collide.
///
/// # Errors
///
/// Propagates I/O errors from directory creation, the write, the fsync, or
/// the rename. On error the destination is untouched; a stale `*.tmp`
/// sibling may remain and is overwritten by the next attempt.
pub fn atomic_write(path: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            fs::create_dir_all(p)?;
            p.to_path_buf()
        }
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = parent.join(format!(
        "{}.{}.tmp",
        file_name.to_string_lossy(),
        std::process::id()
    ));

    let mut file = File::create(&tmp)?;
    file.write_all(bytes.as_ref())?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)?;

    // Persist the rename itself: fsync the containing directory. Some
    // platforms (or exotic filesystems) refuse to open directories for
    // sync; the rename is already atomic, so this is best-effort.
    if let Ok(dir) = File::open(&parent) {
        let _ = dir.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("avc-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_and_creates_parents() {
        let dir = temp_dir("parents");
        let path = dir.join("a").join("b.txt");
        atomic_write(&path, b"hello").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaces_existing_content_completely() {
        let dir = temp_dir("replace");
        let path = dir.join("x.csv");
        atomic_write(&path, "old longer content").unwrap();
        atomic_write(&path, "new").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "new");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leaves_no_tmp_sibling_on_success() {
        let dir = temp_dir("tmpfile");
        let path = dir.join("out.jsonl");
        atomic_write(&path, "line\n").unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stale temp files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_directoryless_destination() {
        let dir = temp_dir("nodir");
        fs::create_dir_all(&dir).unwrap();
        assert!(atomic_write(dir.join(""), "x").is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
