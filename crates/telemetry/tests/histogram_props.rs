//! Property tests for the histogram bucket scheme and the merge monoid.
//!
//! Two families: (1) bucket-boundary correctness — every `u64` lands inside
//! the bounds of its own bucket, buckets tile the range without gaps, and
//! bucketing is monotone; (2) merge algebra — histogram and registry
//! snapshots merge associatively and commutatively, so folding per-worker
//! telemetry in any grouping at any worker count yields the same total.

use avc_telemetry::metrics::{bucket_bounds, bucket_index, NUM_BUCKETS};
use avc_telemetry::{HistogramSnapshot, MetricValue, RegistrySnapshot};
use proptest::prelude::*;

/// Builds a snapshot by recording each value once.
fn histogram_of(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// A registry snapshot exercising all three metric kinds, derived from a
/// value list the way a worker's sink would produce it.
fn registry_of(values: &[u64]) -> RegistrySnapshot {
    let mut r = RegistrySnapshot::new();
    r.set("sim.steps", MetricValue::Counter(values.len() as u64));
    r.set(
        "sim.depth_max",
        MetricValue::Gauge(values.iter().copied().max().unwrap_or(0)),
    );
    r.set("sim.values", MetricValue::Histogram(histogram_of(values)));
    r
}

proptest! {
    #[test]
    fn every_value_lands_inside_its_bucket(v in any::<u64>()) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn bucketing_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    #[test]
    fn buckets_tile_without_gaps(i in 1usize..NUM_BUCKETS) {
        let (lo, _) = bucket_bounds(i);
        let (_, prev_hi) = bucket_bounds(i - 1);
        prop_assert_eq!(lo, prev_hi + 1, "gap or overlap between buckets {} and {}", i - 1, i);
    }

    #[test]
    fn recording_preserves_count_sum_and_placement(values in proptest::collection::vec(any::<u64>(), 0..64)) {
        let h = histogram_of(&values);
        prop_assert_eq!(h.count, values.len() as u64);
        let expected_sum = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(h.sum, expected_sum);
        for i in 0..NUM_BUCKETS {
            let expected = values.iter().filter(|&&v| bucket_index(v) == i).count() as u64;
            prop_assert_eq!(h.buckets[i], expected, "bucket {} count", i);
        }
    }

    #[test]
    fn histogram_merge_is_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..32),
        b in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..32),
        b in proptest::collection::vec(any::<u64>(), 0..32),
        c in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        let mut left = ha.clone(); // (a + b) + c
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb; // a + (b + c)
        bc.merge(&hc);
        let mut right = ha;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Splitting one observation stream across any worker count and folding
    /// the per-worker registries — in index order or reversed — matches the
    /// single-worker registry exactly. This is the property the parallel
    /// harness leans on when it merges per-trial telemetry.
    #[test]
    fn worker_split_merge_matches_single_worker(
        values in proptest::collection::vec(any::<u64>(), 1..96),
        workers in 1usize..8,
    ) {
        let whole = registry_of(&values);
        let chunks: Vec<&[u64]> = values.chunks(values.len().div_ceil(workers)).collect();
        let parts: Vec<RegistrySnapshot> = chunks.iter().map(|c| registry_of(c)).collect();

        let mut forward = RegistrySnapshot::new();
        for p in &parts {
            forward.merge(p);
        }
        // Counters and histograms sum, gauges take the max — all
        // order-free, so the reversed fold must agree.
        let mut backward = RegistrySnapshot::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        // The whole-stream counter is the sum of chunk lengths and the
        // gauge is the max of chunk maxima, so both folds equal `whole`.
        prop_assert_eq!(&forward, &whole);
        prop_assert_eq!(&backward, &whole);
    }
}
