//! Cross-engine equivalence: all engines simulate the same Markov chain, so
//! their convergence-time distributions and absorption probabilities must
//! agree. These tests compare engines statistically on matched workloads
//! (Abl-2 of DESIGN.md).

use avc::population::engine::{AdaptiveSim, AgentSim, CountSim, JumpSim, Simulator};
use avc::population::rngutil::SeedSequence;
use avc::population::{Config, ConvergenceRule, MajorityInstance, Opinion, Protocol};
use avc::protocols::{Avc, FourState, ThreeState, Voter};

/// Mean convergence parallel time of `protocol` over `trials` runs on the
/// chosen engine (0 = agent, 1 = count, 2 = jump, 3 = adaptive).
fn mean_time<P: Protocol + Clone>(
    protocol: &P,
    instance: MajorityInstance,
    engine: usize,
    rule: ConvergenceRule,
    trials: u64,
    seed: u64,
) -> f64 {
    let seeds = SeedSequence::new(seed);
    let mut total = 0.0;
    for t in 0..trials {
        let mut rng = seeds.rng_for(t);
        let config = Config::from_input(protocol, instance.a(), instance.b());
        let out = match engine {
            0 => AgentSim::on_clique(protocol.clone(), config)
                .run_to_consensus_with(&mut rng, u64::MAX, rule),
            1 => CountSim::new(protocol.clone(), config)
                .run_to_consensus_with(&mut rng, u64::MAX, rule),
            2 => JumpSim::new(protocol.clone(), config)
                .run_to_consensus_with(&mut rng, u64::MAX, rule),
            _ => AdaptiveSim::new(protocol.clone(), config)
                .run_to_consensus_with(&mut rng, u64::MAX, rule),
        };
        assert!(out.verdict.is_consensus(), "engine {engine} did not converge");
        total += out.parallel_time;
    }
    total / trials as f64
}

/// All four engines agree on the four-state protocol's mean convergence
/// time within sampling noise.
#[test]
fn four_state_means_agree_across_engines() {
    let instance = MajorityInstance::new(70, 50);
    let baseline = mean_time(
        &FourState,
        instance,
        0,
        ConvergenceRule::OutputConsensus,
        60,
        1,
    );
    for engine in 1..=3 {
        let mean = mean_time(
            &FourState,
            instance,
            engine,
            ConvergenceRule::OutputConsensus,
            60,
            2 + engine as u64,
        );
        let ratio = mean / baseline;
        assert!(
            (0.7..1.4).contains(&ratio),
            "engine {engine}: mean {mean} vs baseline {baseline}"
        );
    }
}

/// Engines agree on AVC (including the intermediate-level machinery).
#[test]
fn avc_means_agree_across_engines() {
    let avc = Avc::new(9, 2).expect("valid parameters");
    let instance = MajorityInstance::new(65, 55);
    let baseline = mean_time(&avc, instance, 1, ConvergenceRule::OutputConsensus, 60, 5);
    for engine in [0usize, 2, 3] {
        let mean = mean_time(
            &avc,
            instance,
            engine,
            ConvergenceRule::OutputConsensus,
            60,
            6 + engine as u64,
        );
        let ratio = mean / baseline;
        assert!(
            (0.7..1.4).contains(&ratio),
            "engine {engine}: mean {mean} vs baseline {baseline}"
        );
    }
}

/// The one-way (order-sensitive) three-state protocol is also equivalent
/// across engines — the ordered-pair semantics match.
#[test]
fn three_state_means_agree_across_engines() {
    let p = ThreeState::new();
    let instance = MajorityInstance::new(80, 40);
    let baseline = mean_time(&p, instance, 0, ConvergenceRule::StateConsensus, 60, 9);
    for engine in 1..=3 {
        let mean = mean_time(
            &p,
            instance,
            engine,
            ConvergenceRule::StateConsensus,
            60,
            10 + engine as u64,
        );
        let ratio = mean / baseline;
        assert!(
            (0.7..1.4).contains(&ratio),
            "engine {engine}: mean {mean} vs baseline {baseline}"
        );
    }
}

/// Absorption probabilities (not just times) agree: the voter model's
/// P[consensus A] = a/n on every engine.
#[test]
fn voter_absorption_probability_agrees_across_engines() {
    let instance = MajorityInstance::new(12, 6);
    let trials = 300u64;
    for engine in 0..=3usize {
        let seeds = SeedSequence::new(20 + engine as u64);
        let mut wins = 0u64;
        for t in 0..trials {
            let mut rng = seeds.rng_for(t);
            let config = Config::from_input(&Voter, instance.a(), instance.b());
            let out = match engine {
                0 => AgentSim::on_clique(Voter, config).run_to_consensus(&mut rng, u64::MAX),
                1 => CountSim::new(Voter, config).run_to_consensus(&mut rng, u64::MAX),
                2 => JumpSim::new(Voter, config).run_to_consensus(&mut rng, u64::MAX),
                _ => AdaptiveSim::new(Voter, config).run_to_consensus(&mut rng, u64::MAX),
            };
            if out.verdict.opinion() == Some(Opinion::A) {
                wins += 1;
            }
        }
        let frac = wins as f64 / trials as f64;
        assert!(
            (frac - 12.0 / 18.0).abs() < 0.09,
            "engine {engine}: absorption fraction {frac}"
        );
    }
}

/// The approximate τ-leaping engine agrees with the exact engines in mean
/// convergence time within its documented few-percent bias band.
#[test]
fn tau_leap_agrees_statistically() {
    use avc::population::engine::TauLeapSim;
    let instance = MajorityInstance::new(1_400, 600);
    let seeds = SeedSequence::new(77);
    let trials = 40;
    let mut tau_mean = 0.0;
    let mut exact_mean = 0.0;
    for t in 0..trials {
        let mut rng = seeds.rng_for(t);
        let config = Config::from_input(&ThreeState::new(), instance.a(), instance.b());
        tau_mean += TauLeapSim::new(ThreeState::new(), config)
            .run_to_consensus_with(&mut rng, u64::MAX, ConvergenceRule::StateConsensus)
            .parallel_time;
        let mut rng = seeds.child(9).rng_for(t);
        let config = Config::from_input(&ThreeState::new(), instance.a(), instance.b());
        exact_mean += CountSim::new(ThreeState::new(), config)
            .run_to_consensus_with(&mut rng, u64::MAX, ConvergenceRule::StateConsensus)
            .parallel_time;
    }
    tau_mean /= trials as f64;
    exact_mean /= trials as f64;
    let ratio = tau_mean / exact_mean;
    assert!(
        (0.8..1.25).contains(&ratio),
        "tau-leap {tau_mean} vs exact {exact_mean}"
    );
}

/// The jump engine reports identical *final configurations* to the count
/// engine for a deterministic-outcome protocol, and strictly fewer events
/// than steps in a silent-dominated run.
#[test]
fn jump_engine_skips_but_preserves_outcome() {
    let instance = MajorityInstance::new(900, 30);
    let seeds = SeedSequence::new(31);
    let config = Config::from_input(&FourState, instance.a(), instance.b());
    let mut sim = JumpSim::new(FourState, config);
    let mut rng = seeds.rng_for(0);
    let out = sim.run_to_consensus(&mut rng, u64::MAX);
    assert_eq!(out.verdict.opinion(), Some(Opinion::A));
    assert!(
        sim.events() * 10 < sim.steps(),
        "expected heavy skipping: {} events vs {} steps",
        sim.events(),
        sim.steps()
    );
    // Value conservation visible in the final configuration: +1 count minus
    // −1 count must equal the initial margin.
    let counts = sim.counts();
    assert_eq!(counts[0] as i64 - counts[1] as i64, 870);
}
