//! The scenario plane: one declarative description of a run, one builder.
//!
//! A [`Scenario`] names everything that determines a batch of trials —
//! protocol, majority instance, engine, scheduler, fault plan, convergence
//! rule, step budget, and seed policy — as plain data with a canonical JSON
//! round-trip ([`Scenario::canonical`] / [`Scenario::parse`]) and a stable
//! content hash ([`Scenario::hash`], the SHA-256 of the canonical form).
//! Store manifests embed this canonical form, so a recorded cell can be
//! re-run byte-identically from its manifest alone, and scenario files
//! (`examples/scenarios/*.json`) are executable documentation via
//! `avc run`.
//!
//! [`build_erased`] is the **single** place in the workspace where an
//! engine choice becomes a simulator: it matches on [`EngineKind`] and
//! [`SchedulerSpec`] once and returns a boxed
//! [`ErasedChunkedSim`]. The erasure
//! costs one virtual call per *chunk* — the chunk loops behind it are the
//! same `advance_chunk::<SmallRng>` monomorphizations concrete dispatch
//! compiles, so trajectories and RNG streams are bit-identical (pinned by
//! `tests/erased_dispatch.rs`).
//!
//! Protocols are named here ([`ProtocolSpec`]) but *resolved* one crate up:
//! `avc-population` cannot depend on `avc-protocols`, so the
//! spec-to-instance mapping lives in `avc_analysis::harness::ScenarioPlan`.

use crate::engine::{AdaptiveSim, AgentSim, CountSim, ErasedChunkedSim, JumpSim, TauLeapSim};
use crate::faults::{Fault, FaultEvent};
use crate::graph::Graph;
use crate::hash::sha256_hex;
use crate::json::Json;
use crate::protocol::{Opinion, Protocol, StateId};
use crate::sched::{BiasedPair, EpochBatched, GraphRestricted, LaggardStarving};
use crate::spec::{ConvergenceRule, MajorityInstance};
use crate::telemetry::{NoopSink, Sink};
use crate::Config;
use std::fmt;
use std::str::FromStr;

/// Which simulation engine to use for a batch of trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Choose automatically: [`AdaptiveSim`], which is near-optimal across
    /// the dense and sparse regimes.
    #[default]
    Auto,
    /// Per-agent engine ([`AgentSim`] on the clique).
    Agent,
    /// Count-based engine ([`CountSim`]).
    Count,
    /// Jump-chain engine with null-step skipping ([`JumpSim`]).
    Jump,
    /// Explicit adaptive engine ([`AdaptiveSim`]).
    Adaptive,
    /// Approximate Poisson τ-leaping engine ([`TauLeapSim`]). Never
    /// selected automatically; exact semantics are the default everywhere.
    TauLeap,
}

impl EngineKind {
    /// The five concrete engines in bench order (excludes the
    /// [`EngineKind::Auto`] alias, which resolves to `Adaptive`).
    pub const CONCRETE: [EngineKind; 5] = [
        EngineKind::Agent,
        EngineKind::Count,
        EngineKind::Jump,
        EngineKind::Adaptive,
        EngineKind::TauLeap,
    ];

    /// The canonical name, as used in scenario files, store manifests, and
    /// bench reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Auto => "auto",
            EngineKind::Agent => "agent",
            EngineKind::Count => "count",
            EngineKind::Jump => "jump",
            EngineKind::Adaptive => "adaptive",
            EngineKind::TauLeap => "tau_leap",
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    /// Parses a canonical engine name (`tau-leap` is accepted as a legacy
    /// spelling of `tau_leap`).
    fn from_str(s: &str) -> Result<EngineKind, String> {
        match s {
            "auto" => Ok(EngineKind::Auto),
            "agent" => Ok(EngineKind::Agent),
            "count" => Ok(EngineKind::Count),
            "jump" => Ok(EngineKind::Jump),
            "adaptive" => Ok(EngineKind::Adaptive),
            "tau_leap" | "tau-leap" => Ok(EngineKind::TauLeap),
            other => Err(format!(
                "unknown engine `{other}` (auto|agent|count|jump|adaptive|tau_leap)"
            )),
        }
    }
}

/// Which protocol a scenario runs, as pure data.
///
/// The mapping to concrete protocol values lives in `avc-analysis` (this
/// crate cannot depend on `avc-protocols`); adding a protocol means adding
/// a variant here and one resolution arm there — no engine dispatch sites
/// are touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolSpec {
    /// The paper's AVC protocol with maximum weight `m` (odd) and `d`
    /// intermediate levels (`s = m + 2d + 1` states).
    Avc {
        /// Maximum weight (odd, ≥ 1).
        m: u64,
        /// Intermediate levels (≥ 1).
        d: u32,
    },
    /// The \[BEF18] cancel/split/merge exact-majority protocol with `l`
    /// levels (`2l + 4` states).
    Bef {
        /// Number of levels below the input tokens (`1..=32`).
        levels: u32,
    },
    /// The \[DEGSSU21] clocked cancel/split exact-majority protocol with
    /// `l` levels and phase length `t` (`2(l+1)(t+1) + 2` states).
    Degssu {
        /// Number of levels below the input tokens (`1..=32`).
        levels: u32,
        /// Interactions an active token waits at a level (`1..=64`).
        phase: u32,
    },
    /// The four-state exact-majority protocol.
    FourState,
    /// The three-state approximate-majority protocol.
    ThreeState,
    /// The two-state voter model.
    Voter,
}

/// Canonical protocol base names: the single source shared by
/// [`ProtocolSpec`]'s `Display`, `FromStr` (including its error hint), and
/// the CLI help text. Adding a protocol means adding a constant here and
/// a row to [`ProtocolSpec::SYNTAX`] — nothing else enumerates names.
mod protocol_names {
    /// The paper's Average-and-Conquer protocol.
    pub const AVC: &str = "avc";
    /// Berenbrink–Elsässer–Friedetzky (arXiv:1805.05157).
    pub const BEF: &str = "bef";
    /// Doty et al. (arXiv:2106.10201).
    pub const DEGSSU: &str = "degssu";
    /// The four-state exact-majority protocol.
    pub const FOUR_STATE: &str = "four_state";
    /// The three-state approximate-majority protocol.
    pub const THREE_STATE: &str = "three_state";
    /// The two-state voter model.
    pub const VOTER: &str = "voter";
}

/// Parameter bounds mirrored from `avc-protocols` (this crate cannot
/// depend on it); `avc-analysis` cross-checks that the constructors accept
/// exactly what these bounds admit.
const BEF_MAX_LEVELS: u32 = 32;
const DEGSSU_MAX_LEVELS: u32 = 32;
const DEGSSU_MAX_PHASE: u32 = 64;

impl ProtocolSpec {
    /// `(base name, parameter syntax)` of every protocol, in `avc help`
    /// order. The base names are the same constants `Display` and
    /// `FromStr` use, so the list cannot drift from the parser.
    pub const SYNTAX: [(&'static str, &'static str); 6] = [
        (protocol_names::AVC, "(m=..,d=..)"),
        (protocol_names::BEF, "(l=..)"),
        (protocol_names::DEGSSU, "(l=..,t=..)"),
        (protocol_names::FOUR_STATE, ""),
        (protocol_names::THREE_STATE, ""),
        (protocol_names::VOTER, ""),
    ];

    /// The `|`-separated syntax hint used by parse errors and CLI help,
    /// derived from [`ProtocolSpec::SYNTAX`].
    #[must_use]
    pub fn syntax_hint() -> String {
        ProtocolSpec::SYNTAX
            .iter()
            .map(|(name, params)| format!("{name}{params}"))
            .collect::<Vec<_>>()
            .join("|")
    }

    /// The canonical base name (the spelling before any parameter list).
    #[must_use]
    pub fn base_name(&self) -> &'static str {
        match self {
            ProtocolSpec::Avc { .. } => protocol_names::AVC,
            ProtocolSpec::Bef { .. } => protocol_names::BEF,
            ProtocolSpec::Degssu { .. } => protocol_names::DEGSSU,
            ProtocolSpec::FourState => protocol_names::FOUR_STATE,
            ProtocolSpec::ThreeState => protocol_names::THREE_STATE,
            ProtocolSpec::Voter => protocol_names::VOTER,
        }
    }

    /// Number of states `s` of the specified protocol, computed from the
    /// documented formulas (`validate` first; the formulas assume valid
    /// parameters).
    #[must_use]
    pub fn state_count(&self) -> u64 {
        match *self {
            ProtocolSpec::Avc { m, d } => m + 2 * d as u64 + 1,
            ProtocolSpec::Bef { levels } => 2 * (levels as u64 + 1) + 2,
            ProtocolSpec::Degssu { levels, phase } => {
                2 * (levels as u64 + 1) * (phase as u64 + 1) + 2
            }
            ProtocolSpec::FourState => 4,
            ProtocolSpec::ThreeState => 3,
            ProtocolSpec::Voter => 2,
        }
    }

    /// Checks the documented parameter invariants, returning a parse-style
    /// error for violations. Called by `FromStr` (so malformed scenarios
    /// are rejected at parse time, not at protocol construction) and by
    /// [`Scenario::from_json`] as a backstop for programmatically built
    /// values.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ProtocolSpec::Avc { m, d } => {
                if m == 0 || m % 2 == 0 {
                    return Err(format!(
                        "invalid protocol `{self}`: avc m must be odd and >= 1"
                    ));
                }
                if d == 0 {
                    return Err(format!("invalid protocol `{self}`: avc d must be >= 1"));
                }
            }
            ProtocolSpec::Bef { levels } => {
                if levels == 0 || levels > BEF_MAX_LEVELS {
                    return Err(format!(
                        "invalid protocol `{self}`: bef levels must be in 1..={BEF_MAX_LEVELS}"
                    ));
                }
            }
            ProtocolSpec::Degssu { levels, phase } => {
                if levels == 0 || levels > DEGSSU_MAX_LEVELS {
                    return Err(format!(
                        "invalid protocol `{self}`: degssu levels must be in \
                         1..={DEGSSU_MAX_LEVELS}"
                    ));
                }
                if phase == 0 || phase > DEGSSU_MAX_PHASE {
                    return Err(format!(
                        "invalid protocol `{self}`: degssu phase must be in \
                         1..={DEGSSU_MAX_PHASE}"
                    ));
                }
            }
            ProtocolSpec::FourState | ProtocolSpec::ThreeState | ProtocolSpec::Voter => {}
        }
        Ok(())
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self.base_name();
        match self {
            ProtocolSpec::Avc { m, d } => write!(f, "{name}(m={m},d={d})"),
            ProtocolSpec::Bef { levels } => write!(f, "{name}(l={levels})"),
            ProtocolSpec::Degssu { levels, phase } => write!(f, "{name}(l={levels},t={phase})"),
            ProtocolSpec::FourState | ProtocolSpec::ThreeState | ProtocolSpec::Voter => {
                f.write_str(name)
            }
        }
    }
}

impl FromStr for ProtocolSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<ProtocolSpec, String> {
        let parsed = 'parse: {
            match s {
                _ if s == protocol_names::FOUR_STATE => break 'parse ProtocolSpec::FourState,
                _ if s == protocol_names::THREE_STATE => break 'parse ProtocolSpec::ThreeState,
                _ if s == protocol_names::VOTER => break 'parse ProtocolSpec::Voter,
                _ => {}
            }
            if let Some(body) = s
                .strip_prefix(protocol_names::AVC)
                .and_then(|r| r.strip_prefix("(m="))
                .and_then(|r| r.strip_suffix(')'))
            {
                let (m, d) = body
                    .split_once(",d=")
                    .ok_or_else(|| format!("malformed AVC spec `{s}`"))?;
                let m = m.parse().map_err(|_| format!("bad AVC m in `{s}`"))?;
                let d = d.parse().map_err(|_| format!("bad AVC d in `{s}`"))?;
                break 'parse ProtocolSpec::Avc { m, d };
            }
            if let Some(body) = s
                .strip_prefix(protocol_names::DEGSSU)
                .and_then(|r| r.strip_prefix("(l="))
                .and_then(|r| r.strip_suffix(')'))
            {
                let (levels, phase) = body
                    .split_once(",t=")
                    .ok_or_else(|| format!("malformed DEGSSU spec `{s}`"))?;
                let levels = levels
                    .parse()
                    .map_err(|_| format!("bad DEGSSU l in `{s}`"))?;
                let phase = phase
                    .parse()
                    .map_err(|_| format!("bad DEGSSU t in `{s}`"))?;
                break 'parse ProtocolSpec::Degssu { levels, phase };
            }
            if let Some(body) = s
                .strip_prefix(protocol_names::BEF)
                .and_then(|r| r.strip_prefix("(l="))
                .and_then(|r| r.strip_suffix(')'))
            {
                let levels = body.parse().map_err(|_| format!("bad BEF l in `{s}`"))?;
                break 'parse ProtocolSpec::Bef { levels };
            }
            return Err(format!(
                "unknown protocol `{s}` ({})",
                ProtocolSpec::syntax_hint()
            ));
        };
        parsed.validate()?;
        Ok(parsed)
    }
}

/// Which scheduler a scenario runs under, as pure data.
///
/// The `Display` strings are the exact scheduler descriptions the
/// robustness sweep has always written into its manifests and tables.
/// Non-uniform schedulers need per-agent identity, so [`build_erased`]
/// only accepts them with [`EngineKind::Agent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerSpec {
    /// The uniform random scheduler (the default; RNG-stream-identical to
    /// the scheduler-free engines).
    Uniform,
    /// [`BiasedPair`] hammering a hot clique of `hot` agents.
    Biased {
        /// Hot-set size.
        hot: u64,
        /// Probability a step stays inside the hot set.
        bias: f64,
    },
    /// [`LaggardStarving`] the `laggards` highest-numbered agents.
    Starved {
        /// Starved-set size.
        laggards: u64,
        /// Steps between laggard-eligible slots.
        period: u64,
    },
    /// [`EpochBatched`] random perfect matchings.
    Epoch,
    /// [`GraphRestricted`] to the star (all traffic through one center).
    RestrictedStar,
    /// [`GraphRestricted`] to the cycle (worst standard spectral gap).
    RestrictedCycle,
}

impl fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerSpec::Uniform => f.write_str("uniform"),
            SchedulerSpec::Biased { hot, bias } => write!(f, "biased(hot={hot},bias={bias})"),
            SchedulerSpec::Starved { laggards, period } => {
                write!(f, "starved(laggards={laggards},period={period})")
            }
            SchedulerSpec::Epoch => f.write_str("epoch"),
            SchedulerSpec::RestrictedStar => f.write_str("restricted(star)"),
            SchedulerSpec::RestrictedCycle => f.write_str("restricted(cycle)"),
        }
    }
}

impl FromStr for SchedulerSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<SchedulerSpec, String> {
        match s {
            "uniform" => return Ok(SchedulerSpec::Uniform),
            "epoch" => return Ok(SchedulerSpec::Epoch),
            "restricted(star)" => return Ok(SchedulerSpec::RestrictedStar),
            "restricted(cycle)" => return Ok(SchedulerSpec::RestrictedCycle),
            _ => {}
        }
        if let Some(body) = s
            .strip_prefix("biased(hot=")
            .and_then(|r| r.strip_suffix(')'))
        {
            let (hot, bias) = body
                .split_once(",bias=")
                .ok_or_else(|| format!("malformed scheduler spec `{s}`"))?;
            return Ok(SchedulerSpec::Biased {
                hot: hot.parse().map_err(|_| format!("bad hot in `{s}`"))?,
                bias: bias.parse().map_err(|_| format!("bad bias in `{s}`"))?,
            });
        }
        if let Some(body) = s
            .strip_prefix("starved(laggards=")
            .and_then(|r| r.strip_suffix(')'))
        {
            let (laggards, period) = body
                .split_once(",period=")
                .ok_or_else(|| format!("malformed scheduler spec `{s}`"))?;
            return Ok(SchedulerSpec::Starved {
                laggards: laggards
                    .parse()
                    .map_err(|_| format!("bad laggards in `{s}`"))?,
                period: period.parse().map_err(|_| format!("bad period in `{s}`"))?,
            });
        }
        Err(format!(
            "unknown scheduler `{s}` \
             (uniform|biased(hot=..,bias=..)|starved(laggards=..,period=..)|epoch|\
             restricted(star)|restricted(cycle))"
        ))
    }
}

/// A declarative description of one batch of trials.
///
/// Everything that determines the trials' RNG streams and outcomes is a
/// field here; everything that does not (thread count, observers) is
/// deliberately absent, so the canonical form — and therefore the hash a
/// store manifest embeds — is invariant under execution details.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The protocol under test.
    pub protocol: ProtocolSpec,
    /// The majority instance (initial `a`/`b` split).
    pub instance: MajorityInstance,
    /// The simulation engine.
    pub engine: EngineKind,
    /// The scheduler (non-uniform requires [`EngineKind::Agent`]).
    pub scheduler: SchedulerSpec,
    /// Faults to inject, fired between chunks at their scheduled steps.
    pub faults: Vec<FaultEvent>,
    /// The convergence rule each trial runs to.
    pub rule: ConvergenceRule,
    /// Per-trial step budget (`u64::MAX` = unlimited).
    pub max_steps: u64,
    /// Number of independent trials.
    pub runs: u64,
    /// Master seed.
    pub seed: u64,
    /// Optional seed-stream child index: trial `i` draws from
    /// `SeedSequence::new(seed).child(c).rng_for(i)` instead of
    /// `SeedSequence::new(seed).rng_for(i)`. Grid sweeps (robustness) use
    /// this to give each cell its own stream family.
    pub seed_child: Option<u64>,
}

impl Scenario {
    /// A scenario with the harness defaults: engine `auto`, uniform
    /// scheduler, no faults, output consensus, unlimited steps, 101 runs,
    /// seed 0.
    #[must_use]
    pub fn new(protocol: ProtocolSpec, instance: MajorityInstance) -> Scenario {
        Scenario {
            protocol,
            instance,
            engine: EngineKind::Auto,
            scheduler: SchedulerSpec::Uniform,
            faults: Vec::new(),
            rule: ConvergenceRule::OutputConsensus,
            max_steps: u64::MAX,
            runs: 101,
            seed: 0,
            seed_child: None,
        }
    }

    /// Sets the engine.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Scenario {
        self.engine = engine;
        self
    }

    /// Sets the scheduler.
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerSpec) -> Scenario {
        self.scheduler = scheduler;
        self
    }

    /// Sets the convergence rule.
    #[must_use]
    pub fn rule(mut self, rule: ConvergenceRule) -> Scenario {
        self.rule = rule;
        self
    }

    /// Caps each trial at `max_steps` scheduler steps.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Scenario {
        self.max_steps = max_steps;
        self
    }

    /// Sets the number of trials.
    #[must_use]
    pub fn runs(mut self, runs: u64) -> Scenario {
        self.runs = runs;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Routes trial RNGs through child stream `child` of the master seed.
    #[must_use]
    pub fn seed_child(mut self, child: u64) -> Scenario {
        self.seed_child = Some(child);
        self
    }

    /// Appends a fault scheduled at step `at`.
    #[must_use]
    pub fn fault(mut self, at: u64, fault: Fault) -> Scenario {
        self.faults.push(FaultEvent { at_step: at, fault });
        self
    }

    /// The canonical JSON form. Fields at their defaults (uniform
    /// scheduler, no faults, unlimited steps, no seed child) are omitted,
    /// so semantically identical scenarios hash identically.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::Int(1)),
            ("protocol", Json::str(self.protocol.to_string())),
            (
                "instance",
                Json::obj([
                    ("a", u64_json(self.instance.a())),
                    ("b", u64_json(self.instance.b())),
                ]),
            ),
            ("engine", Json::str(self.engine.name())),
            ("rule", rule_json(self.rule)),
            ("runs", u64_json(self.runs)),
            ("seed", u64_json(self.seed)),
        ];
        if self.scheduler != SchedulerSpec::Uniform {
            fields.push(("scheduler", Json::str(self.scheduler.to_string())));
        }
        if !self.faults.is_empty() {
            fields.push((
                "faults",
                Json::Arr(self.faults.iter().map(fault_json).collect()),
            ));
        }
        if self.max_steps != u64::MAX {
            fields.push(("max_steps", u64_json(self.max_steps)));
        }
        if let Some(child) = self.seed_child {
            fields.push(("seed_child", u64_json(child)));
        }
        Json::obj(fields)
    }

    /// The canonical serialization: compact JSON with sorted keys.
    #[must_use]
    pub fn canonical(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// The SHA-256 of [`Scenario::canonical`], in hex.
    #[must_use]
    pub fn hash(&self) -> String {
        sha256_hex(self.canonical().as_bytes())
    }

    /// Reconstructs a scenario from its JSON form (canonical or hand
    /// written: optional fields may be absent, unknown keys are rejected).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn from_json(json: &Json) -> Result<Scenario, String> {
        let obj = json.as_obj().ok_or("scenario must be a JSON object")?;
        for key in obj.keys() {
            const KNOWN: [&str; 11] = [
                "schema",
                "protocol",
                "instance",
                "engine",
                "scheduler",
                "faults",
                "rule",
                "max_steps",
                "runs",
                "seed",
                "seed_child",
            ];
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!("unknown scenario field `{key}`"));
            }
        }
        if let Some(schema) = obj.get("schema") {
            if schema.as_int() != Some(1) {
                return Err("unsupported scenario schema (expected 1)".to_string());
            }
        }
        let str_field = |name: &str| -> Result<&str, String> {
            obj.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("scenario needs a string `{name}` field"))
        };
        let protocol: ProtocolSpec = str_field("protocol")?.parse()?;
        // `FromStr` already validates; repeat as a backstop so scenarios
        // assembled from a programmatically built (unvalidated) spec are
        // caught here too.
        protocol.validate()?;
        let engine = str_field("engine")?.parse()?;
        let instance = obj
            .get("instance")
            .ok_or("scenario needs an `instance` field")?;
        let a = u64_field(instance, "a")?;
        let b = u64_field(instance, "b")?;
        if a + b < 2 {
            return Err(format!("instance needs a + b >= 2 agents (got {a} + {b})"));
        }
        let scheduler = match obj.get("scheduler") {
            Some(s) => s.as_str().ok_or("`scheduler` must be a string")?.parse()?,
            None => SchedulerSpec::Uniform,
        };
        let faults = match obj.get("faults") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(fault_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("`faults` must be an array".to_string()),
            None => Vec::new(),
        };
        let rule = rule_from_json(obj.get("rule").ok_or("scenario needs a `rule` field")?)?;
        let max_steps = match obj.get("max_steps") {
            Some(v) => u64_value(v, "max_steps")?,
            None => u64::MAX,
        };
        let seed_child = match obj.get("seed_child") {
            Some(v) => Some(u64_value(v, "seed_child")?),
            None => None,
        };
        Ok(Scenario {
            protocol,
            instance: MajorityInstance::new(a, b),
            engine,
            scheduler,
            faults,
            rule,
            max_steps,
            runs: u64_field(json, "runs")?,
            seed: u64_field(json, "seed")?,
            seed_child,
        })
    }

    /// Parses a scenario from JSON text (e.g. a scenario file).
    ///
    /// # Errors
    ///
    /// As [`Json::parse`] and [`Scenario::from_json`].
    pub fn parse(text: &str) -> Result<Scenario, String> {
        Scenario::from_json(&Json::parse(text)?)
    }
}

/// Encodes a `u64` losslessly: as a JSON integer when it fits `i64`, else
/// as a decimal string (the canonical JSON layer rejects non-`i64`
/// numbers).
fn u64_json(value: u64) -> Json {
    i64::try_from(value).map_or_else(|_| Json::str(value.to_string()), Json::Int)
}

/// Decodes [`u64_json`]'s output (either spelling).
fn u64_value(json: &Json, what: &str) -> Result<u64, String> {
    match json {
        Json::Int(i) => u64::try_from(*i).map_err(|_| format!("`{what}` must be non-negative")),
        Json::Str(s) => s
            .parse()
            .map_err(|_| format!("`{what}` must be a u64 (got `{s}`)")),
        _ => Err(format!("`{what}` must be an integer")),
    }
}

fn u64_field(json: &Json, name: &str) -> Result<u64, String> {
    u64_value(
        json.get(name)
            .ok_or_else(|| format!("missing `{name}` field"))?,
        name,
    )
}

fn opinion_json(opinion: Opinion) -> Json {
    Json::str(match opinion {
        Opinion::A => "A",
        Opinion::B => "B",
    })
}

fn opinion_from(text: &str) -> Result<Opinion, String> {
    match text {
        "A" => Ok(Opinion::A),
        "B" => Ok(Opinion::B),
        other => Err(format!("unknown opinion `{other}` (A|B)")),
    }
}

fn rule_json(rule: ConvergenceRule) -> Json {
    match rule {
        ConvergenceRule::OutputConsensus => Json::str("output_consensus"),
        ConvergenceRule::StateConsensus => Json::str("state_consensus"),
        ConvergenceRule::Silence => Json::str("silence"),
        ConvergenceRule::OutputCount { opinion, count } => Json::obj([
            ("name", Json::str("output_count")),
            ("opinion", opinion_json(opinion)),
            ("count", u64_json(count)),
        ]),
    }
}

fn rule_from_json(json: &Json) -> Result<ConvergenceRule, String> {
    if let Some(name) = json.as_str() {
        return match name {
            "output_consensus" => Ok(ConvergenceRule::OutputConsensus),
            "state_consensus" => Ok(ConvergenceRule::StateConsensus),
            "silence" => Ok(ConvergenceRule::Silence),
            other => Err(format!(
                "unknown rule `{other}` (output_consensus|state_consensus|silence|output_count)"
            )),
        };
    }
    if json.get("name").and_then(Json::as_str) == Some("output_count") {
        let opinion = opinion_from(
            json.get("opinion")
                .and_then(Json::as_str)
                .ok_or("output_count rule needs an `opinion`")?,
        )?;
        let count = u64_field(json, "count")?;
        return Ok(ConvergenceRule::OutputCount { opinion, count });
    }
    Err("malformed `rule` field".to_string())
}

fn state_json(state: StateId) -> Json {
    Json::Int(i64::from(state))
}

fn state_from(json: &Json, what: &str) -> Result<StateId, String> {
    u64_value(
        json.get(what).ok_or_else(|| format!("missing `{what}`"))?,
        what,
    )
    .and_then(|v| StateId::try_from(v).map_err(|_| format!("`{what}` out of StateId range")))
}

fn agent_from(json: &Json) -> Result<usize, String> {
    u64_field(json, "agent")
        .and_then(|v| usize::try_from(v).map_err(|_| "`agent` out of range".to_string()))
}

fn fault_json(event: &FaultEvent) -> Json {
    let at = ("at", u64_json(event.at_step));
    let agent_fault = |kind: &str, agent: usize| {
        Json::obj([
            at.clone(),
            ("kind", Json::str(kind)),
            ("agent", u64_json(agent as u64)),
        ])
    };
    match event.fault {
        Fault::Corrupt { from, to, agents } => Json::obj([
            at,
            ("kind", Json::str("corrupt")),
            ("from", state_json(from)),
            ("to", state_json(to)),
            ("agents", u64_json(agents)),
        ]),
        Fault::BitFlip { agent, bit } => Json::obj([
            at,
            ("kind", Json::str("bit_flip")),
            ("agent", u64_json(agent as u64)),
            ("bit", Json::Int(i64::from(bit))),
        ]),
        Fault::Crash { agent } => agent_fault("crash", agent),
        Fault::Revive { agent } => agent_fault("revive", agent),
        Fault::StickAt { agent } => agent_fault("stick_at", agent),
        Fault::Unstick { agent } => agent_fault("unstick", agent),
    }
}

fn fault_from_json(json: &Json) -> Result<FaultEvent, String> {
    let at_step = u64_field(json, "at")?;
    let kind = json
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("fault needs a string `kind`")?;
    let fault = match kind {
        "corrupt" => Fault::Corrupt {
            from: state_from(json, "from")?,
            to: state_from(json, "to")?,
            agents: u64_field(json, "agents")?,
        },
        "bit_flip" => Fault::BitFlip {
            agent: agent_from(json)?,
            bit: u64_field(json, "bit")
                .and_then(|v| u32::try_from(v).map_err(|_| "`bit` out of range".to_string()))?,
        },
        "crash" => Fault::Crash {
            agent: agent_from(json)?,
        },
        "revive" => Fault::Revive {
            agent: agent_from(json)?,
        },
        "stick_at" => Fault::StickAt {
            agent: agent_from(json)?,
        },
        "unstick" => Fault::Unstick {
            agent: agent_from(json)?,
        },
        other => {
            return Err(format!(
                "unknown fault kind `{other}` \
                 (corrupt|bit_flip|crash|revive|stick_at|unstick)"
            ))
        }
    };
    Ok(FaultEvent { at_step, fault })
}

/// Builds the erased simulator for an engine/scheduler choice — the single
/// dispatch site turning kind enums into engine values.
///
/// Construction is identical to what the pre-scenario call sites did
/// (`AgentSim::new` on the clique, `CountSim::new`, …), so RNG streams are
/// unchanged. Non-uniform schedulers are monomorphized into [`AgentSim`]'s
/// hot loop and therefore require [`EngineKind::Agent`].
///
/// # Errors
///
/// A description of the unsupported combination (non-uniform scheduler on
/// a count-space engine).
pub fn build_erased<'a, P>(
    protocol: P,
    config: Config,
    engine: EngineKind,
    scheduler: &SchedulerSpec,
) -> Result<Box<dyn ErasedChunkedSim + 'a>, String>
where
    P: Protocol + Clone + 'a,
{
    build_erased_with_sink(protocol, config, engine, scheduler, NoopSink)
}

/// As [`build_erased`], attaching a telemetry sink to the engine.
///
/// With the default [`NoopSink`] the sink hooks compile to nothing, so
/// [`build_erased`] is exactly this function; instrumented callers lend a
/// `&mut CountingSink` (the `Sink for &mut T` forwarding impl).
///
/// # Errors
///
/// As [`build_erased`].
pub fn build_erased_with_sink<'a, P, T>(
    protocol: P,
    config: Config,
    engine: EngineKind,
    scheduler: &SchedulerSpec,
    sink: T,
) -> Result<Box<dyn ErasedChunkedSim + 'a>, String>
where
    P: Protocol + Clone + 'a,
    T: Sink + 'a,
{
    if *scheduler != SchedulerSpec::Uniform && engine != EngineKind::Agent {
        return Err(format!(
            "scheduler `{scheduler}` needs per-agent scheduling — \
             only the `agent` engine supports it (got `{engine}`)"
        ));
    }
    let n = config.population() as usize;
    Ok(match *scheduler {
        SchedulerSpec::Uniform => match engine {
            EngineKind::Agent => {
                Box::new(AgentSim::new(protocol, config, Graph::clique(n)).with_telemetry(sink))
            }
            EngineKind::Count => Box::new(CountSim::new(protocol, config).with_telemetry(sink)),
            EngineKind::Jump => Box::new(JumpSim::new(protocol, config).with_telemetry(sink)),
            EngineKind::TauLeap => Box::new(TauLeapSim::new(protocol, config).with_telemetry(sink)),
            EngineKind::Auto | EngineKind::Adaptive => {
                Box::new(AdaptiveSim::new(protocol, config).with_telemetry(sink))
            }
        },
        SchedulerSpec::Biased { hot, bias } => Box::new(
            AgentSim::with_scheduler(
                protocol,
                config,
                Graph::clique(n),
                BiasedPair::new(hot as usize, bias),
            )
            .with_telemetry(sink),
        ),
        SchedulerSpec::Starved { laggards, period } => Box::new(
            AgentSim::with_scheduler(
                protocol,
                config,
                Graph::clique(n),
                LaggardStarving::new(laggards as usize, period),
            )
            .with_telemetry(sink),
        ),
        SchedulerSpec::Epoch => Box::new(
            AgentSim::with_scheduler(protocol, config, Graph::clique(n), EpochBatched::new())
                .with_telemetry(sink),
        ),
        SchedulerSpec::RestrictedStar => Box::new(
            AgentSim::with_scheduler(
                protocol,
                config,
                Graph::clique(n),
                GraphRestricted::new(Graph::star(n)),
            )
            .with_telemetry(sink),
        ),
        SchedulerSpec::RestrictedCycle => Box::new(
            AgentSim::with_scheduler(
                protocol,
                config,
                Graph::clique(n),
                GraphRestricted::new(Graph::cycle(n)),
            )
            .with_telemetry(sink),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario::new(
            ProtocolSpec::Avc { m: 7, d: 1 },
            MajorityInstance::new(31, 10),
        )
        .engine(EngineKind::Agent)
        .scheduler(SchedulerSpec::RestrictedStar)
        .max_steps(10_000_000)
        .runs(6)
        .seed(77)
        .seed_child(4)
        .fault(
            41,
            Fault::Corrupt {
                from: 0,
                to: 1,
                agents: 2,
            },
        )
    }

    #[test]
    fn canonical_round_trips() {
        let scenario = sample();
        let reparsed = Scenario::parse(&scenario.canonical()).unwrap();
        assert_eq!(reparsed, scenario);
        assert_eq!(reparsed.canonical(), scenario.canonical());
        assert_eq!(reparsed.hash(), scenario.hash());
    }

    #[test]
    fn defaults_are_omitted_from_canonical_form() {
        let scenario = Scenario::new(ProtocolSpec::FourState, MajorityInstance::new(6, 5));
        let canonical = scenario.canonical();
        for absent in ["scheduler", "faults", "max_steps", "seed_child"] {
            assert!(!canonical.contains(absent), "{absent} in {canonical}");
        }
        assert_eq!(Scenario::parse(&canonical).unwrap(), scenario);
    }

    #[test]
    fn kind_names_round_trip() {
        for engine in [EngineKind::Auto, EngineKind::Agent, EngineKind::TauLeap] {
            assert_eq!(engine.name().parse::<EngineKind>().unwrap(), engine);
        }
        assert_eq!(
            "tau-leap".parse::<EngineKind>().unwrap(),
            EngineKind::TauLeap
        );
        for protocol in [
            ProtocolSpec::Avc { m: 17, d: 3 },
            ProtocolSpec::Bef { levels: 10 },
            ProtocolSpec::Degssu {
                levels: 10,
                phase: 4,
            },
            ProtocolSpec::ThreeState,
            ProtocolSpec::Voter,
        ] {
            assert_eq!(
                protocol.to_string().parse::<ProtocolSpec>().unwrap(),
                protocol
            );
        }
        for scheduler in [
            SchedulerSpec::Uniform,
            SchedulerSpec::Biased { hot: 4, bias: 0.5 },
            SchedulerSpec::Starved {
                laggards: 10,
                period: 16,
            },
            SchedulerSpec::RestrictedCycle,
        ] {
            assert_eq!(
                scheduler.to_string().parse::<SchedulerSpec>().unwrap(),
                scheduler
            );
        }
    }

    #[test]
    fn rejects_unknown_fields_and_schemas() {
        assert!(Scenario::parse(r#"{"bogus": 1}"#).is_err());
        let mut json = sample().to_json();
        if let Json::Obj(map) = &mut json {
            map.insert("schema".to_string(), Json::Int(2));
        }
        assert!(Scenario::from_json(&json).is_err());
    }

    #[test]
    fn builder_rejects_scheduler_on_count_engines() {
        use crate::protocol::tests_support::Voter;
        let config = Config::from_input(&Voter, 5, 3);
        let err = build_erased(Voter, config, EngineKind::Count, &SchedulerSpec::Epoch)
            .err()
            .expect("count + epoch must be rejected");
        assert!(err.contains("agent"), "{err}");
    }

    #[test]
    fn invalid_avc_parameters_are_rejected_at_parse_time() {
        // The two documented-invariant violations that used to slip
        // through and panic later at protocol construction.
        assert_eq!(
            "avc(m=2,d=0)".parse::<ProtocolSpec>().unwrap_err(),
            "invalid protocol `avc(m=2,d=0)`: avc m must be odd and >= 1"
        );
        assert_eq!(
            "avc(m=0,d=1)".parse::<ProtocolSpec>().unwrap_err(),
            "invalid protocol `avc(m=0,d=1)`: avc m must be odd and >= 1"
        );
        assert_eq!(
            "avc(m=3,d=0)".parse::<ProtocolSpec>().unwrap_err(),
            "invalid protocol `avc(m=3,d=0)`: avc d must be >= 1"
        );
        assert!("avc(m=3,d=1)".parse::<ProtocolSpec>().is_ok());
    }

    #[test]
    fn invalid_rival_parameters_are_rejected_at_parse_time() {
        assert!("bef(l=0)".parse::<ProtocolSpec>().is_err());
        assert!("bef(l=33)".parse::<ProtocolSpec>().is_err());
        assert!("bef(l=32)".parse::<ProtocolSpec>().is_ok());
        assert!("degssu(l=0,t=4)".parse::<ProtocolSpec>().is_err());
        assert!("degssu(l=4,t=0)".parse::<ProtocolSpec>().is_err());
        assert!("degssu(l=4,t=65)".parse::<ProtocolSpec>().is_err());
        assert!("degssu(l=32,t=64)".parse::<ProtocolSpec>().is_ok());
    }

    #[test]
    fn scenario_json_rejects_invalid_avc_parameters() {
        let mut scenario = sample();
        scenario.protocol = ProtocolSpec::Avc { m: 2, d: 0 };
        let err = Scenario::parse(&scenario.canonical()).unwrap_err();
        assert!(err.contains("avc m must be odd"), "{err}");
    }

    #[test]
    fn unknown_protocol_hint_tracks_the_syntax_list() {
        let err = "no_such_protocol".parse::<ProtocolSpec>().unwrap_err();
        assert_eq!(
            err,
            format!(
                "unknown protocol `no_such_protocol` ({})",
                ProtocolSpec::syntax_hint()
            )
        );
        // Every syntax row's base name is what `Display` prints for the
        // matching variant, so the hint cannot drift from the parser.
        for spec in [
            ProtocolSpec::Avc { m: 1, d: 1 },
            ProtocolSpec::Bef { levels: 1 },
            ProtocolSpec::Degssu {
                levels: 1,
                phase: 1,
            },
            ProtocolSpec::FourState,
            ProtocolSpec::ThreeState,
            ProtocolSpec::Voter,
        ] {
            assert!(
                ProtocolSpec::SYNTAX
                    .iter()
                    .any(|(name, _)| *name == spec.base_name()),
                "{spec} missing from SYNTAX"
            );
            assert!(spec.to_string().starts_with(spec.base_name()));
        }
    }

    #[test]
    fn state_count_formulas() {
        assert_eq!(ProtocolSpec::Avc { m: 15, d: 1 }.state_count(), 18);
        assert_eq!(ProtocolSpec::Bef { levels: 8 }.state_count(), 20);
        assert_eq!(
            ProtocolSpec::Degssu {
                levels: 3,
                phase: 2
            }
            .state_count(),
            26
        );
        assert_eq!(ProtocolSpec::FourState.state_count(), 4);
        assert_eq!(ProtocolSpec::ThreeState.state_count(), 3);
        assert_eq!(ProtocolSpec::Voter.state_count(), 2);
    }
}
