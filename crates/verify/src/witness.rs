//! Witness schedules: concrete interaction sequences proving reachability.
//!
//! The paper's lower-bound arguments repeatedly say "there exists a
//! schedule of interactions leading to …". This module makes such claims
//! tangible: it extracts a *shortest* explicit interaction sequence (as
//! ordered species pairs) from the reachability graph, which can then be
//! replayed step by step against any configuration with
//! [`replay_schedule`]. Uses include producing counterexample traces for
//! incorrect protocols (e.g. the voter model reaching the minority
//! consensus) and constructive certificates for property 3 of Theorem B.1.

use crate::reach::StateSpaceTooLarge;
use avc_population::{Config, Protocol, StateId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// One scheduled interaction: the ordered species pair that reacts.
pub type Interaction = (StateId, StateId);

/// Finds a shortest interaction schedule from `initial` to some
/// configuration satisfying `goal`, by BFS over the configuration graph.
///
/// Returns `None` if no reachable configuration satisfies the goal.
///
/// # Errors
///
/// Returns [`StateSpaceTooLarge`] if more than `max_configs` configurations
/// are explored.
pub fn find_schedule<P: Protocol>(
    protocol: &P,
    initial: &Config,
    max_configs: usize,
    goal: impl Fn(&[u64]) -> bool,
) -> Result<Option<Vec<Interaction>>, StateSpaceTooLarge> {
    let root = initial.as_slice().to_vec();
    if goal(&root) {
        return Ok(Some(Vec::new()));
    }
    let mut configs: Vec<Vec<u64>> = vec![root.clone()];
    let mut parent: Vec<Option<(usize, Interaction)>> = vec![None];
    let mut index: HashMap<Vec<u64>, usize> = HashMap::from([(root, 0)]);

    let mut frontier = 0;
    while frontier < configs.len() {
        let current = configs[frontier].clone();
        let live: Vec<StateId> = current
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i as StateId)
            .collect();
        for &i in &live {
            for &j in &live {
                if i == j && current[i as usize] < 2 {
                    continue;
                }
                let (x, y) = protocol.transition(i, j);
                if (x == i && y == j) || (x == j && y == i) {
                    continue;
                }
                let mut next = current.clone();
                next[i as usize] -= 1;
                next[j as usize] -= 1;
                next[x as usize] += 1;
                next[y as usize] += 1;
                if index.contains_key(&next) {
                    continue;
                }
                let id = configs.len();
                if id >= max_configs {
                    return Err(StateSpaceTooLarge { limit: max_configs });
                }
                index.insert(next.clone(), id);
                parent.push(Some((frontier, (i, j))));
                let reached_goal = goal(&next);
                configs.push(next);
                if reached_goal {
                    // Reconstruct the interaction sequence.
                    let mut schedule = Vec::new();
                    let mut at = id;
                    while let Some((prev, action)) = parent[at] {
                        schedule.push(action);
                        at = prev;
                    }
                    schedule.reverse();
                    return Ok(Some(schedule));
                }
            }
        }
        frontier += 1;
    }
    Ok(None)
}

/// A schedule step could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the offending step.
    pub step: usize,
    /// The interaction that was not applicable.
    pub interaction: Interaction,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule step {} not applicable: no agent pair in states ({}, {})",
            self.step, self.interaction.0, self.interaction.1
        )
    }
}

impl Error for ReplayError {}

/// Replays an interaction schedule from a configuration, validating each
/// step's applicability, and returns the final configuration.
///
/// # Errors
///
/// Returns [`ReplayError`] when a step names a species pair that is not
/// present in the current configuration.
pub fn replay_schedule<P: Protocol>(
    protocol: &P,
    initial: &Config,
    schedule: &[Interaction],
) -> Result<Config, ReplayError> {
    let mut counts = initial.as_slice().to_vec();
    for (step, &(i, j)) in schedule.iter().enumerate() {
        let available = if i == j {
            counts[i as usize] >= 2
        } else {
            counts[i as usize] >= 1 && counts[j as usize] >= 1
        };
        if !available {
            return Err(ReplayError {
                step,
                interaction: (i, j),
            });
        }
        let (x, y) = protocol.transition(i, j);
        counts[i as usize] -= 1;
        counts[j as usize] -= 1;
        counts[x as usize] += 1;
        counts[y as usize] += 1;
    }
    Ok(Config::from_counts(counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_population::Opinion;
    use avc_protocols::{Avc, FourState, Voter};

    #[test]
    fn voter_counterexample_schedule_reaches_minority_consensus() {
        // Majority A (3 vs 2), yet a schedule drives everyone to B — the
        // witness for the voter model's non-exactness.
        let initial = Config::from_input(&Voter, 3, 2);
        let schedule = find_schedule(&Voter, &initial, 100_000, |c| c[0] == 0)
            .unwrap()
            .expect("the voter model can be driven to the minority");
        let final_config = replay_schedule(&Voter, &initial, &schedule).unwrap();
        assert_eq!(final_config.as_slice(), &[0, 5]);
        // A shortest such schedule flips one A per step.
        assert_eq!(schedule.len(), 3);
    }

    #[test]
    fn no_schedule_makes_four_state_err() {
        let initial = Config::from_input(&FourState, 3, 2);
        let p = FourState;
        // Goal: all outputs B (counterexample to exactness). Must not exist.
        let schedule = find_schedule(&p, &initial, 1_000_000, |c| {
            c.iter()
                .enumerate()
                .all(|(s, &count)| count == 0 || p.output(s as StateId) == Opinion::B)
        })
        .unwrap();
        assert_eq!(schedule, None);
    }

    #[test]
    fn avc_has_a_constructive_convergence_certificate() {
        // Property 3 of Theorem B.1, constructively: an explicit schedule to
        // output consensus on the majority.
        let avc = Avc::new(3, 1).unwrap();
        let initial = Config::from_input(&avc, 3, 2);
        let schedule = find_schedule(&avc, &initial, 1_000_000, |c| {
            c.iter()
                .enumerate()
                .all(|(s, &count)| count == 0 || avc.output(s as StateId) == Opinion::A)
        })
        .unwrap()
        .expect("AVC can always converge to the majority");
        let final_config = replay_schedule(&avc, &initial, &schedule).unwrap();
        assert_eq!(
            final_config.count_with_output(&avc, Opinion::A),
            5,
            "replayed endpoint must be all-A"
        );
        assert!(!schedule.is_empty());
    }

    #[test]
    fn trivial_goal_gives_empty_schedule() {
        let initial = Config::from_input(&Voter, 2, 1);
        let schedule = find_schedule(&Voter, &initial, 100, |_| true)
            .unwrap()
            .unwrap();
        assert!(schedule.is_empty());
        let replayed = replay_schedule(&Voter, &initial, &schedule).unwrap();
        assert_eq!(replayed.as_slice(), initial.as_slice());
    }

    #[test]
    fn replay_rejects_inapplicable_steps() {
        let initial = Config::from_input(&Voter, 2, 0);
        // No B agent exists, so interaction (1, 0) cannot fire.
        let err = replay_schedule(&Voter, &initial, &[(1, 0)]).unwrap_err();
        assert_eq!(err.step, 0);
        assert_eq!(err.interaction, (1, 0));
        assert!(err.to_string().contains("not applicable"));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let avc = Avc::new(9, 2).unwrap();
        let initial = Config::from_input(&avc, 6, 6);
        let result = find_schedule(&avc, &initial, 5, |_| false);
        assert!(result.is_err());
    }
}
