//! Protocol robustness under adversarial schedulers and injected faults.
//!
//! The paper proves AVC exact under the uniform scheduler, and the
//! four-state baseline is exact under any *fair* scheduler \[DV12]. This
//! experiment probes both protocols across a grid of scenarios: four
//! adversarial (but fair, fault-free) schedulers from
//! [`avc_population::sched`], plus crash/revive and state-corruption fault
//! scenarios from [`avc_population::faults`]. Reported per cell: the
//! wrong-consensus fraction (exactness violations), timeout count, and the
//! convergence-time summary, from which the export derives per-scenario
//! *slowdown factors* relative to the uniform baseline.
//!
//! Headline structure of the results: both protocols stay exact in every
//! cell; AVC additionally *stalls* (times out in a frozen mixed
//! configuration, never answering wrong) when the schedule is restricted
//! to a sparse interaction graph, while the four-state protocol converges
//! on any connected graph per \[DV12].
//!
//! Every scenario is deterministic per seed: schedulers draw all
//! randomness from the trial RNG, and fault injection draws none, so a
//! cell replays bit-identically — the property the checkpoint/resume
//! byte-identity of the `robustness` sweep spec rests on.

use crate::harness::{EngineKind, Parallelism, ScenarioPlan, StatsCollector};
use crate::stats::Summary;
use crate::table::{fmt_num, Table};
use avc_population::faults::Fault;
use avc_population::{
    MajorityInstance, Opinion, Protocol, ProtocolSpec, Scenario as RunScenario, SchedulerSpec,
};
use avc_protocols::{Avc, FourState};

/// Protocols measured, in cell order. AVC runs with `m = 7, d = 1`
/// (10 states — exactness is parameter-independent; speed is not the
/// subject here).
pub const PROTOCOLS: [&str; 2] = ["avc", "four_state"];

/// Parameters for the robustness experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Population size (odd, so the majority instance is never a tie).
    pub n: u64,
    /// Margin.
    pub epsilon: f64,
    /// Runs per (protocol, scenario) cell.
    pub runs: u64,
    /// Master seed.
    pub seed: u64,
    /// Step budget per run (slow scenarios are reported as timeouts).
    pub max_steps: u64,
    /// Thread sharding of each cell's trials (results are unaffected).
    pub parallelism: Parallelism,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            n: 201,
            epsilon: 0.2,
            runs: 25,
            seed: 77,
            max_steps: 100_000_000,
            parallelism: Parallelism::default(),
        }
    }
}

impl Config {
    /// A downscaled configuration for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Config {
        Config {
            n: 41,
            epsilon: 0.5,
            runs: 6,
            seed: 77,
            max_steps: 10_000_000,
            parallelism: Parallelism::default(),
        }
    }

    /// Builds a configuration from parsed CLI arguments (`--quick`, `--n`,
    /// `--runs`, `--seed`, `--serial`/`--threads`).
    #[must_use]
    pub fn from_args(args: &crate::cli::Args) -> Config {
        let mut config = if args.flag("quick") {
            Config::quick()
        } else {
            Config::default()
        };
        config.n = args.get_u64("n", config.n);
        config.runs = args.get_u64("runs", config.runs);
        config.seed = args.get_u64("seed", config.seed);
        config.parallelism = args.parallelism();
        config
    }
}

/// How one scenario perturbs the run (parameters already resolved for a
/// concrete population size).
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// The uniform baseline every slowdown factor is measured against.
    Uniform,
    /// [`BiasedPair`](avc_population::sched::BiasedPair) hammering a hot clique of `hot` agents.
    Biased {
        /// Hot-set size.
        hot: usize,
        /// Probability a step stays inside the hot set.
        bias: f64,
    },
    /// [`LaggardStarving`](avc_population::sched::LaggardStarving) the `laggards` highest-numbered agents.
    Starved {
        /// Starved-set size.
        laggards: usize,
        /// Steps between laggard-eligible slots.
        period: u64,
    },
    /// [`EpochBatched`](avc_population::sched::EpochBatched) random perfect matchings.
    Epoch,
    /// [`GraphRestricted`](avc_population::sched::GraphRestricted) to the star (all traffic through one center).
    StarRestricted,
    /// [`GraphRestricted`](avc_population::sched::GraphRestricted) to the cycle (worst standard spectral gap).
    CycleRestricted,
    /// Crash `agents` agents at step `crash_at`, revive them all at
    /// `revive_at` (uniform scheduling throughout).
    CrashRevive {
        /// Number of crashed agents (ids `0..agents`).
        agents: usize,
        /// Crash step.
        crash_at: u64,
        /// Revive step.
        revive_at: u64,
    },
    /// At step `at`, corrupt `agents` agents from the initial-A state to
    /// the initial-B state (uniform scheduling throughout).
    Corrupt {
        /// Number of corrupted agents (clamped to the source count).
        agents: u64,
        /// Corruption step.
        at: u64,
    },
}

/// One row of the scenario grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Short cell label (`uniform`, `biased`, `crash_revive`, …).
    pub label: String,
    /// The perturbation.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// Whether the scenario injects faults (as opposed to only skewing
    /// the schedule).
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        matches!(
            self.kind,
            ScenarioKind::CrashRevive { .. } | ScenarioKind::Corrupt { .. }
        )
    }

    /// The scenario's scheduler, as declarative scenario data. Fault
    /// scenarios run under uniform scheduling.
    #[must_use]
    pub fn scheduler(&self) -> SchedulerSpec {
        match self.kind {
            ScenarioKind::Biased { hot, bias } => SchedulerSpec::Biased {
                hot: hot as u64,
                bias,
            },
            ScenarioKind::Starved { laggards, period } => SchedulerSpec::Starved {
                laggards: laggards as u64,
                period,
            },
            ScenarioKind::Epoch => SchedulerSpec::Epoch,
            ScenarioKind::StarRestricted => SchedulerSpec::RestrictedStar,
            ScenarioKind::CycleRestricted => SchedulerSpec::RestrictedCycle,
            ScenarioKind::Uniform
            | ScenarioKind::CrashRevive { .. }
            | ScenarioKind::Corrupt { .. } => SchedulerSpec::Uniform,
        }
    }

    /// The scenario's scheduler description, for manifests and tables —
    /// the canonical [`SchedulerSpec`] rendering.
    #[must_use]
    pub fn scheduler_spec(&self) -> String {
        self.scheduler().to_string()
    }

    /// The scenario's fault-plan description, for manifests and tables
    /// (`none` for fault-free scenarios).
    #[must_use]
    pub fn fault_spec(&self) -> String {
        match &self.kind {
            ScenarioKind::CrashRevive {
                agents,
                crash_at,
                revive_at,
            } => format!("crash_revive(agents={agents},crash_at={crash_at},revive_at={revive_at})"),
            ScenarioKind::Corrupt { agents, at } => {
                format!("corrupt(agents={agents},at={at},A->B)")
            }
            _ => "none".to_string(),
        }
    }
}

/// The scenario grid at population `n` (parameters scale with `n`).
#[must_use]
pub fn scenarios(n: u64) -> Vec<Scenario> {
    let mk = |label: &str, kind| Scenario {
        label: label.to_string(),
        kind,
    };
    vec![
        mk("uniform", ScenarioKind::Uniform),
        mk(
            "biased",
            ScenarioKind::Biased {
                hot: (n as usize / 10).max(2),
                bias: 0.5,
            },
        ),
        mk(
            "starved",
            ScenarioKind::Starved {
                laggards: (n as usize / 4).max(1),
                period: 16,
            },
        ),
        mk("epoch", ScenarioKind::Epoch),
        mk("star_restricted", ScenarioKind::StarRestricted),
        mk("cycle_restricted", ScenarioKind::CycleRestricted),
        mk(
            "crash_revive",
            ScenarioKind::CrashRevive {
                agents: (n as usize / 10).max(1),
                crash_at: n,
                revive_at: 20 * n,
            },
        ),
        mk(
            "corrupt",
            ScenarioKind::Corrupt {
                agents: (n / 20).max(1),
                at: n,
            },
        ),
    ]
}

/// One (protocol, scenario) cell's measurement.
///
/// Exactness and convergence are reported separately: a run that
/// *converges to the wrong majority* violates exactness
/// (`wrong_fraction`), while a run that never converges within the step
/// budget is a `timeout` — AVC under graph-restricted schedules stalls in
/// mixed configurations (its transition structure assumes the clique) but
/// never reports a wrong answer.
#[derive(Debug, Clone)]
pub struct Point {
    /// Protocol name (an entry of [`PROTOCOLS`]).
    pub protocol: String,
    /// The scenario measured.
    pub scenario: Scenario,
    /// Fraction of runs converging to the *wrong* majority (exactness
    /// violations).
    pub wrong_fraction: f64,
    /// Runs that hit the step budget without converging.
    pub timeouts: u64,
    /// Parallel-time summary over converged runs (`None` if every run hit
    /// the budget).
    pub summary: Option<Summary>,
    /// Runs attempted.
    pub runs: u64,
}

/// Lowers one grid cell to a declarative run scenario; `pi` indexes
/// [`PROTOCOLS`], `si` indexes [`scenarios`]`(config.n)`.
///
/// The scenario is self-contained: it carries the cell's seed family
/// (`seed_child = pi * num_scenarios + si`), so executing it — here, from a
/// store manifest, or from a serialized scenario file — replays the cell
/// bit-identically. Fault scenarios resolve the corruption's concrete state
/// ids (initial-A → initial-B) from the protocol here, so the scenario
/// needs no protocol knowledge to run.
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
pub fn cell_scenario(config: &Config, pi: usize, si: usize) -> RunScenario {
    let grid = scenarios(config.n);
    let num_scenarios = grid.len();
    let scenario = grid.into_iter().nth(si).expect("scenario index in range");
    let inst = MajorityInstance::with_margin(config.n, config.epsilon);
    let protocol = match PROTOCOLS[pi] {
        "avc" => ProtocolSpec::Avc { m: 7, d: 1 },
        "four_state" => ProtocolSpec::FourState,
        other => unreachable!("unknown protocol {other}"),
    };
    let mut run = RunScenario::new(protocol, inst)
        .engine(EngineKind::Agent)
        .scheduler(scenario.scheduler())
        .max_steps(config.max_steps)
        .runs(config.runs)
        .seed(config.seed)
        .seed_child((pi * num_scenarios + si) as u64);
    match scenario.kind {
        ScenarioKind::CrashRevive {
            agents,
            crash_at,
            revive_at,
        } => {
            for agent in 0..agents {
                run = run
                    .fault(crash_at, Fault::Crash { agent })
                    .fault(revive_at, Fault::Revive { agent });
            }
        }
        ScenarioKind::Corrupt { agents, at } => {
            let (from, to) = match protocol {
                ProtocolSpec::Avc { m, d } => {
                    let avc = Avc::new(m, d).expect("valid parameters");
                    (avc.input(Opinion::A), avc.input(Opinion::B))
                }
                _ => (FourState.input(Opinion::A), FourState.input(Opinion::B)),
            };
            run = run.fault(at, Fault::Corrupt { from, to, agents });
        }
        _ => {}
    }
    run
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &Config) -> Vec<Point> {
    run_with_stats(config, &StatsCollector::new())
}

/// As [`run`], folding per-cell throughput telemetry into `stats`.
#[must_use]
pub fn run_with_stats(config: &Config, stats: &StatsCollector) -> Vec<Point> {
    let num_scenarios = scenarios(config.n).len();
    (0..PROTOCOLS.len())
        .flat_map(|pi| (0..num_scenarios).map(move |si| (pi, si)))
        .map(|(pi, si)| run_point(config, pi, si, stats))
        .collect()
}

/// Runs one cell through the shared [`ScenarioPlan`] harness; `pi` indexes
/// [`PROTOCOLS`], `si` indexes [`scenarios`]`(config.n)`. Trial seeds
/// derive from `(pi, si)` alone (via the scenario's `seed_child`), so a
/// cell reruns identically in isolation (the basis of checkpoint/resume).
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
pub fn run_point(config: &Config, pi: usize, si: usize, stats: &StatsCollector) -> Point {
    let scenario = scenarios(config.n)
        .into_iter()
        .nth(si)
        .expect("scenario index in range");
    let inst = MajorityInstance::with_margin(config.n, config.epsilon);
    let name = PROTOCOLS[pi];
    let results = ScenarioPlan::new(cell_scenario(config, pi, si))
        .parallelism(config.parallelism)
        .run_with_stats(stats);
    let outcomes = results.outcomes();
    let expected = inst.winner().expect("positive margin has a winner");
    let wrong = outcomes
        .iter()
        .filter(|o| o.verdict.is_consensus() && !o.verdict.is_correct(expected))
        .count() as u64;
    let timeouts = outcomes
        .iter()
        .filter(|o| !o.verdict.is_consensus())
        .count() as u64;
    let times: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.verdict.is_consensus())
        .map(|o| o.parallel_time)
        .collect();
    let summary = (!times.is_empty()).then(|| Summary::from_samples(&times));
    Point {
        protocol: name.to_string(),
        scenario,
        wrong_fraction: wrong as f64 / config.runs as f64,
        timeouts,
        summary,
        runs: config.runs,
    }
}

/// Per-scenario slowdown factors relative to each protocol's uniform
/// baseline: `(protocol, scenario_label, mean / uniform_mean)`. Cells
/// whose baseline or own mean is unavailable are omitted.
#[must_use]
pub fn slowdowns(points: &[Point]) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for protocol in PROTOCOLS {
        let baseline = points
            .iter()
            .find(|p| p.protocol == protocol && p.scenario.label == "uniform")
            .and_then(|p| p.summary.as_ref().map(|s| s.mean));
        let Some(base) = baseline else { continue };
        for p in points.iter().filter(|p| p.protocol == protocol) {
            if p.scenario.label == "uniform" {
                continue;
            }
            if let Some(s) = &p.summary {
                out.push((
                    protocol.to_string(),
                    p.scenario.label.clone(),
                    s.mean / base,
                ));
            }
        }
    }
    out
}

/// Renders the result table.
#[must_use]
pub fn table(points: &[Point], config: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Robustness under adversarial schedulers and faults (n = {}, eps = {}, {} runs)",
            config.n, config.epsilon, config.runs
        ),
        [
            "protocol",
            "scenario",
            "scheduler",
            "faults",
            "wrong_consensus",
            "mean_parallel_time",
            "std_dev",
            "timeouts",
            "runs",
        ],
    );
    for p in points {
        let (mean, std) = match &p.summary {
            Some(s) => (fmt_num(s.mean), fmt_num(s.std_dev)),
            None => ("-".to_string(), "-".to_string()),
        };
        t.push_row([
            p.protocol.clone(),
            p.scenario.label.clone(),
            p.scenario.scheduler_spec(),
            p.scenario.fault_spec(),
            fmt_num(p.wrong_fraction),
            mean,
            std,
            p.timeouts.to_string(),
            p.runs.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_is_exact_where_the_paper_says_so() {
        let config = Config::quick();
        let points = run(&config);
        assert_eq!(points.len(), PROTOCOLS.len() * scenarios(config.n).len());
        for p in &points {
            // Exactness: no scenario — adversarial or faulted — may
            // produce a wrong consensus at these fault magnitudes.
            assert_eq!(
                p.wrong_fraction, 0.0,
                "{} answered wrong under {}",
                p.protocol, p.scenario.label
            );
            // four_state converges under every scenario (\[DV12] holds on
            // any connected graph), as does AVC under the clique-fair
            // schedulers; AVC stalls when the schedule is restricted to a
            // sparse graph — its transition structure assumes the clique.
            let avc_stalls = p.protocol == "avc"
                && matches!(
                    p.scenario.kind,
                    ScenarioKind::StarRestricted | ScenarioKind::CycleRestricted
                );
            if avc_stalls {
                assert_eq!(p.timeouts, p.runs, "AVC unexpectedly converged");
            } else {
                assert_eq!(
                    p.timeouts, 0,
                    "{} timed out under {}",
                    p.protocol, p.scenario.label
                );
            }
        }
        // Slowdowns resolve against the uniform baselines.
        let factors = slowdowns(&points);
        assert!(factors
            .iter()
            .any(|(p, s, _)| p == "four_state" && s == "cycle_restricted"));
    }

    #[test]
    fn cells_rerun_identically_in_isolation() {
        let config = Config::quick();
        let stats = StatsCollector::new();
        let a = run_point(&config, 1, 2, &stats);
        let b = run_point(&config, 1, 2, &stats);
        assert_eq!(a.wrong_fraction, b.wrong_fraction);
        assert_eq!(a.timeouts, b.timeouts);
        assert_eq!(
            a.summary.as_ref().map(|s| s.mean),
            b.summary.as_ref().map(|s| s.mean)
        );
    }
}
