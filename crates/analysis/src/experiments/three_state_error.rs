//! The three-state protocol's error law (behind Figure 3, right).
//!
//! \[PVV09] prove the three-state protocol converges to the wrong state with
//! probability `exp(−D((1+ε)/2 ‖ 1/2)·n) ≈ exp(−ε²n/2)` for small `ε`. This
//! experiment measures the empirical error fraction across margins and
//! populations and reports it against the theory, verifying the
//! approximation regime in which Figure 3 (right) shows sizable error.

use crate::harness::{EngineKind, Parallelism, ScenarioPlan, StatsCollector};
use crate::table::{fmt_num, Table};
use avc_population::{ConvergenceRule, MajorityInstance, ProtocolSpec, Scenario};

/// Parameters for the error-law experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Population sizes.
    pub ns: Vec<u64>,
    /// Margins to sweep.
    pub epsilons: Vec<f64>,
    /// Runs per `(n, ε)` point (error estimation needs many).
    pub runs: u64,
    /// Master seed.
    pub seed: u64,
    /// Thread sharding of each point's trials (results are unaffected).
    pub parallelism: Parallelism,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            ns: vec![1_001, 10_001],
            epsilons: vec![0.001, 0.005, 0.01, 0.02, 0.03, 0.05, 0.08],
            runs: 400,
            seed: 55,
            parallelism: Parallelism::default(),
        }
    }
}

impl Config {
    /// A downscaled configuration for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Config {
        Config {
            ns: vec![1_001],
            epsilons: vec![0.01, 0.1],
            runs: 60,
            seed: 55,
            parallelism: Parallelism::default(),
        }
    }

    /// Builds a configuration from parsed CLI arguments (`--quick`, `--ns`,
    /// `--runs`, `--seed`, `--serial`/`--threads`).
    #[must_use]
    pub fn from_args(args: &crate::cli::Args) -> Config {
        let mut config = if args.flag("quick") {
            Config::quick()
        } else {
            Config::default()
        };
        config.ns = args.get_u64_list("ns", &config.ns);
        config.runs = args.get_u64("runs", config.runs);
        config.seed = args.get_u64("seed", config.seed);
        config.parallelism = args.parallelism();
        config
    }
}

/// One `(n, ε)` measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Population size.
    pub n: u64,
    /// Achieved margin.
    pub epsilon: f64,
    /// Empirical fraction of runs converging to the minority state.
    pub error_fraction: f64,
    /// The Kullback–Leibler bound `exp(−D((1+ε)/2 ‖ 1/2)·n)` of \[PVV09].
    pub kl_bound: f64,
    /// Number of runs.
    pub runs: u64,
}

/// The KL divergence `D(p ‖ q)` between Bernoulli distributions.
///
/// # Panics
///
/// Panics unless both arguments lie strictly inside `(0, 1)`.
#[must_use]
pub fn bernoulli_kl(p: f64, q: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0 && q > 0.0 && q < 1.0,
        "need p, q in (0,1)"
    );
    p * (p / q).ln() + (1.0 - p) * ((1.0 - p) / (1.0 - q)).ln()
}

/// Runs the sweep.
#[must_use]
pub fn run(config: &Config) -> Vec<Point> {
    run_with_stats(config, &StatsCollector::new())
}

/// As [`run`], folding per-point throughput telemetry into `stats`.
#[must_use]
pub fn run_with_stats(config: &Config, stats: &StatsCollector) -> Vec<Point> {
    let mut points = Vec::new();
    for ni in 0..config.ns.len() {
        for ei in 0..config.epsilons.len() {
            points.push(run_point(config, ni, ei, stats));
        }
    }
    points
}

/// Lowers one `(n, ε)` point to a declarative run scenario: `ni` indexes
/// [`Config::ns`], `ei` indexes [`Config::epsilons`]. Seeded by the grid
/// indices alone, so the point reruns identically in isolation (the basis
/// of checkpoint/resume).
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
pub fn cell_scenario(config: &Config, ni: usize, ei: usize) -> Scenario {
    let instance = MajorityInstance::with_margin(config.ns[ni], config.epsilons[ei]);
    Scenario::new(ProtocolSpec::ThreeState, instance)
        .engine(EngineKind::Jump)
        .rule(ConvergenceRule::StateConsensus)
        .runs(config.runs)
        .seed(config.seed + (ni as u64) * 100 + ei as u64)
}

/// Runs one `(n, ε)` point through the shared [`ScenarioPlan`] harness.
///
/// # Panics
///
/// As [`cell_scenario`].
#[must_use]
pub fn run_point(config: &Config, ni: usize, ei: usize, stats: &StatsCollector) -> Point {
    let n = config.ns[ni];
    let scenario = cell_scenario(config, ni, ei);
    let eps_achieved = scenario.instance.margin();
    let results = ScenarioPlan::new(scenario)
        .parallelism(config.parallelism)
        .run_with_stats(stats);
    Point {
        n,
        epsilon: eps_achieved,
        error_fraction: results.error_fraction(),
        kl_bound: (-bernoulli_kl((1.0 + eps_achieved) / 2.0, 0.5) * n as f64).exp(),
        runs: config.runs,
    }
}

/// Renders the result table.
#[must_use]
pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "Three-state error probability vs the PVV09 KL bound",
        ["n", "eps", "eps^2*n", "error_fraction", "kl_bound", "runs"],
    );
    for p in points {
        t.push_row([
            p.n.to_string(),
            fmt_num(p.epsilon),
            fmt_num(p.epsilon * p.epsilon * p.n as f64),
            fmt_num(p.error_fraction),
            fmt_num(p.kl_bound),
            p.runs.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_fair_coin_is_zero() {
        assert!(bernoulli_kl(0.5, 0.5).abs() < 1e-15);
        assert!(bernoulli_kl(0.6, 0.5) > 0.0);
    }

    #[test]
    #[should_panic(expected = "(0,1)")]
    fn kl_rejects_degenerate() {
        let _ = bernoulli_kl(1.0, 0.5);
    }

    #[test]
    fn error_decays_with_margin() {
        let points = run(&Config {
            ns: vec![601],
            epsilons: vec![0.005, 0.25],
            runs: 80,
            seed: 1,
            parallelism: Parallelism::Auto,
        });
        // Near-tie: errors common. Wide margin: errors (almost) gone.
        assert!(
            points[0].error_fraction > 0.15,
            "{}",
            points[0].error_fraction
        );
        assert!(
            points[1].error_fraction < 0.05,
            "{}",
            points[1].error_fraction
        );
        // KL bound orders the same way.
        assert!(points[0].kl_bound > points[1].kl_bound);
    }
}
