//! The on-disk registry: a JSONL file of [`Record`]s with a last-wins index.
//!
//! Layout: `<dir>/records.jsonl`, one record per line, append-ordered. Every
//! mutation rewrites the whole file through
//! [`avc_analysis::io::atomic_write`] (write temp sibling,
//! fsync, rename), so a reader — including a resumed sweep after `kill -9` —
//! always sees a complete prefix of history, never a torn line. A torn tail
//! can still exist if the file was ever appended by external tooling; the
//! loader tolerates exactly that case (an unparseable *final* line) and
//! treats it as absent.
//!
//! Duplicate hashes (a cell re-recorded, e.g. after a schema-compatible
//! rerun) resolve last-wins in the index; [`Store::compact`] rewrites the
//! file with only the surviving records.

use crate::json::Json;
use crate::record::Record;
use avc_analysis::io::atomic_write;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// An open registry directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    records: Vec<Record>,
    /// hash → index of the latest record with that hash.
    index: BTreeMap<String, usize>,
}

impl Store {
    /// Opens (or initializes) the registry under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; corrupt non-final lines and schema-foreign
    /// records are reported as [`io::ErrorKind::InvalidData`] with the line
    /// number, so silent data loss is impossible.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        let dir = dir.into();
        let mut store = Store {
            dir,
            records: Vec::new(),
            index: BTreeMap::new(),
        };
        let path = store.records_path();
        if !path.exists() {
            return Ok(store);
        }
        let text = std::fs::read_to_string(&path)?;
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = Json::parse(line).and_then(|j| Record::from_json(&j));
            match parsed {
                Ok(record) => store.push(record),
                // A torn final line is the legacy-append crash signature:
                // drop it, the cell will simply rerun.
                Err(_) if i + 1 == lines.len() => break,
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}:{}: {e}", path.display(), i + 1),
                    ));
                }
            }
        }
        Ok(store)
    }

    /// The registry's JSONL path.
    #[must_use]
    pub fn records_path(&self) -> PathBuf {
        self.dir.join("records.jsonl")
    }

    /// The registry directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of loaded records (including superseded duplicates).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the registry holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The latest record for a cell hash.
    #[must_use]
    pub fn get(&self, hash: &str) -> Option<&Record> {
        self.index.get(hash).map(|&i| &self.records[i])
    }

    /// All latest records whose hash starts with `prefix`, in hash order.
    #[must_use]
    pub fn find_by_prefix(&self, prefix: &str) -> Vec<&Record> {
        self.index
            .range(prefix.to_string()..)
            .take_while(|(h, _)| h.starts_with(prefix))
            .map(|(_, &i)| &self.records[i])
            .collect()
    }

    /// Iterates the latest record of every cell, in hash order.
    pub fn iter_latest(&self) -> impl Iterator<Item = &Record> {
        self.index.values().map(|&i| &self.records[i])
    }

    /// Appends a record durably (whole-file write-temp-fsync-rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on error the on-disk registry is unchanged
    /// (the in-memory copy is rolled back too).
    pub fn append(&mut self, record: Record) -> io::Result<()> {
        self.push(record);
        if let Err(e) = self.persist() {
            let record = self.records.pop().expect("just pushed");
            self.reindex_after_removal(&record.hash);
            return Err(e);
        }
        Ok(())
    }

    /// Drops superseded duplicates and rewrites the file. Returns how many
    /// records were removed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the rewrite.
    pub fn compact(&mut self) -> io::Result<usize> {
        let keep: Vec<bool> = (0..self.records.len())
            .map(|i| self.index.get(&self.records[i].hash) == Some(&i))
            .collect();
        let removed = keep.iter().filter(|&&k| !k).count();
        if removed == 0 {
            return Ok(0);
        }
        let mut iter = keep.into_iter();
        self.records.retain(|_| iter.next().expect("len match"));
        self.index = self
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.hash.clone(), i))
            .collect();
        self.persist()?;
        Ok(removed)
    }

    fn push(&mut self, record: Record) {
        self.index.insert(record.hash.clone(), self.records.len());
        self.records.push(record);
    }

    fn reindex_after_removal(&mut self, hash: &str) {
        match self.records.iter().rposition(|r| r.hash == hash) {
            Some(i) => {
                self.index.insert(hash.to_string(), i);
            }
            None => {
                self.index.remove(hash);
            }
        }
    }

    fn persist(&self) -> io::Result<()> {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&record.to_json().to_string_compact());
            out.push('\n');
        }
        atomic_write(self.records_path(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use crate::record::CellResult;
    use std::fs;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("avc-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(experiment: &str, n: u64, note: &str) -> Record {
        let manifest = Manifest::new(experiment, [("n", n.to_string())]);
        let result = CellResult {
            notes: vec![note.to_string()],
            ..CellResult::default()
        };
        Record::new(manifest, result, 1)
    }

    #[test]
    fn append_reopen_roundtrip() {
        let dir = temp_store("roundtrip");
        let mut store = Store::open(&dir).unwrap();
        assert!(store.is_empty());
        store.append(record("fig3", 11, "a")).unwrap();
        store.append(record("fig3", 101, "b")).unwrap();

        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        let hash = record("fig3", 101, "b").hash;
        assert_eq!(reopened.get(&hash).unwrap().result.notes, vec!["b"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_hash_resolves_last_wins_and_compacts() {
        let dir = temp_store("dup");
        let mut store = Store::open(&dir).unwrap();
        store.append(record("fig3", 11, "old")).unwrap();
        store.append(record("fig3", 101, "other")).unwrap();
        store.append(record("fig3", 11, "new")).unwrap();
        let hash = record("fig3", 11, "x").hash;
        assert_eq!(store.get(&hash).unwrap().result.notes, vec!["new"]);
        assert_eq!(store.len(), 3);

        assert_eq!(store.compact().unwrap(), 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&hash).unwrap().result.notes, vec!["new"]);
        // Idempotent.
        assert_eq!(store.compact().unwrap(), 0);

        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get(&hash).unwrap().result.notes, vec!["new"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tolerates_torn_final_line() {
        let dir = temp_store("torn");
        let mut store = Store::open(&dir).unwrap();
        store.append(record("fig3", 11, "whole")).unwrap();
        let path = store.records_path();
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"schema\":1,\"hash\":\"dead"); // torn mid-write
        fs::write(&path, &text).unwrap();

        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_corrupt_interior_line() {
        let dir = temp_store("corrupt");
        let mut store = Store::open(&dir).unwrap();
        store.append(record("fig3", 11, "a")).unwrap();
        let path = store.records_path();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, format!("not json\n{text}")).unwrap();
        let err = Store::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefix_lookup() {
        let dir = temp_store("prefix");
        let mut store = Store::open(&dir).unwrap();
        store.append(record("fig3", 11, "a")).unwrap();
        store.append(record("fig4", 11, "b")).unwrap();
        let hash = record("fig3", 11, "a").hash;
        let hits = store.find_by_prefix(&hash[..12]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].hash, hash);
        assert_eq!(store.find_by_prefix("").len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
