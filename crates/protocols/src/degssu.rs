//! The Doty–Eftekhari–Gąsieniec–Severson–Stachowiak–Uznański clocked
//! cancel/split exact-majority protocol \[DEGSSU21, arXiv:2106.10201].
//!
//! Like [`Bef`](crate::Bef), agents carry signed power-of-two tokens with a
//! conserved sum `(a − b) · 2^L`; the difference is *when* tokens are
//! allowed to move between levels. \[DEGSSU21] synchronizes the descent
//! with a phase clock so each level gets a full cancellation window before
//! tokens split below it. This reproduction keeps that discipline with a
//! per-agent clock: an active token counts its own interactions at its
//! current level (`c ∈ 0..=T`, saturating) and may only split or merge
//! once the count reaches the phase length `T`. Cancellation-type
//! reactions are never gated.
//!
//! * **cancel** — opposite signs at the same level: both become inactive.
//! * **absorb** — opposite signs at *adjacent* levels: the larger token
//!   shrinks one level (`2^{k} − 2^{k−1} = 2^{k−1}`) and the smaller
//!   retires. \[DEGSSU21]'s cross-level cancellation; Bef has no analogue.
//! * **tick** — any other meeting increments each participant's clock
//!   toward `T`.
//! * **split** — an expired (`c = T`) active above the bottom level meets
//!   an inactive: the token halves, both children restart their clocks.
//! * **merge** — two expired same-sign tokens at the same level `ℓ ≥ 1`
//!   combine one level up with a fresh clock. This is the backup recovery
//!   role the paper delegates to its fallback protocol: tokens that
//!   outlived their cancellation window re-coarsen instead of stalling.
//! * **adopt** — a bottom-level token stamps its sign onto inactive biases.
//!
//! Exactness is unconditional (the sum invariant survives every rule, and
//! clocks carry no value); the frozen-configuration argument from
//! [`Bef`](crate::Bef) applies verbatim once all clocks expire, so every
//! silent configuration is a consensus or an exact tie. The state count is
//! `2(L+1)(T+1) + 2`.
//!
//! Like [`Bef`](crate::Bef), the protocol assumes the complete interaction
//! graph: `adopt` stamps the inactive partner without moving the active
//! token, so on a sparse restricted graph a lone surviving token cannot
//! reach distant stale biases and convergence fails even though exactness
//! (the graph-independent sum invariant) survives.

use avc_population::{Opinion, Protocol, StateId};
use std::fmt;

/// Parameter error for [`Degssu::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegssuParameterError {
    /// `levels` must be in `1..=Degssu::MAX_LEVELS`.
    InvalidLevels(u32),
    /// `phase` must be in `1..=Degssu::MAX_PHASE`.
    InvalidPhase(u32),
}

impl fmt::Display for DegssuParameterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegssuParameterError::InvalidLevels(l) => {
                write!(f, "levels must be in 1..={}, got {l}", Degssu::MAX_LEVELS)
            }
            DegssuParameterError::InvalidPhase(t) => {
                write!(
                    f,
                    "phase length must be in 1..={}, got {t}",
                    Degssu::MAX_PHASE
                )
            }
        }
    }
}

impl std::error::Error for DegssuParameterError {}

/// Inactive with bias `A`.
const INACTIVE_A: StateId = 0;
/// Inactive with bias `B`.
const INACTIVE_B: StateId = 1;

/// The \[DEGSSU21] clocked cancel/split exact-majority protocol with `L`
/// levels and phase length `T` (`2(L+1)(T+1) + 2` states).
#[derive(Debug, Clone)]
pub struct Degssu {
    levels: u32,
    phase: u32,
    name: String,
}

/// A decoded [`Degssu`] state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DegssuState {
    /// Inactive; remembers the sign it would output.
    Inactive(Opinion),
    /// Active token of value `sign · 2^{L−level}` with a saturating
    /// per-level interaction clock `clock ∈ 0..=T`.
    Active {
        /// Token sign (`A` = `+`, `B` = `−`).
        sign: Opinion,
        /// Level `0..=L`; value halves as the level grows.
        level: u32,
        /// Interactions spent at this level, saturating at `T`.
        clock: u32,
    },
}

impl Degssu {
    /// Maximum supported number of levels (shared bound with
    /// [`Bef`](crate::Bef): token values stay well inside `i64`).
    pub const MAX_LEVELS: u32 = 32;

    /// Maximum supported phase length (bounds the state count).
    pub const MAX_PHASE: u32 = 64;

    /// Creates the protocol with `levels ∈ 1..=`[`Degssu::MAX_LEVELS`] and
    /// phase length `phase ∈ 1..=`[`Degssu::MAX_PHASE`] interactions per
    /// level.
    pub fn new(levels: u32, phase: u32) -> Result<Degssu, DegssuParameterError> {
        if levels == 0 || levels > Degssu::MAX_LEVELS {
            return Err(DegssuParameterError::InvalidLevels(levels));
        }
        if phase == 0 || phase > Degssu::MAX_PHASE {
            return Err(DegssuParameterError::InvalidPhase(phase));
        }
        Ok(Degssu {
            levels,
            phase,
            name: format!("degssu(l={levels},t={phase})"),
        })
    }

    /// Number of levels `L`.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Phase length `T` (interactions an active token waits at a level
    /// before it may split or merge).
    #[must_use]
    pub fn phase(&self) -> u32 {
        self.phase
    }

    fn decode(&self, state: StateId) -> DegssuState {
        match state {
            INACTIVE_A => DegssuState::Inactive(Opinion::A),
            INACTIVE_B => DegssuState::Inactive(Opinion::B),
            _ => {
                let idx = state - 2;
                let clocks = self.phase + 1;
                let per_sign = (self.levels + 1) * clocks;
                debug_assert!(idx < 2 * per_sign, "state {state} out of range");
                let (sign, rest) = if idx < per_sign {
                    (Opinion::A, idx)
                } else {
                    (Opinion::B, idx - per_sign)
                };
                DegssuState::Active {
                    sign,
                    level: rest / clocks,
                    clock: rest % clocks,
                }
            }
        }
    }

    fn encode(&self, state: DegssuState) -> StateId {
        match state {
            DegssuState::Inactive(Opinion::A) => INACTIVE_A,
            DegssuState::Inactive(Opinion::B) => INACTIVE_B,
            DegssuState::Active { sign, level, clock } => {
                debug_assert!(level <= self.levels && clock <= self.phase);
                let clocks = self.phase + 1;
                let base = match sign {
                    Opinion::A => 0,
                    Opinion::B => (self.levels + 1) * clocks,
                };
                2 + base + level * clocks + clock
            }
        }
    }

    /// The conserved token value of a state (clocks carry no value): the
    /// configuration sum is invariant and equals `(a − b) · 2^L`.
    #[must_use]
    pub fn value_of(&self, state: StateId) -> i64 {
        match self.decode(state) {
            DegssuState::Inactive(_) => 0,
            DegssuState::Active { sign, level, .. } => {
                let magnitude = 1i64 << (self.levels - level);
                match sign {
                    Opinion::A => magnitude,
                    Opinion::B => -magnitude,
                }
            }
        }
    }

    fn tick(&self, state: DegssuState) -> DegssuState {
        match state {
            DegssuState::Active { sign, level, clock } if clock < self.phase => {
                DegssuState::Active {
                    sign,
                    level,
                    clock: clock + 1,
                }
            }
            other => other,
        }
    }
}

impl Protocol for Degssu {
    fn num_states(&self) -> u32 {
        2 * (self.levels + 1) * (self.phase + 1) + 2
    }

    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        use DegssuState::{Active, Inactive};
        let (x, y) = (self.decode(initiator), self.decode(responder));
        let (x2, y2) = match (x, y) {
            (
                Active {
                    sign: sx,
                    level: lx,
                    clock: cx,
                },
                Active {
                    sign: sy,
                    level: ly,
                    clock: cy,
                },
            ) => {
                if sx != sy && lx == ly {
                    // Cancel: opposite equal tokens retire each other.
                    (Inactive(sx), Inactive(sy))
                } else if sx != sy && lx + 1 == ly {
                    // Absorb: the initiator's larger token shrinks one
                    // level; the responder retires.
                    (
                        Active {
                            sign: sx,
                            level: lx + 1,
                            clock: 0,
                        },
                        Inactive(sy),
                    )
                } else if sx != sy && ly + 1 == lx {
                    (
                        Inactive(sx),
                        Active {
                            sign: sy,
                            level: ly + 1,
                            clock: 0,
                        },
                    )
                } else if sx == sy && lx == ly && lx >= 1 && cx == self.phase && cy == self.phase {
                    // Merge: two expired equal tokens re-coarsen one level
                    // up with a fresh cancellation window.
                    (
                        Active {
                            sign: sx,
                            level: lx - 1,
                            clock: 0,
                        },
                        Inactive(sx),
                    )
                } else {
                    // No reaction: both clocks advance toward expiry.
                    (self.tick(x), self.tick(y))
                }
            }
            (Active { sign, level, clock }, Inactive(bias)) => {
                if level < self.levels && clock == self.phase {
                    // Split: the expired token halves into both agents.
                    let child = Active {
                        sign,
                        level: level + 1,
                        clock: 0,
                    };
                    (child, child)
                } else if level == self.levels && bias != sign {
                    // Adopt: a bottom-level token stamps its sign.
                    (self.tick(x), Inactive(sign))
                } else {
                    (self.tick(x), y)
                }
            }
            (Inactive(bias), Active { sign, level, clock }) => {
                if level < self.levels && clock == self.phase {
                    let child = Active {
                        sign,
                        level: level + 1,
                        clock: 0,
                    };
                    (child, child)
                } else if level == self.levels && bias != sign {
                    (Inactive(sign), self.tick(y))
                } else {
                    (x, self.tick(y))
                }
            }
            (Inactive(_), Inactive(_)) => (x, y),
        };
        (self.encode(x2), self.encode(y2))
    }

    fn output(&self, state: StateId) -> Opinion {
        match self.decode(state) {
            DegssuState::Inactive(bias) => bias,
            DegssuState::Active { sign, .. } => sign,
        }
    }

    fn input(&self, opinion: Opinion) -> StateId {
        self.encode(DegssuState::Active {
            sign: opinion,
            level: 0,
            clock: 0,
        })
    }

    fn state_label(&self, state: StateId) -> String {
        match self.decode(state) {
            DegssuState::Inactive(Opinion::A) => "0+".to_string(),
            DegssuState::Inactive(Opinion::B) => "0-".to_string(),
            DegssuState::Active { sign, level, clock } => {
                let magnitude = 1u64 << (self.levels - level);
                match sign {
                    Opinion::A => format!("+{magnitude}@{clock}"),
                    Opinion::B => format!("-{magnitude}@{clock}"),
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avc_population::engine::{CountSim, Simulator};
    use avc_population::rngutil::SeedSequence;
    use avc_population::Config;

    fn total_value(p: &Degssu, counts: &[u64]) -> i64 {
        counts
            .iter()
            .enumerate()
            .map(|(q, &c)| p.value_of(q as StateId) * c as i64)
            .sum()
    }

    #[test]
    fn parameter_validation() {
        assert!(Degssu::new(0, 2).is_err());
        assert!(Degssu::new(Degssu::MAX_LEVELS + 1, 2).is_err());
        assert!(Degssu::new(3, 0).is_err());
        assert!(Degssu::new(3, Degssu::MAX_PHASE + 1).is_err());
        let p = Degssu::new(3, 2).expect("valid");
        assert_eq!(p.num_states(), 26);
        assert_eq!(p.name(), "degssu(l=3,t=2)");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = Degssu::new(3, 2).expect("valid");
        for q in 0..p.num_states() {
            assert_eq!(p.encode(p.decode(q)), q);
        }
        assert_eq!(p.state_label(p.input(Opinion::A)), "+8@0");
        assert_eq!(p.state_label(p.input(Opinion::B)), "-8@0");
    }

    #[test]
    fn every_transition_conserves_token_value() {
        let p = Degssu::new(2, 2).expect("valid");
        let s = p.num_states();
        for a in 0..s {
            for b in 0..s {
                let (a2, b2) = p.transition(a, b);
                assert!(a2 < s && b2 < s, "transition escaped the state space");
                assert_eq!(
                    p.value_of(a) + p.value_of(b),
                    p.value_of(a2) + p.value_of(b2),
                    "value not conserved on ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn clock_gates_the_split() {
        let p = Degssu::new(2, 2).expect("valid");
        let a0 = p.input(Opinion::A); // +4, clock 0
                                      // Meeting inactives before expiry only ticks the clock.
        let (a1, i) = p.transition(a0, INACTIVE_B);
        assert_eq!(i, INACTIVE_B);
        assert_eq!(p.value_of(a1), 4);
        let (a2, _) = p.transition(a1, INACTIVE_B);
        assert_eq!(p.value_of(a2), 4);
        // Clock now expired (T = 2): the next inactive meeting splits.
        let (x, y) = p.transition(a2, INACTIVE_B);
        assert_eq!(x, y);
        assert_eq!(p.value_of(x), 2);
    }

    #[test]
    fn cancel_and_absorb_are_never_gated() {
        let p = Degssu::new(2, 2).expect("valid");
        let a0 = p.input(Opinion::A); // +4 @ 0
        let b0 = p.input(Opinion::B); // −4 @ 0
        assert_eq!(p.transition(a0, b0), (INACTIVE_A, INACTIVE_B));
        // Build a −2 (split an expired −4).
        let (b1, _) = p.transition(b0, INACTIVE_A);
        let (b2, _) = p.transition(b1, INACTIVE_A);
        let (minus_two, _) = p.transition(b2, INACTIVE_A);
        assert_eq!(p.value_of(minus_two), -2);
        // Absorb: +4 meets −2 (adjacent levels) → +2 plus a retired −.
        let (x, y) = p.transition(a0, minus_two);
        assert_eq!(p.value_of(x), 2);
        assert_eq!(y, INACTIVE_B);
        // Symmetric orientation.
        let (x2, y2) = p.transition(minus_two, a0);
        assert_eq!(x2, INACTIVE_B);
        assert_eq!(p.value_of(y2), 2);
    }

    #[test]
    fn merge_requires_both_clocks_expired() {
        let p = Degssu::new(2, 1).expect("valid");
        let a0 = p.input(Opinion::A);
        let (fresh, other) = p.transition(a0, INACTIVE_A); // tick to @1 = T
        assert_eq!(other, INACTIVE_A);
        let (c1, c2) = p.transition(fresh, INACTIVE_A); // split: two +2 @ 0
        assert_eq!(p.value_of(c1), 2);
        // Fresh clocks: the pair only ticks.
        let (t1, t2) = p.transition(c1, c2);
        assert_eq!(p.value_of(t1) + p.value_of(t2), 4);
        assert_ne!(t1, INACTIVE_A);
        // Expired clocks: the pair merges back to +4.
        let (m, i) = p.transition(t1, t2);
        assert_eq!(p.value_of(m), 4);
        assert_eq!(i, INACTIVE_A);
    }

    #[test]
    fn converges_exactly_on_small_populations() {
        let p = Degssu::new(3, 2).expect("valid");
        let seeds = SeedSequence::new(0xDE655);
        for trial in 0..40u64 {
            let (a, b) = if trial % 2 == 0 { (6, 5) } else { (4, 7) };
            let winner = if a > b { Opinion::A } else { Opinion::B };
            let config = Config::from_input(&p, a, b);
            let mut sim = CountSim::new(p.clone(), config);
            let mut rng = seeds.rng_for(trial);
            let out = sim.run_to_consensus(&mut rng, 2_000_000);
            assert_eq!(
                out.verdict.opinion(),
                Some(winner),
                "wrong or missing consensus in trial {trial}"
            );
        }
    }

    #[test]
    fn token_sum_is_invariant_along_a_run() {
        let p = Degssu::new(4, 3).expect("valid");
        let (a, b) = (30u64, 21u64);
        let expected = (a as i64 - b as i64) * (1i64 << 4);
        let config = Config::from_input(&p, a, b);
        let mut sim = CountSim::new(p.clone(), config);
        let mut rng = SeedSequence::new(11).rng_for(0);
        for _ in 0..20_000 {
            if sim.advance(&mut rng) == 0 {
                break;
            }
            assert_eq!(total_value(&p, sim.counts()), expected);
        }
    }
}
