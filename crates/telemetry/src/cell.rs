//! Per-cell telemetry: the deterministic/wall-clock split.
//!
//! A sweep cell (one manifest's worth of trials) aggregates telemetry into
//! a [`CellTelemetry`] holding two registries:
//!
//! * `sim` — values derived purely from the simulation (steps, events,
//!   silent fractions, convergence-step histograms). For a fixed seed
//!   these are **identical at any worker count**, which the golden stream
//!   test pins byte-for-byte.
//! * `wall` — wall-clock measurements (durations, throughput inputs).
//!   Never comparable across runs or machines.
//!
//! Exports emit both by default; setting the `AVC_TELEMETRY_NOWALL`
//! environment variable (any non-empty value) omits the `wall` section so
//! determinism tests can byte-compare whole streams.

use crate::export::snapshot_to_json;
use crate::registry::RegistrySnapshot;

/// Conventional metric names shared by producers (harness, sweep) and
/// consumers (`avc report`, `avc ls --wide`). Using these constants keeps
/// both sides of the wire agreeing on spelling.
pub mod keys {
    /// Total scheduler steps across all trials (counter, `sim`).
    pub const SIM_STEPS: &str = "sim.steps";
    /// Total productive interactions across all trials (counter, `sim`).
    pub const SIM_EVENTS: &str = "sim.events";
    /// Steps that took the silent fast path (counter, `sim`).
    pub const SIM_SILENT_STEPS: &str = "sim.silent_steps";
    /// Per-trial convergence step counts (histogram, `sim`).
    pub const SIM_CONVERGENCE_STEPS: &str = "sim.convergence_steps";
    /// Trials that converged (counter, `sim`).
    pub const SIM_TRIALS_CONVERGED: &str = "sim.trials_converged";
    /// Trials that ran (counter, `sim`).
    pub const SIM_TRIALS: &str = "sim.trials";
    /// Per-trial wall time in nanoseconds (histogram, `wall`).
    pub const WALL_TRIAL_NS: &str = "wall.trial_ns";
    /// Whole-cell wall time in nanoseconds (counter, `wall`).
    pub const WALL_CELL_NS: &str = "wall.cell_ns";
    /// Per-chunk wall latency in nanoseconds (histogram, `wall`).
    pub const WALL_CHUNK_NS: &str = "wall.chunk_ns";
}

/// Whether exports should omit wall-clock sections (the
/// `AVC_TELEMETRY_NOWALL` escape hatch for byte-identity tests).
#[must_use]
pub fn wall_suppressed() -> bool {
    std::env::var_os("AVC_TELEMETRY_NOWALL").is_some_and(|v| !v.is_empty())
}

/// Telemetry for one sweep cell, split into deterministic and wall-clock
/// registries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellTelemetry {
    /// Simulation-derived metrics: deterministic for a fixed seed.
    pub sim: RegistrySnapshot,
    /// Wall-clock metrics: nondeterministic by nature.
    pub wall: RegistrySnapshot,
}

impl CellTelemetry {
    /// Empty telemetry.
    #[must_use]
    pub fn new() -> CellTelemetry {
        CellTelemetry::default()
    }

    /// Whether both registries are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty() && self.wall.is_empty()
    }

    /// Folds another cell's telemetry in (both halves merge by the metric
    /// kind laws; associative and commutative).
    pub fn merge(&mut self, other: &CellTelemetry) {
        self.sim.merge(&other.sim);
        self.wall.merge(&other.wall);
    }

    /// Steps per second over the whole cell, if both total steps and cell
    /// wall time are present.
    #[must_use]
    pub fn steps_per_sec(&self) -> Option<f64> {
        let steps = self.sim.counter(keys::SIM_STEPS)?;
        let ns = self.wall.counter(keys::WALL_CELL_NS)?;
        (ns > 0).then(|| steps as f64 * 1e9 / ns as f64)
    }

    /// The JSON object form: `{"sim":{…}}` plus a `"wall"` section unless
    /// suppressed (see [`wall_suppressed`]). Byte-stable for fixed
    /// contents.
    #[must_use]
    pub fn to_json(&self) -> String {
        if wall_suppressed() {
            format!("{{\"sim\":{}}}", snapshot_to_json(&self.sim))
        } else {
            format!(
                "{{\"sim\":{},\"wall\":{}}}",
                snapshot_to_json(&self.sim),
                snapshot_to_json(&self.wall)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;
    use crate::registry::MetricValue;

    #[test]
    fn merge_combines_both_halves() {
        let mut a = CellTelemetry::new();
        a.sim.set(keys::SIM_STEPS, MetricValue::Counter(100));
        a.wall.set(keys::WALL_CELL_NS, MetricValue::Counter(10));
        let mut b = CellTelemetry::new();
        b.sim.set(keys::SIM_STEPS, MetricValue::Counter(50));
        b.wall.set(keys::WALL_CELL_NS, MetricValue::Counter(5));
        a.merge(&b);
        assert_eq!(a.sim.counter(keys::SIM_STEPS), Some(150));
        assert_eq!(a.wall.counter(keys::WALL_CELL_NS), Some(15));
    }

    #[test]
    fn steps_per_sec_needs_both_inputs() {
        let mut t = CellTelemetry::new();
        assert_eq!(t.steps_per_sec(), None);
        t.sim.set(keys::SIM_STEPS, MetricValue::Counter(2_000));
        t.wall
            .set(keys::WALL_CELL_NS, MetricValue::Counter(1_000_000_000));
        assert_eq!(t.steps_per_sec(), Some(2_000.0));
    }

    #[test]
    fn json_contains_both_sections() {
        let mut t = CellTelemetry::new();
        t.sim.set(keys::SIM_STEPS, MetricValue::Counter(7));
        let mut h = HistogramSnapshot::new();
        h.record(123);
        t.wall.set(keys::WALL_TRIAL_NS, MetricValue::Histogram(h));
        let json = t.to_json();
        assert!(json.starts_with("{\"sim\":{"));
        assert!(json.contains("\"sim.steps\":{\"counter\":7}"));
        assert!(json.contains("\"wall\":{"));
    }
}
