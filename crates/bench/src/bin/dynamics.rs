//! Records one **AVC trajectory** (the empirical counterpart of the §4
//! analysis): extremal weights halving, the strong → intermediate → weak
//! population shift, and the live value-sum invariant.
//!
//! Alias for `avc sweep dynamics` followed by `avc export dynamics`
//! (flags: `--quick --n --m --d --eps --cadence --seed --out`), with
//! checkpoint/resume through the result store.

fn main() {
    avc_store::cli::legacy("dynamics");
}
