//! Fresh-equivalence of the trial-batch reuse seam.
//!
//! `ChunkedSimulator::reset` (and its erased forwarding,
//! `ErasedChunkedSim::reset_erased`) promises that a reused engine replays
//! exactly like a freshly built one: identical outcomes, identical final
//! configurations, and — the sharp check — an identical RNG stream
//! position afterwards (one extra or missing draw would shift every later
//! trial, and worker→trial assignment races, so any divergence would make
//! batch results scheduling-dependent). These tests pin that contract
//! across all five engines through the erased seam the batch loop uses,
//! for dirty states both mid-run and post-consensus, for resets that
//! change the population (count-space engines), and for the stateful
//! epoch-batched scheduler.

use avc::population::driver::{Driver, NullObserver};
use avc::population::engine::ErasedChunkedSim;
use avc::population::scenario::build_erased;
use avc::population::spec::RunOutcome;
use avc::population::{Config, ConvergenceRule, EngineKind, Protocol, SchedulerSpec};
use avc::protocols::{Avc, FourState, ThreeState};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

const MAX_STEPS: u64 = 2_000_000;

const ENGINES: [EngineKind; 5] = [
    EngineKind::Agent,
    EngineKind::Count,
    EngineKind::Jump,
    EngineKind::Adaptive,
    EngineKind::TauLeap,
];

fn driver() -> Driver {
    Driver::new(ConvergenceRule::OutputConsensus).with_max_steps(MAX_STEPS)
}

/// Drives `sim` to convergence and returns the outcome, the final counts,
/// and the RNG's next draw — the stream-position witness.
fn drive(sim: &mut dyn ErasedChunkedSim, seed: u64) -> (RunOutcome, Vec<u64>, u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let out = driver().run_erased(sim, &mut rng, &mut NullObserver);
    (out, sim.counts().to_vec(), rng.next_u64())
}

/// The reference trial: a freshly built engine.
fn fresh_run<P: Protocol + Clone + 'static>(
    protocol: &P,
    config: &Config,
    engine: EngineKind,
    scheduler: &SchedulerSpec,
    seed: u64,
) -> (RunOutcome, Vec<u64>, u64) {
    let mut sim = build_erased(protocol.clone(), config.clone(), engine, scheduler)
        .expect("runnable combination");
    drive(sim.as_mut(), seed)
}

/// The reused trial: an engine dirtied by a full prior trial (different
/// config, different seed), then reset in place to `config`.
fn reset_run<P: Protocol + Clone + 'static>(
    protocol: &P,
    dirty: &Config,
    config: &Config,
    engine: EngineKind,
    scheduler: &SchedulerSpec,
    dirty_seed: u64,
    seed: u64,
) -> (RunOutcome, Vec<u64>, u64) {
    let mut sim = build_erased(protocol.clone(), dirty.clone(), engine, scheduler)
        .expect("runnable combination");
    let _ = drive(sim.as_mut(), dirty_seed);
    sim.reset_erased(config);
    drive(sim.as_mut(), seed)
}

fn assert_fresh_equivalent(
    fresh: &(RunOutcome, Vec<u64>, u64),
    reused: &(RunOutcome, Vec<u64>, u64),
    context: &str,
) {
    assert_eq!(fresh.0, reused.0, "{context}: outcome diverged");
    assert_eq!(fresh.1, reused.1, "{context}: final counts diverged");
    assert_eq!(fresh.2, reused.2, "{context}: RNG stream position diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same-shape reuse (the batch loop's case: every trial of a cell runs
    /// the same config) is fresh-equivalent on all five engines.
    #[test]
    fn reset_replays_like_fresh_same_config(
        a in 3u64..40,
        b in 1u64..40,
        dirty_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let config = Config::from_input(&FourState, a, b);
        for engine in ENGINES {
            let fresh = fresh_run(&FourState, &config, engine, &SchedulerSpec::Uniform, seed);
            let reused = reset_run(
                &FourState, &config, &config, engine, &SchedulerSpec::Uniform, dirty_seed, seed,
            );
            assert_fresh_equivalent(&fresh, &reused, &format!("{engine:?} a={a} b={b}"));
        }
    }

    /// Count-space engines may be reset to a *different* population; the
    /// agent engine keeps its population (its graph is fixed), so it is
    /// reset across opinion splits of the same n.
    #[test]
    fn reset_replays_like_fresh_across_configs(
        a1 in 3u64..30, b1 in 1u64..30,
        a2 in 3u64..30, b2 in 1u64..30,
        dirty_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let avc = Avc::new(3, 2).expect("valid parameters");
        let dirty = Config::from_input(&avc, a1, b1);
        let config = Config::from_input(&avc, a2, b2);
        for engine in [EngineKind::Count, EngineKind::Jump, EngineKind::Adaptive, EngineKind::TauLeap] {
            let fresh = fresh_run(&avc, &config, engine, &SchedulerSpec::Uniform, seed);
            let reused = reset_run(
                &avc, &dirty, &config, engine, &SchedulerSpec::Uniform, dirty_seed, seed,
            );
            assert_fresh_equivalent(&fresh, &reused, &format!("{engine:?} avc"));
        }
        // Agent: same population, different split.
        let n = a1 + b1;
        let dirty = Config::from_input(&avc, a1, b1);
        let config = Config::from_input(&avc, n - 1, 1);
        let fresh = fresh_run(&avc, &config, EngineKind::Agent, &SchedulerSpec::Uniform, seed);
        let reused = reset_run(
            &avc, &dirty, &config, EngineKind::Agent, &SchedulerSpec::Uniform, dirty_seed, seed,
        );
        assert_fresh_equivalent(&fresh, &reused, "Agent avc resplit");
    }

    /// The stateful epoch-batched scheduler (a shuffled permutation plus a
    /// cursor) is rewound by reset, not merely re-seeded: a reused agent
    /// engine must not replay the stale epoch order.
    #[test]
    fn reset_rewinds_the_epoch_scheduler(
        a in 4u64..30, b in 1u64..30,
        dirty_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let spec = SchedulerSpec::Epoch;
        let config = Config::from_input(&ThreeState::new(), a, b);
        let fresh = fresh_run(&ThreeState::new(), &config, EngineKind::Agent, &spec, seed);
        let reused = reset_run(
            &ThreeState::new(), &config, &config, EngineKind::Agent, &spec, dirty_seed, seed,
        );
        assert_fresh_equivalent(&fresh, &reused, "Agent epoch");
    }
}

/// A reused engine stays fresh-equivalent across many consecutive resets —
/// the shape of a real worker's trial slice (one build, N trials).
#[test]
fn many_consecutive_resets_stay_fresh_equivalent() {
    let config = Config::from_input(&FourState, 23, 14);
    for engine in ENGINES {
        let mut sim = build_erased(FourState, config.clone(), engine, &SchedulerSpec::Uniform)
            .expect("runnable combination");
        for trial in 0..8u64 {
            let seed = 1000 + trial;
            sim.reset_erased(&config);
            let reused = drive(sim.as_mut(), seed);
            let fresh = fresh_run(&FourState, &config, engine, &SchedulerSpec::Uniform, seed);
            assert_fresh_equivalent(&fresh, &reused, &format!("{engine:?} trial {trial}"));
        }
    }
}
