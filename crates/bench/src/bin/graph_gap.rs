//! Regenerates the **graph-expansion study** (\[DV12]): four-state
//! convergence time against the interaction graph's spectral gap across
//! five topologies.
//!
//! Usage: `cargo run --release -p avc-bench --bin graph_gap [--quick]
//! [--n N] [--runs N] [--seed N] [--serial | --threads N] [--progress]
//! [--out DIR]`

use avc_analysis::cli::Args;
use avc_analysis::experiments::{graph_gap, report};

fn main() {
    let args = Args::from_env();
    let mut config = if args.flag("quick") {
        graph_gap::Config::quick()
    } else {
        graph_gap::Config::default()
    };
    config.n = args.get_u64("n", config.n as u64) as usize;
    config.runs = args.get_u64("runs", config.runs);
    config.seed = args.get_u64("seed", config.seed);
    config.parallelism = args.parallelism();

    avc_bench::banner(
        "Graph expansion (DV12 spectral bound)",
        &format!(
            "four-state protocol across topologies, n ≈ {}, eps = {}, {} runs",
            config.n, config.epsilon, config.runs
        ),
    );

    let stats = avc_bench::collector(&args);
    let points = graph_gap::run_with_stats(&config, &stats);
    let out = avc_bench::out_dir(&args);
    report(&graph_gap::table(&points, &config), &out, "graph_gap");
    println!("throughput: {}", stats.snapshot());
}
