//! Offline vendored subset of the
//! [`rand_distr`](https://crates.io/crates/rand_distr) 0.4 API: the four
//! distributions this workspace samples (`Exp`, `Normal`, `Poisson`,
//! `Geometric`), behind the upstream paths and constructor signatures.
//!
//! Sampling algorithms are standard textbook ones (inversion for `Exp` and
//! `Geometric`, polar Box–Muller for `Normal`, Knuth products for small-λ
//! `Poisson` with a λ-splitting reduction for large λ), chosen for
//! correctness and auditability over raw speed.

#![forbid(unsafe_code)]

use rand::Rng;
use std::fmt;

/// Types which can be sampled, parameterized by a distribution object.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error type shared by the distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// A uniform draw from the open interval `(0, 1]` — safe for `ln`.
fn unit_exclusive<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen::<f64>();
    1.0 - u // gen is [0, 1), so this is (0, 1]
}

/// The exponential distribution `Exp(λ)` (rate parameterization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Fails unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Exp, ParamError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp rate must be finite and positive"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_exclusive(rng).ln() / self.lambda
    }
}

/// The normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Fails unless both parameters are finite and `std_dev` is
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, ParamError> {
        if mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0 {
            Ok(Normal { mean, std_dev })
        } else {
            Err(ParamError("Normal parameters must be finite, std_dev >= 0"))
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Polar Box–Muller (Marsaglia); draw until inside the unit disc.
        loop {
            let x = 2.0 * rng.gen::<f64>() - 1.0;
            let y = 2.0 * rng.gen::<f64>() - 1.0;
            let s = x * x + y * y;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * x * factor;
            }
        }
    }
}

/// The Poisson distribution `Poisson(λ)`.
///
/// Samples are returned as `f64` (matching upstream `rand_distr`, whose
/// `Poisson<f64>` yields `f64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

/// Above this mean, one Knuth product would underflow `exp(−λ)`; split λ
/// into chunks of at most this size and sum independent draws.
const POISSON_CHUNK: f64 = 256.0;

/// Above this mean, fall back to a rounded normal approximation: the
/// relative skew `λ^{−1/2}` is below 0.7% and the exact splitting loop
/// would cost `O(λ)` uniforms per draw.
const POISSON_NORMAL_CUTOVER: f64 = 20_000.0;

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda`.
    ///
    /// # Errors
    ///
    /// Fails unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Poisson, ParamError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Poisson { lambda })
        } else {
            Err(ParamError("Poisson mean must be finite and positive"))
        }
    }

    fn sample_knuth<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
        let threshold = (-lambda).exp();
        let mut product = rng.gen::<f64>();
        let mut count = 0.0;
        while product > threshold {
            product *= rng.gen::<f64>();
            count += 1.0;
        }
        count
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda > POISSON_NORMAL_CUTOVER {
            let gauss = Normal::new(self.lambda, self.lambda.sqrt()).expect("finite λ");
            return gauss.sample(rng).round().max(0.0);
        }
        let mut remaining = self.lambda;
        let mut total = 0.0;
        while remaining > POISSON_CHUNK {
            total += Poisson::sample_knuth(rng, POISSON_CHUNK);
            remaining -= POISSON_CHUNK;
        }
        total + Poisson::sample_knuth(rng, remaining)
    }
}

/// The geometric distribution: the number of failures before the first
/// success in Bernoulli(`p`) trials (support `0, 1, 2, …`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p`.
    ///
    /// # Errors
    ///
    /// Fails unless `p ∈ (0, 1]`.
    pub fn new(p: f64) -> Result<Geometric, ParamError> {
        if p.is_finite() && p > 0.0 && p <= 1.0 {
            Ok(Geometric { p })
        } else {
            Err(ParamError("Geometric probability must be in (0, 1]"))
        }
    }
}

impl Distribution<u64> for Geometric {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        // Inversion: ⌊ln U / ln(1−p)⌋ with U uniform on (0, 1].
        let failures = unit_exclusive(rng).ln() / (1.0 - self.p).ln();
        if failures >= u64::MAX as f64 {
            u64::MAX
        } else {
            failures as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mean_of(mut draw: impl FnMut() -> f64, n: u32) -> f64 {
        (0..n).map(|_| draw()).sum::<f64>() / f64::from(n)
    }

    #[test]
    fn exp_mean_is_one_over_lambda() {
        let mut rng = SmallRng::seed_from_u64(1);
        let exp = Exp::new(4.0).unwrap();
        let mean = mean_of(|| exp.sample(&mut rng), 100_000);
        assert!((mean - 0.25).abs() < 0.01, "{mean}");
    }

    #[test]
    fn normal_matches_moments() {
        let mut rng = SmallRng::seed_from_u64(2);
        let gauss = Normal::new(5.0, 2.0).unwrap();
        let samples: Vec<f64> = (0..100_000).map(|_| gauss.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "{mean}");
        assert!((var - 4.0).abs() < 0.15, "{var}");
    }

    #[test]
    fn poisson_small_lambda_matches_moments() {
        let mut rng = SmallRng::seed_from_u64(3);
        let poisson = Poisson::new(3.5).unwrap();
        let mean = mean_of(|| poisson.sample(&mut rng), 100_000);
        assert!((mean - 3.5).abs() < 0.05, "{mean}");
    }

    #[test]
    fn poisson_chunked_lambda_matches_moments() {
        let mut rng = SmallRng::seed_from_u64(4);
        let poisson = Poisson::new(1_000.0).unwrap();
        let samples: Vec<f64> = (0..2_000).map(|_| poisson.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 1_000.0).abs() < 3.0, "{mean}");
        assert!((var - 1_000.0).abs() < 100.0, "{var}");
    }

    #[test]
    fn geometric_mean_is_q_over_p() {
        let mut rng = SmallRng::seed_from_u64(5);
        let geo = Geometric::new(0.2).unwrap();
        let mean = mean_of(|| geo.sample(&mut rng) as f64, 100_000);
        assert!((mean - 4.0).abs() < 0.1, "{mean}");
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut rng = SmallRng::seed_from_u64(6);
        let geo = Geometric::new(1.0).unwrap();
        assert_eq!(geo.sample(&mut rng), 0);
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
    }
}
