//! Trajectory dynamics of AVC — the empirical counterpart of the analysis
//! in §4.
//!
//! The proof of Theorem 4.1 tracks two quantities along the execution:
//!
//! * the extremal weights per sign, which halve every `O(log n)` parallel
//!   time (Claim A.2) until only `±1` values remain;
//! * the population split among strong / intermediate / weak states, which
//!   shifts mass toward many low-weight majority nodes (the "augmentation"
//!   that beats the four-state protocol).
//!
//! This experiment records those statistics along a single seeded run,
//! producing a time-series table (plus the constant value-sum column that
//! witnesses Invariant 4.3 live). Sampling rides the chunked run driver:
//! [`record`] plugs a recording observer into `avc_population::driver`,
//! whose chunk targets honour the cadence without perturbing the RNG
//! stream, so the trace is bit-identical to the old per-step recorder's.

use crate::table::{fmt_num, Table};
use avc_population::cached::Cached;
use avc_population::engine::CountSim;
use avc_population::trace::{record, Trace};
use avc_population::{Config as PopulationConfig, ConvergenceRule, MajorityInstance, StateId};
use avc_protocols::{Avc, AvcState};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Parameters for the dynamics trace.
#[derive(Debug, Clone)]
pub struct Config {
    /// Population size.
    pub n: u64,
    /// AVC maximum weight (odd).
    pub m: u64,
    /// AVC intermediate levels.
    pub d: u32,
    /// Margin.
    pub epsilon: f64,
    /// Steps between samples.
    pub cadence: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            n: 100_001,
            m: 1_023,
            d: 1,
            epsilon: 1e-3,
            cadence: 50_000,
            seed: 2,
        }
    }
}

impl Config {
    /// A downscaled configuration for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Config {
        Config {
            n: 1_001,
            m: 63,
            d: 1,
            epsilon: 0.01,
            cadence: 2_000,
            seed: 2,
        }
    }

    /// Builds a configuration from parsed CLI arguments (`--quick`, `--n`,
    /// `--m`, `--d`, `--eps`, `--cadence`, `--seed`).
    ///
    /// # Panics
    ///
    /// Panics if `--d` exceeds `u32::MAX`.
    #[must_use]
    pub fn from_args(args: &crate::cli::Args) -> Config {
        let mut config = if args.flag("quick") {
            Config::quick()
        } else {
            Config::default()
        };
        config.n = args.get_u64("n", config.n);
        config.m = args.get_u64("m", config.m);
        config.d = u32::try_from(args.get_u64("d", config.d as u64)).expect("d fits in u32");
        config.epsilon = args.get_f64("eps", config.epsilon);
        config.cadence = args.get_u64("cadence", config.cadence);
        config.seed = args.get_u64("seed", config.seed);
        config
    }
}

/// Statistic names recorded by [`run`], in column order.
pub const STATISTICS: [&str; 8] = [
    "max_pos_weight",
    "max_neg_weight",
    "strong_pos",
    "strong_neg",
    "intermediate_pos",
    "intermediate_neg",
    "weak",
    "total_value",
];

/// Records one seeded AVC trajectory.
///
/// # Panics
///
/// Panics on invalid AVC parameters.
#[must_use]
pub fn run(config: &Config) -> Trace {
    let avc = Avc::new(config.m, config.d).expect("valid AVC parameters");
    let instance = MajorityInstance::with_margin(config.n, config.epsilon);
    let initial = PopulationConfig::from_input(&avc, instance.a(), instance.b());
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let probe_avc = avc.clone();
    let columns: Vec<String> = STATISTICS.iter().map(|s| s.to_string()).collect();

    // Small-m instances run on the dense transition table; the wrap changes
    // no RNG draws, so the trace is identical either way.
    match Cached::try_new(avc) {
        Ok(cached) => {
            let mut sim = CountSim::new(cached, initial);
            record(
                &mut sim,
                &mut rng,
                config.cadence,
                u64::MAX,
                ConvergenceRule::OutputConsensus,
                columns,
                move |counts| probe(&probe_avc, counts),
            )
        }
        Err(plain) => {
            let mut sim = CountSim::new(plain, initial);
            record(
                &mut sim,
                &mut rng,
                config.cadence,
                u64::MAX,
                ConvergenceRule::OutputConsensus,
                columns,
                move |counts| probe(&probe_avc, counts),
            )
        }
    }
}

/// Computes the [`STATISTICS`] vector from AVC species counts.
fn probe(avc: &Avc, counts: &[u64]) -> Vec<f64> {
    let mut max_pos = 0i64;
    let mut max_neg = 0i64;
    let mut strong_pos = 0u64;
    let mut strong_neg = 0u64;
    let mut inter_pos = 0u64;
    let mut inter_neg = 0u64;
    let mut weak = 0u64;
    for (id, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        match avc.decode(id as StateId) {
            AvcState::Strong(v) if v > 0 => {
                strong_pos += c;
                max_pos = max_pos.max(v);
            }
            AvcState::Strong(v) => {
                strong_neg += c;
                max_neg = max_neg.max(-v);
            }
            AvcState::Intermediate(sign, _) => {
                if sign == avc_protocols::Sign::Plus {
                    inter_pos += c;
                    max_pos = max_pos.max(1);
                } else {
                    inter_neg += c;
                    max_neg = max_neg.max(1);
                }
            }
            AvcState::Weak(_) => weak += c,
        }
    }
    vec![
        max_pos as f64,
        max_neg as f64,
        strong_pos as f64,
        strong_neg as f64,
        inter_pos as f64,
        inter_neg as f64,
        weak as f64,
        avc.total_value(counts) as f64,
    ]
}

/// Renders the trace as a long-format table.
#[must_use]
pub fn table(trace: &Trace, config: &Config) -> Table {
    let mut columns = vec!["parallel_time".to_string()];
    columns.extend(trace.names.iter().cloned());
    let mut t = Table::new(
        format!(
            "AVC dynamics: one run at n = {}, m = {}, d = {}, eps = {}",
            config.n, config.m, config.d, config.epsilon
        ),
        columns,
    );
    for sample in &trace.samples {
        let mut row = vec![fmt_num(sample.parallel_time)];
        row.extend(sample.values.iter().map(|&v| fmt_num(v)));
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_witnesses_the_analysis_structure() {
        let config = Config::quick();
        let trace = run(&config);
        assert!(trace.outcome.verdict.is_consensus());

        let names: Vec<&str> = trace.names.iter().map(String::as_str).collect();
        assert_eq!(names, STATISTICS);

        // Invariant 4.3: the value-sum column is constant.
        let sums = trace.series(7);
        let first = sums[0].1;
        assert!(sums.iter().all(|&(_, v)| v == first), "sum drifted");

        // Claim A.2 shape: the max positive weight starts at m and is
        // non-increasing along the samples.
        let max_pos = trace.series(0);
        assert_eq!(max_pos[0].1, config.m as f64);
        for pair in max_pos.windows(2) {
            assert!(pair[1].1 <= pair[0].1, "max weight increased");
        }

        // Terminal sample: no negative-sign strong or intermediate nodes.
        let last = trace.samples.last().unwrap();
        assert_eq!(last.values[3], 0.0, "strong_neg at convergence");
        assert_eq!(last.values[5], 0.0, "intermediate_neg at convergence");
    }

    #[test]
    fn table_has_one_row_per_sample() {
        let config = Config::quick();
        let trace = run(&config);
        let t = table(&trace, &config);
        assert_eq!(t.num_rows(), trace.samples.len());
        assert_eq!(t.columns().len(), 9);
    }
}
