//! Offline vendored subset of the
//! [`proptest`](https://crates.io/crates/proptest) API.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), range and tuple strategies, [`prop_map`](Strategy::prop_map),
//! [`collection::vec`], [`bool::ANY`], [`any`], and the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and the deterministic per-test seed instead of a minimized
//! input), and generation is driven by the workspace's vendored
//! xoshiro-based RNG, seeded from the test name so every run of a given
//! test explores the same cases.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `bool` strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical instance of [`Any`].
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.inner().gen::<bool>()
        }
    }
}

/// The items tests are expected to glob-import.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// Each `fn name(pat in strategy, …) { body }` item becomes a `#[test]`
/// that evaluates `body` on `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one test function per item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current test case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}
