//! The monomorphized telemetry seam engines are generic over.
//!
//! [`Sink`] mirrors the `Scheduler` precedent in `avc-population`: a
//! non-object-safe trait taken as a defaulted type parameter, so the
//! compiler specializes the hot loop per sink. The default [`NoopSink`]
//! has empty `#[inline(always)]` hooks and `ENABLED = false`, so every
//! recording site folds to nothing — the engines' code, and their RNG
//! streams, are byte-for-byte what they were before the seam existed. The
//! CI bench gate (`engine_bench --gate-telemetry`) holds that claim to a
//! measured ≤2% ceiling.
//!
//! [`CountingSink`] is the working implementation: plain (non-atomic) `u64`
//! fields because a sink is owned by exactly one engine on one thread;
//! cross-worker aggregation happens later by merging snapshots.
//!
//! Hooks are *chunk-grained* where possible. Engines call
//! [`Sink::on_chunk`] once per `advance_chunk` with the step/event deltas,
//! which is enough to recover the silent-step fast-path hit count exactly
//! (`steps − events`) without any per-step work. The only per-step hook is
//! [`Sink::on_descent`] (Fenwick descent depth in `CountSim`), and the
//! engine guards it with `if T::ENABLED` so disabled builds pay nothing.

use crate::metrics::HistogramSnapshot;
use crate::registry::{MetricValue, RegistrySnapshot};

/// Receiver for engine-level telemetry events.
///
/// All hooks have empty default bodies; implementors override what they
/// care about. `ENABLED` lets engines guard per-step recording sites so
/// the disabled seam compiles away entirely.
pub trait Sink {
    /// Whether this sink records anything. Engines use this as a
    /// compile-time guard around per-step hooks; it must be `false` only
    /// when every hook is a no-op.
    const ENABLED: bool;

    /// One `advance_chunk` completed, advancing `steps` scheduler steps of
    /// which `events` were productive (state-changing) interactions.
    #[inline(always)]
    fn on_chunk(&mut self, steps: u64, events: u64) {
        let _ = (steps, events);
    }

    /// One Fenwick descent of `depth` levels ran in `CountSim`.
    #[inline(always)]
    fn on_descent(&mut self, depth: u32) {
        let _ = depth;
    }

    /// One fault was injected into the engine.
    #[inline(always)]
    fn on_fault(&mut self) {}

    /// The adaptive engine switched dense/sparse phase.
    #[inline(always)]
    fn on_phase_switch(&mut self) {}
}

/// The default sink: records nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl Sink for NoopSink {
    const ENABLED: bool = false;
}

/// A recording sink: plain counters plus a chunk-size histogram, owned by
/// one engine on one thread.
///
/// # Example
///
/// ```
/// use avc_telemetry::{CountingSink, Sink};
/// let mut sink = CountingSink::new();
/// sink.on_chunk(1000, 40);
/// sink.on_chunk(500, 10);
/// assert_eq!(sink.steps, 1500);
/// assert_eq!(sink.events, 50);
/// assert_eq!(sink.silent_steps(), 1450);
/// assert_eq!(sink.chunks, 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CountingSink {
    /// Total scheduler steps observed.
    pub steps: u64,
    /// Total productive (state-changing) interactions.
    pub events: u64,
    /// Number of `advance_chunk` calls.
    pub chunks: u64,
    /// Distribution of per-chunk step counts.
    pub chunk_steps: HistogramSnapshot,
    /// Number of Fenwick descents recorded.
    pub descents: u64,
    /// Sum of Fenwick descent depths (levels walked).
    pub descent_depth_sum: u64,
    /// Faults injected.
    pub faults: u64,
    /// Adaptive dense↔sparse phase switches.
    pub switches: u64,
}

impl CountingSink {
    /// A sink with all counts at zero.
    #[must_use]
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Steps that took the silent fast path (no state change):
    /// `steps − events`, exact because both are exact.
    #[must_use]
    pub fn silent_steps(&self) -> u64 {
        self.steps - self.events
    }

    /// Folds another sink's counts in (for aggregating per-trial sinks).
    pub fn merge(&mut self, other: &CountingSink) {
        self.steps += other.steps;
        self.events += other.events;
        self.chunks += other.chunks;
        self.chunk_steps.merge(&other.chunk_steps);
        self.descents += other.descents;
        self.descent_depth_sum += other.descent_depth_sum;
        self.faults += other.faults;
        self.switches += other.switches;
    }

    /// The deterministic `sim.*` snapshot of this sink's counts. Every
    /// value here derives from the simulation alone, so for a fixed seed it
    /// is identical at any worker count.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::new();
        snap.set("sim.steps", MetricValue::Counter(self.steps));
        snap.set("sim.events", MetricValue::Counter(self.events));
        snap.set(
            "sim.silent_steps",
            MetricValue::Counter(self.silent_steps()),
        );
        snap.set("sim.chunks", MetricValue::Counter(self.chunks));
        snap.set(
            "sim.chunk_steps",
            MetricValue::Histogram(self.chunk_steps.clone()),
        );
        snap.set("sim.fenwick_descents", MetricValue::Counter(self.descents));
        snap.set(
            "sim.fenwick_depth_sum",
            MetricValue::Counter(self.descent_depth_sum),
        );
        snap.set("sim.faults", MetricValue::Counter(self.faults));
        snap.set("sim.phase_switches", MetricValue::Counter(self.switches));
        snap
    }
}

impl Sink for CountingSink {
    const ENABLED: bool = true;

    #[inline]
    fn on_chunk(&mut self, steps: u64, events: u64) {
        self.steps += steps;
        self.events += events;
        self.chunks += 1;
        self.chunk_steps.record(steps);
    }

    #[inline]
    fn on_descent(&mut self, depth: u32) {
        self.descents += 1;
        self.descent_depth_sum += u64::from(depth);
    }

    #[inline]
    fn on_fault(&mut self) {
        self.faults += 1;
    }

    #[inline]
    fn on_phase_switch(&mut self) {
        self.switches += 1;
    }
}

/// A mutable reference forwards to the underlying sink, so engines can
/// borrow a caller-owned sink instead of taking ownership.
impl<T: Sink> Sink for &mut T {
    const ENABLED: bool = T::ENABLED;

    #[inline(always)]
    fn on_chunk(&mut self, steps: u64, events: u64) {
        (**self).on_chunk(steps, events);
    }

    #[inline(always)]
    fn on_descent(&mut self, depth: u32) {
        (**self).on_descent(depth);
    }

    #[inline(always)]
    fn on_fault(&mut self) {
        (**self).on_fault();
    }

    #[inline(always)]
    fn on_phase_switch(&mut self) {
        (**self).on_phase_switch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_accumulates_and_merges() {
        let mut a = CountingSink::new();
        a.on_chunk(100, 20);
        a.on_descent(7);
        a.on_fault();
        let mut b = CountingSink::new();
        b.on_chunk(50, 5);
        b.on_phase_switch();
        a.merge(&b);
        assert_eq!(a.steps, 150);
        assert_eq!(a.events, 25);
        assert_eq!(a.silent_steps(), 125);
        assert_eq!(a.chunks, 2);
        assert_eq!(a.descents, 1);
        assert_eq!(a.descent_depth_sum, 7);
        assert_eq!(a.faults, 1);
        assert_eq!(a.switches, 1);
    }

    #[test]
    fn snapshot_has_all_sim_keys() {
        let mut sink = CountingSink::new();
        sink.on_chunk(10, 3);
        let snap = sink.snapshot();
        assert_eq!(snap.counter("sim.steps"), Some(10));
        assert_eq!(snap.counter("sim.events"), Some(3));
        assert_eq!(snap.counter("sim.silent_steps"), Some(7));
        assert_eq!(snap.histogram("sim.chunk_steps").unwrap().count, 1);
    }

    #[test]
    fn mut_ref_forwards() {
        fn drive<T: Sink>(mut sink: T) {
            sink.on_chunk(5, 1);
        }
        let mut sink = CountingSink::new();
        drive(&mut sink);
        assert_eq!(sink.steps, 5);
        const {
            assert!(<&mut CountingSink as Sink>::ENABLED);
            assert!(!<&mut NoopSink as Sink>::ENABLED);
        }
    }
}
