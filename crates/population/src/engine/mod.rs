//! Simulation engines.
//!
//! Five engines execute the same discrete-time scheduler (uniform random
//! ordered pair per step) with different cost models (the first four
//! exactly, τ-leaping approximately):
//!
//! | Engine | Per-step cost | Sweet spot |
//! |---|---|---|
//! | [`AgentSim`] | `O(1)` | arbitrary interaction graphs, ground truth |
//! | [`CountSim`] | `O(log s)` | cliques with many states (large-`s` AVC) |
//! | [`JumpSim`]  | `O(live states)` *per productive step* | long runs dominated by silent interactions (small-`s` protocols at small margins) |
//! | [`TauLeapSim`] | `O(live states²)` *per leap* | **approximate** accelerated runs (Poisson τ-leaping, as in chemical-reaction-network simulation) |
//!
//! All engines implement [`Simulator`]; the exact ones produce
//! identically-distributed trajectories of the configuration process
//! (tested in `tests/engine_equivalence.rs`).

mod adaptive;
mod agent;
mod count;
mod jump;
mod tau_leap;

pub use adaptive::AdaptiveSim;
pub use agent::AgentSim;
pub use count::CountSim;
pub use jump::JumpSim;
pub use tau_leap::TauLeapSim;

use crate::protocol::Opinion;
use crate::spec::{ConvergenceRule, RunOutcome, Verdict};
use rand::RngCore;

/// A population-protocol simulation in progress.
///
/// The trait is object safe so heterogeneous engines can be driven by the
/// same experiment harness; randomness is injected as `&mut dyn RngCore`.
pub trait Simulator {
    /// Number of agents `n`.
    fn population(&self) -> u64;

    /// Scheduler steps elapsed so far (including skipped silent steps).
    fn steps(&self) -> u64;

    /// Configuration-changing (productive) interactions executed so far.
    ///
    /// `events() ≤ steps()`; the gap is the work saved by engines that skip
    /// silent steps.
    fn events(&self) -> u64;

    /// Current species counts, indexed by state.
    fn counts(&self) -> &[u64];

    /// Number of agents whose output is [`Opinion::A`].
    fn count_a(&self) -> u64;

    /// The state all agents currently share, if the configuration is
    /// unanimous. Maintained in `O(1)` per step.
    fn unanimous_state(&self) -> Option<crate::StateId>;

    /// Output of the given state under the protocol's `γ`.
    fn state_output(&self, state: crate::StateId) -> Opinion;

    /// Whether no productive ordered pair remains.
    ///
    /// May cost `O(live states²)`; the generic run loop only consults it
    /// under [`ConvergenceRule::Silence`] or when `advance` reports a
    /// terminal configuration.
    fn config_is_silent(&self) -> bool;

    /// Advances the simulation by at least one scheduler step.
    ///
    /// Returns the number of steps advanced; `0` means the configuration is
    /// silent (terminal) and the simulation cannot progress.
    fn advance(&mut self, rng: &mut dyn RngCore) -> u64;

    /// Runs until the convergence rule holds or `max_steps` is exceeded.
    ///
    /// Note that engines that skip silent steps in batches may overshoot
    /// `max_steps`; the reported [`RunOutcome::steps`] is always the true
    /// step count at the moment the run stopped.
    fn run_to_consensus_with(
        &mut self,
        rng: &mut dyn RngCore,
        max_steps: u64,
        rule: ConvergenceRule,
    ) -> RunOutcome {
        let n = self.population();
        // Cadence for the (expensive) explicit silence check.
        let mut next_silence_check = self.steps();
        let verdict = loop {
            match rule {
                ConvergenceRule::OutputConsensus => {
                    let a = self.count_a();
                    if a == n {
                        break Verdict::Consensus(Opinion::A);
                    }
                    if a == 0 {
                        break Verdict::Consensus(Opinion::B);
                    }
                }
                ConvergenceRule::StateConsensus => {
                    if let Some(state) = self.unanimous_state() {
                        break Verdict::Consensus(self.state_output(state));
                    }
                }
                ConvergenceRule::Silence => {
                    if self.steps() >= next_silence_check {
                        if self.config_is_silent() {
                            break silent_verdict(self, n);
                        }
                        next_silence_check = self.steps().saturating_add(n);
                    }
                }
                ConvergenceRule::OutputCount { opinion, count } => {
                    let with_opinion = match opinion {
                        Opinion::A => self.count_a(),
                        Opinion::B => n - self.count_a(),
                    };
                    if with_opinion == count {
                        break Verdict::Consensus(opinion);
                    }
                }
            }
            if self.steps() >= max_steps {
                break Verdict::MaxSteps;
            }
            if self.advance(rng) == 0 {
                // Terminal (silent) configuration.
                break match rule {
                    ConvergenceRule::Silence => silent_verdict(self, n),
                    _ => {
                        // The rule was checked above and did not hold, and it
                        // never will: the configuration can no longer change.
                        Verdict::Stuck
                    }
                };
            }
        };
        RunOutcome {
            steps: self.steps(),
            parallel_time: crate::time::parallel_time(self.steps(), n),
            verdict,
        }
    }

    /// Runs under [`ConvergenceRule::OutputConsensus`] (the paper's
    /// convergence notion for AVC and the four-state protocol).
    fn run_to_consensus(&mut self, rng: &mut dyn RngCore, max_steps: u64) -> RunOutcome {
        self.run_to_consensus_with(rng, max_steps, ConvergenceRule::OutputConsensus)
    }
}

fn silent_verdict<S: Simulator + ?Sized>(sim: &S, n: u64) -> Verdict {
    let a = sim.count_a();
    if a == n {
        Verdict::Consensus(Opinion::A)
    } else if a == 0 {
        Verdict::Consensus(Opinion::B)
    } else {
        Verdict::Stuck
    }
}

/// Whether a configuration (given as species counts) is silent under
/// `protocol`: no ordered pair of distinct agents can change it.
///
/// Brute force over live species pairs — `O(live²)` — intended for
/// analysis and verification tools, not hot loops.
pub fn config_silent<P: crate::Protocol>(protocol: &P, counts: &[u64]) -> bool {
    brute_force_silent(protocol, counts)
}

/// Computes the silence of a configuration by brute force over live pairs.
pub(crate) fn brute_force_silent<P: crate::Protocol>(protocol: &P, counts: &[u64]) -> bool {
    let live: Vec<u32> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, _)| i as u32)
        .collect();
    for &i in &live {
        for &j in &live {
            if i == j && counts[i as usize] < 2 {
                continue;
            }
            if !protocol.is_silent(i, j) {
                return false;
            }
        }
    }
    true
}
