//! Property tests over the interaction-graph generators: the handshake
//! (degree-sum) identity, structural connectivity, Erdős–Rényi edge-count
//! bounds, and sampler validity on every topology.

use avc::population::graph::Graph;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Per-agent degrees derived from the edge list.
fn degrees(g: &Graph) -> Vec<usize> {
    let mut deg = vec![0usize; g.num_agents()];
    for (u, v) in g.edge_pairs() {
        deg[u] += 1;
        deg[v] += 1;
    }
    deg
}

/// The undirected edge set, normalized to `u < v`.
fn edge_set(g: &Graph) -> HashSet<(usize, usize)> {
    g.edge_pairs().map(|(u, v)| (u.min(v), u.max(v))).collect()
}

proptest! {
    /// Handshake identity on Erdős–Rényi samples: the degree sum equals
    /// twice the edge count, and no edge repeats or loops.
    #[test]
    fn erdos_renyi_degree_sum_is_twice_the_edges(n in 2usize..60, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Graph::erdos_renyi(n, p, &mut rng);
        prop_assert_eq!(degrees(&g).iter().sum::<usize>(), 2 * g.num_edges());
        prop_assert_eq!(edge_set(&g).len(), g.num_edges(), "duplicate edge");
    }

    /// Random-regular samples are exactly `k`-regular (a stronger form of
    /// the degree-sum identity), simple, and have `n·k/2` edges.
    #[test]
    fn random_regular_is_regular(half in 3usize..20, k in 1usize..6, seed in any::<u64>()) {
        // Even n keeps n·k even for every k, and n ≥ 6 > k keeps (n, k)
        // feasible — no rejection sampling needed.
        let n = 2 * half;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Graph::random_regular(n, k, &mut rng);
        prop_assert_eq!(g.num_edges(), n * k / 2);
        prop_assert_eq!(edge_set(&g).len(), g.num_edges(), "duplicate edge");
        let deg = degrees(&g);
        prop_assert!(deg.iter().all(|&d| d == k), "degrees {:?} not all {}", deg, k);
    }

    /// The deterministic topologies are connected at every valid size, and
    /// carry their textbook edge counts.
    #[test]
    fn structured_topologies_are_connected(n in 3usize..120) {
        let cases = [
            (Graph::cycle(n), n),
            (Graph::path(n), n - 1),
            (Graph::star(n), n - 1),
            (Graph::clique(n), n * (n - 1) / 2),
        ];
        for (g, expected_edges) in cases {
            prop_assert!(g.is_connected());
            prop_assert_eq!(g.num_edges(), expected_edges);
            prop_assert_eq!(degrees(&g).iter().sum::<usize>(), 2 * expected_edges);
        }
    }

    /// Grids of every shape are connected with `r(c−1) + c(r−1)` edges.
    #[test]
    fn grids_are_connected(rows in 1usize..12, cols in 2usize..12) {
        let g = Graph::grid(rows, cols);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.num_agents(), rows * cols);
        prop_assert_eq!(g.num_edges(), rows * (cols - 1) + cols * (rows - 1));
    }

    /// `G(n, p)` edge counts respect the binomial support: never above
    /// `n(n−1)/2`, and exactly the extremes at `p = 0` and `p = 1`.
    #[test]
    fn erdos_renyi_edge_bounds(n in 2usize..60, seed in any::<u64>()) {
        let max_edges = n * (n - 1) / 2;
        let mut rng = SmallRng::seed_from_u64(seed);
        prop_assert_eq!(Graph::erdos_renyi(n, 0.0, &mut rng).num_edges(), 0);
        prop_assert_eq!(Graph::erdos_renyi(n, 1.0, &mut rng).num_edges(), max_edges);
        let mid = Graph::erdos_renyi(n, 0.5, &mut rng);
        prop_assert!(mid.num_edges() <= max_edges);
        // p = 1 must reproduce the clique exactly, edge for edge.
        let full = Graph::erdos_renyi(n, 1.0, &mut rng);
        prop_assert_eq!(edge_set(&full), edge_set(&Graph::clique(n)));
        // And its sampler must still work on the explicit representation.
        let (u, v) = full.sample_pair(&mut rng);
        prop_assert!(u != v && u < n && v < n);
    }

    /// `sample_pair` only ever returns ordered pairs of *distinct,
    /// adjacent* agents, on every topology family.
    #[test]
    fn sample_pair_respects_the_edge_set(n in 3usize..40, seed in any::<u64>(), draws in 1usize..50) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graphs = [
            Graph::cycle(n),
            Graph::star(n),
            Graph::grid(2, n.div_ceil(2)),
            Graph::complete_bipartite(n / 2 + 1, n / 2 + 1),
            Graph::clique(n),
        ];
        for g in &graphs {
            let edges = edge_set(g);
            for _ in 0..draws {
                let (u, v) = g.sample_pair(&mut rng);
                prop_assert!(u != v, "self-pair sampled");
                prop_assert!(
                    edges.contains(&(u.min(v), u.max(v))),
                    "non-adjacent pair ({u},{v}) sampled"
                );
            }
        }
    }
}
