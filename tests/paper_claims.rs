//! End-to-end checks of the paper's headline claims at reduced scale, run
//! through the same experiment code that regenerates the figures.

use avc::analysis::experiments::{fig3, fig4, four_state_scaling, three_state_error};
use avc::analysis::harness::Parallelism;
use avc::analysis::stats::loglog_slope;
use avc::verify::enumerate::three_state_impossibility;
use avc::verify::knowledge::{cover_steps, expected_cover_steps};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Figure 3's ordering: AVC ≈ 3-state ≪ 4-state at `ε = 1/n`, with the
/// exact protocols at zero error and the 3-state protocol erring.
#[test]
fn figure3_ordering_holds() {
    let cells = fig3::run(&fig3::Config {
        ns: vec![1_001],
        runs: 21,
        seed: 3,
        parallelism: Parallelism::Auto,
    });
    let get = |name: &str| {
        cells
            .iter()
            .find(|c| c.protocol.starts_with(name))
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    let t3 = get("3-state").results.mean_parallel_time();
    let t4 = get("4-state").results.mean_parallel_time();
    let tavc = get("avc").results.mean_parallel_time();

    assert!(t4 > 20.0 * tavc, "4-state {t4} should dwarf AVC {tavc}");
    assert!(
        tavc < 5.0 * t3,
        "AVC {tavc} should be comparable to 3-state {t3}"
    );
    assert_eq!(get("4-state").results.error_fraction(), 0.0);
    assert_eq!(get("avc").results.error_fraction(), 0.0);
    assert!(
        get("3-state").results.error_fraction() > 0.2,
        "3-state should err often at eps = 1/n"
    );
}

/// Figure 4's left panel: at fixed `s`, time scales like `1/ε`; at fixed
/// `ε`, time falls roughly like `1/s` (until the polylog floor).
#[test]
fn figure4_scaling_shape_holds() {
    let points = fig4::run(&fig4::Config {
        n: 4_001,
        state_counts: vec![4, 34, 258],
        epsilons: vec![1e-3, 1e-2, 1e-1],
        runs: 9,
        seed: 11,
        parallelism: Parallelism::Auto,
    });
    let get = |s: u64, eps: f64| {
        points
            .iter()
            .find(|p| p.s == s && (p.epsilon - eps).abs() < 1e-9)
            .unwrap()
            .summary
            .mean
    };
    // Left panel: 1/eps growth at s = 4 across two decades.
    let slope = loglog_slope(
        &[1e3, 1e2, 1e1],
        &[get(4, 1e-3), get(4, 1e-2), get(4, 1e-1)],
    );
    assert!((0.5..1.5).contains(&slope), "eps-scaling slope {slope}");
    // More states help at the hard margin by at least ~4x per ~8x states.
    assert!(get(4, 1e-3) > 4.0 * get(34, 1e-3));
    assert!(get(34, 1e-3) > 2.0 * get(258, 1e-3));
    // Right panel: the s·ε collapse — equal s·ε cells have similar times.
    let a = get(34, 1e-2); // s·ε = 0.34
    let b = get(258, 1e-3); // s·ε ≈ 0.258
    let ratio = a / b;
    assert!(
        (0.2..5.0).contains(&ratio),
        "collapse failed: {a} vs {b} at similar s*eps"
    );
}

/// Theorem B.1's shape: the four-state protocol's time is `Θ(1/ε)`.
#[test]
fn four_state_lower_bound_scaling() {
    let outcome = four_state_scaling::run(&four_state_scaling::Config {
        n: 4_001,
        epsilons: vec![1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1],
        runs: 11,
        seed: 21,
        parallelism: Parallelism::Auto,
    });
    assert!(
        (0.6..1.4).contains(&outcome.slope),
        "expected Θ(1/eps), fitted exponent {}",
        outcome.slope
    );
}

/// Theorem C.1's shape: knowledge-set cover needs `Θ(n log n)` steps, and
/// the simulation matches the closed-form expectation.
#[test]
fn information_lower_bound_scaling() {
    let mut rng = SmallRng::seed_from_u64(5);
    for n in [200u64, 2_000] {
        let trials = 60;
        let mean = (0..trials)
            .map(|_| cover_steps(n, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        let expected = expected_cover_steps(n);
        assert!(
            (mean - expected).abs() / expected < 0.15,
            "n={n}: {mean} vs {expected}"
        );
        // Θ(log n) parallel time: between ln n and 3·ln n.
        let parallel = expected / n as f64;
        let ln_n = (n as f64).ln();
        assert!(parallel > 0.8 * ln_n && parallel < 3.0 * ln_n);
    }
}

/// The PVV09 error law: the empirical error is within an order of magnitude
/// of `exp(−D·n)` and decays sharply in `ε²n`.
#[test]
fn three_state_error_law_shape() {
    let points = three_state_error::run(&three_state_error::Config {
        ns: vec![2_001],
        epsilons: vec![0.003, 0.05],
        runs: 200,
        seed: 17,
        parallelism: Parallelism::Auto,
    });
    assert!(points[0].error_fraction > 5.0 * points[1].error_fraction.max(0.005));
}

/// The MNRS14 impossibility on a reduced instance set (the full n ≤ 7 sweep
/// runs in the `mc_three_state` binary).
#[test]
fn no_three_state_protocol_is_exact_up_to_n5() {
    let outcome = three_state_impossibility(5);
    assert_eq!(outcome.candidates, 2 * 6u64.pow(6));
    assert_eq!(outcome.survivors, 0);
}
