//! Simulation engines.
//!
//! Five engines execute the same discrete-time scheduler (uniform random
//! ordered pair per step) with different cost models (the first four
//! exactly, τ-leaping approximately):
//!
//! | Engine | Per-step cost | Sweet spot |
//! |---|---|---|
//! | [`AgentSim`] | `O(1)` | arbitrary interaction graphs, ground truth |
//! | [`CountSim`] | `O(log s)` | cliques with many states (large-`s` AVC) |
//! | [`JumpSim`]  | `O(live states)` *per productive step* | long runs dominated by silent interactions (small-`s` protocols at small margins) |
//! | [`TauLeapSim`] | `O(live states²)` *per leap* | **approximate** accelerated runs (Poisson τ-leaping, as in chemical-reaction-network simulation) |
//!
//! All engines implement [`Simulator`]; the exact ones produce
//! identically-distributed trajectories of the configuration process
//! (tested in `tests/engine_equivalence.rs`).

mod adaptive;
mod agent;
mod count;
mod jump;
mod tau_leap;

pub use adaptive::AdaptiveSim;
pub use agent::AgentSim;
pub use count::CountSim;
pub use jump::JumpSim;
pub use tau_leap::TauLeapSim;

use crate::config::Config;
use crate::faults::{Fault, FaultError};
use crate::protocol::Opinion;
use crate::spec::{ConvergenceRule, RunOutcome, Verdict};
use rand::RngCore;

/// Inline-checkable stopping rule for a chunked advance.
///
/// A chunk stops at the *first* step where any armed predicate holds
/// (`reason = `[`StopReason::Predicate`]), or — predicates checked first —
/// at the first step where `steps ≥ max_steps`
/// (`reason = `[`StopReason::StepBudget`]). The predicates are the
/// count-space projections of the [`ConvergenceRule`] variants
/// (see [`StopCondition::for_rule`]):
///
/// * `a_le` / `a_ge` / `a_eq` — thresholds on `count_a` (agents whose
///   output is [`Opinion::A`]);
/// * `unanimity` — all agents share one *state* (not just one output).
///
/// Engines evaluate these inline in their monomorphized loops — no dyn
/// dispatch, no RNG consumption — so stopping at the exact boundary step is
/// free and trajectories are bit-identical to single-step driving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopCondition {
    /// Stop once `steps ≥ max_steps` (checked *after* the predicates, and
    /// *before* each step — batching engines may still overshoot it within
    /// one batch; see [`Simulator::advance_upto`]).
    pub max_steps: u64,
    /// Stop when `count_a ≤ a_le`.
    pub a_le: Option<u64>,
    /// Stop when `count_a ≥ a_ge`.
    pub a_ge: Option<u64>,
    /// Stop when `count_a == a_eq`.
    pub a_eq: Option<u64>,
    /// Stop when all agents share one state.
    pub unanimity: bool,
}

impl Default for StopCondition {
    fn default() -> StopCondition {
        StopCondition {
            max_steps: u64::MAX,
            a_le: None,
            a_ge: None,
            a_eq: None,
            unanimity: false,
        }
    }
}

impl StopCondition {
    /// A condition with no predicates and no step budget (never stops).
    #[must_use]
    pub fn never() -> StopCondition {
        StopCondition::default()
    }

    /// Replaces the step budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> StopCondition {
        self.max_steps = max_steps;
        self
    }

    /// Arms the `count_a ≤ lo` predicate.
    #[must_use]
    pub fn when_a_at_most(mut self, lo: u64) -> StopCondition {
        self.a_le = Some(lo);
        self
    }

    /// Arms the `count_a ≥ hi` predicate.
    #[must_use]
    pub fn when_a_at_least(mut self, hi: u64) -> StopCondition {
        self.a_ge = Some(hi);
        self
    }

    /// Arms the `count_a == c` predicate.
    #[must_use]
    pub fn when_a_exactly(mut self, c: u64) -> StopCondition {
        self.a_eq = Some(c);
        self
    }

    /// Arms the state-unanimity predicate.
    #[must_use]
    pub fn when_unanimous(mut self) -> StopCondition {
        self.unanimity = true;
        self
    }

    /// The predicates under which `rule` first holds, for population `n`
    /// (no step budget).
    ///
    /// [`ConvergenceRule::Silence`] has no count-space predicate — the
    /// driver checks `config_is_silent` at its own cadence instead.
    /// An unsatisfiable [`ConvergenceRule::OutputCount`] (more agents
    /// demanded than exist) arms nothing.
    #[must_use]
    pub fn for_rule(rule: ConvergenceRule, n: u64) -> StopCondition {
        let cond = StopCondition::never();
        match rule {
            ConvergenceRule::OutputConsensus => cond.when_a_at_most(0).when_a_at_least(n),
            ConvergenceRule::StateConsensus => cond.when_unanimous(),
            ConvergenceRule::Silence => cond,
            ConvergenceRule::OutputCount { opinion, count } => {
                let target = match opinion {
                    Opinion::A => Some(count),
                    Opinion::B => n.checked_sub(count),
                };
                match target {
                    Some(c) => cond.when_a_exactly(c),
                    None => cond,
                }
            }
        }
    }

    /// Whether any armed predicate holds for the given configuration
    /// summary. Cheap enough for per-step use in tight loops.
    #[inline]
    #[must_use]
    pub fn predicate_hit(&self, count_a: u64, unanimous: bool) -> bool {
        (self.unanimity && unanimous)
            || self.a_le.is_some_and(|lo| count_a <= lo)
            || self.a_ge.is_some_and(|hi| count_a >= hi)
            || self.a_eq.is_some_and(|c| count_a == c)
    }
}

/// Why a chunked advance returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A [`StopCondition`] predicate holds (checked before the budget).
    Predicate,
    /// `steps ≥ max_steps` (batching engines may have overshot the budget
    /// within their final batch; the report still counts true steps).
    StepBudget,
    /// The configuration is silent: no interaction can change it.
    Silent,
}

/// What one [`Simulator::advance_upto`] call did.
///
/// Both counters are **deltas** for this call, not totals; totals stay
/// available via [`Simulator::steps`] / [`Simulator::events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvanceReport {
    /// Scheduler steps advanced by this call (including skipped silent
    /// steps).
    pub steps: u64,
    /// Productive interactions executed by this call.
    pub events: u64,
    /// Why the chunk stopped.
    pub reason: StopReason,
}

/// Reference implementation of [`Simulator::advance_upto`]: the exact
/// check-then-step order every chunked loop must reproduce, driven one
/// `advance` at a time.
///
/// Kept public so tests can pin chunked implementations against it; engines
/// override `advance_upto` with monomorphized loops that consume the RNG
/// identically.
pub fn advance_upto_step_by_step<S: Simulator + ?Sized>(
    sim: &mut S,
    rng: &mut dyn RngCore,
    stop: StopCondition,
) -> AdvanceReport {
    let (steps0, events0) = (sim.steps(), sim.events());
    let reason = loop {
        if stop.predicate_hit(sim.count_a(), sim.unanimous_state().is_some()) {
            break StopReason::Predicate;
        }
        if sim.steps() >= stop.max_steps {
            break StopReason::StepBudget;
        }
        if sim.advance(rng) == 0 {
            break StopReason::Silent;
        }
    };
    AdvanceReport {
        steps: sim.steps() - steps0,
        events: sim.events() - events0,
        reason,
    }
}

/// A population-protocol simulation in progress.
///
/// The trait is object safe so heterogeneous engines can be driven by the
/// same experiment harness; randomness is injected as `&mut dyn RngCore`.
/// Hot paths that know the concrete engine and RNG types should go through
/// [`ChunkedSimulator`] (via [`crate::driver::Driver::run`]) instead, which
/// monomorphizes the inner loop end to end.
pub trait Simulator {
    /// Number of agents `n`.
    fn population(&self) -> u64;

    /// Scheduler steps elapsed so far (including skipped silent steps).
    fn steps(&self) -> u64;

    /// Configuration-changing (productive) interactions executed so far.
    ///
    /// `events() ≤ steps()`; the gap is the work saved by engines that skip
    /// silent steps.
    fn events(&self) -> u64;

    /// Current species counts, indexed by state.
    fn counts(&self) -> &[u64];

    /// Number of agents whose output is [`Opinion::A`].
    fn count_a(&self) -> u64;

    /// The state all agents currently share, if the configuration is
    /// unanimous. Maintained in `O(1)` per step.
    fn unanimous_state(&self) -> Option<crate::StateId>;

    /// Output of the given state under the protocol's `γ`.
    fn state_output(&self, state: crate::StateId) -> Opinion;

    /// Whether no productive ordered pair remains.
    ///
    /// May cost `O(live states²)`; the generic run loop only consults it
    /// under [`ConvergenceRule::Silence`] or when `advance` reports a
    /// terminal configuration.
    fn config_is_silent(&self) -> bool;

    /// Applies a fault to the current configuration, between steps.
    ///
    /// Returns the number of agents actually affected (`Corrupt` clamps to
    /// the source count; a `BitFlip` leaving the state space, or a `Crash`
    /// of an already-crashed agent, affects zero). Count-space faults
    /// ([`Fault::Corrupt`]) are supported by every engine; agent-addressed
    /// faults need per-agent identity and are only supported by
    /// [`AgentSim`] — other engines return [`FaultError::Unsupported`].
    ///
    /// Injection never draws randomness: the RNG stream of a faulted run
    /// is identical to a fault-free run of the same length.
    ///
    /// # Errors
    ///
    /// [`FaultError::Unsupported`] for fault classes the engine cannot
    /// express; [`FaultError::OutOfRange`] for bad state or agent indices.
    fn inject(&mut self, fault: Fault) -> Result<u64, FaultError> {
        Err(FaultError::Unsupported {
            engine: "unknown engine",
            fault,
        })
    }

    /// Advances the simulation by at least one scheduler step.
    ///
    /// Returns the number of steps advanced; `0` means the configuration is
    /// silent (terminal) and the simulation cannot progress.
    fn advance(&mut self, rng: &mut dyn RngCore) -> u64;

    /// Advances repeatedly until `stop` says to stop, checking the
    /// predicates *before* the budget *before* each step.
    ///
    /// Consumes the RNG identically to driving [`Simulator::advance`] one
    /// step at a time (the default does exactly that; engines override it
    /// with a loop monomorphized via [`ChunkedSimulator::advance_chunk`]),
    /// so the chunk boundary never perturbs the trajectory and the run
    /// stops at the exact step a predicate first holds.
    ///
    /// Engines that batch steps ([`JumpSim`], [`TauLeapSim`]) may overshoot
    /// `stop.max_steps` within their final batch; the report counts the
    /// true steps taken either way.
    fn advance_upto(&mut self, rng: &mut dyn RngCore, stop: StopCondition) -> AdvanceReport {
        advance_upto_step_by_step(self, rng, stop)
    }

    /// Runs until the convergence rule holds or `max_steps` is exceeded.
    ///
    /// Note that engines that skip silent steps in batches may overshoot
    /// `max_steps`; the reported [`RunOutcome::steps`] is always the true
    /// step count at the moment the run stopped.
    ///
    /// This is the dyn-dispatch entry point; it delegates to
    /// [`crate::driver::Driver`], which owns the rule-evaluation loop.
    fn run_to_consensus_with(
        &mut self,
        rng: &mut dyn RngCore,
        max_steps: u64,
        rule: ConvergenceRule,
    ) -> RunOutcome {
        crate::driver::Driver::new(rule)
            .with_max_steps(max_steps)
            .run_dyn(self, rng, &mut crate::driver::NullObserver)
    }

    /// Runs under [`ConvergenceRule::OutputConsensus`] (the paper's
    /// convergence notion for AVC and the four-state protocol).
    fn run_to_consensus(&mut self, rng: &mut dyn RngCore, max_steps: u64) -> RunOutcome {
        self.run_to_consensus_with(rng, max_steps, ConvergenceRule::OutputConsensus)
    }
}

/// A [`Simulator`] whose chunked advance is generic over the RNG type.
///
/// This is the monomorphized fast path: with a concrete `R` the per-step
/// RNG draws, predicate checks, and engine bookkeeping all inline into one
/// tight loop with zero dynamic dispatch. The trait is deliberately *not*
/// object safe — callers that only have a `dyn Simulator` use
/// [`Simulator::advance_upto`] instead, which every engine overrides to
/// forward here (with `R = dyn RngCore`, still hoisting the per-step
/// virtual `advance` call out of the loop).
pub trait ChunkedSimulator: Simulator {
    /// As [`Simulator::advance_upto`], monomorphized over the RNG.
    ///
    /// Implementations must reproduce the exact check-then-step order of
    /// [`advance_upto_step_by_step`] and consume the RNG identically
    /// (pinned by `tests/advance_upto_equivalence.rs`).
    fn advance_chunk<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        stop: StopCondition,
    ) -> AdvanceReport;

    /// Reinitializes the engine in place to the given starting
    /// configuration, reusing every internal allocation.
    ///
    /// This is the trial-batch reuse seam: a worker thread builds one
    /// engine for its whole slice of trials and calls `reset` between
    /// them instead of constructing afresh. The contract is strict
    /// *fresh-equivalence* — after `reset(config)` the engine must be
    /// observationally identical to a newly constructed one over the same
    /// protocol and configuration, including its RNG consumption pattern
    /// (pinned by `tests/reuse_reset.rs`). Trial results therefore cannot
    /// depend on which worker (or which preceding trial) warmed the
    /// engine up.
    ///
    /// Implementations must not allocate on this path (beyond freeing
    /// state a fresh engine would not hold, e.g. a fault ledger from a
    /// faulted previous trial).
    ///
    /// # Panics
    ///
    /// Panics if `config` is incompatible with the engine's shape: a
    /// different state count, or (for engines with per-agent identity) a
    /// different population size.
    fn reset(&mut self, config: &Config);
}

/// An object-safe view of a [`ChunkedSimulator`], monomorphized over
/// [`SmallRng`](rand::rngs::SmallRng).
///
/// [`ChunkedSimulator::advance_chunk`] is generic over the RNG and therefore
/// not object safe, so heterogeneous engines cannot be boxed behind it. This
/// trait closes the gap for the one RNG the harness actually uses: the
/// blanket impl forwards to `advance_chunk::<SmallRng>` — the *same*
/// monomorphized tight loop the concrete-type path compiles — so boxing an
/// engine as `Box<dyn ErasedChunkedSim>` costs exactly one virtual call per
/// chunk (thousands-to-millions of steps), not per step, and the RNG stream
/// is bit-identical to concrete dispatch (pinned by
/// `tests/erased_dispatch.rs`).
pub trait ErasedChunkedSim: Simulator {
    /// As [`ChunkedSimulator::advance_chunk`] with `R = SmallRng`.
    fn advance_chunk_erased(
        &mut self,
        rng: &mut rand::rngs::SmallRng,
        stop: StopCondition,
    ) -> AdvanceReport;

    /// As [`ChunkedSimulator::reset`], behind the erased seam — same
    /// fresh-equivalence contract, same no-allocation expectation.
    fn reset_erased(&mut self, config: &Config);
}

impl<S: ChunkedSimulator> ErasedChunkedSim for S {
    fn advance_chunk_erased(
        &mut self,
        rng: &mut rand::rngs::SmallRng,
        stop: StopCondition,
    ) -> AdvanceReport {
        self.advance_chunk(rng, stop)
    }

    fn reset_erased(&mut self, config: &Config) {
        self.reset(config);
    }
}

pub(crate) fn silent_verdict<S: Simulator + ?Sized>(sim: &S, n: u64) -> Verdict {
    let a = sim.count_a();
    if a == n {
        Verdict::Consensus(Opinion::A)
    } else if a == 0 {
        Verdict::Consensus(Opinion::B)
    } else {
        Verdict::Stuck
    }
}

/// Whether a configuration (given as species counts) is silent under
/// `protocol`: no ordered pair of distinct agents can change it.
///
/// Delegates to [`Protocol::config_silent`](crate::Protocol::config_silent):
/// brute force over live species pairs by default, a precomputed bitset scan
/// for [`Cached`](crate::cached::Cached) protocols.
pub fn config_silent<P: crate::Protocol>(protocol: &P, counts: &[u64]) -> bool {
    protocol.config_silent(counts)
}
