//! The `avc` command-line interface.
//!
//! ```text
//! avc sweep <name> [flags]    run (or resume) a sweep, checkpointing cells
//! avc resume <name> [flags]   alias for `sweep` — resuming IS rerunning
//! avc export <name> [flags]   write the sweep's CSVs from the store
//! avc ls [--cells]            list stored results by experiment
//! avc show <hash-prefix>      inspect one stored cell
//! avc help                    this summary plus the sweep registry
//! ```
//!
//! Shared flags: `--out DIR` (CSV directory, default `results`), `--store
//! DIR` (registry directory, default `<out>/store`), `--progress`,
//! `--serial` / `--threads N`, plus each sweep's own flags (`--quick`,
//! `--runs`, `--seed`, …). The legacy `avc-bench` binaries call
//! [`legacy`], which is exactly `sweep` followed by `export`.

use crate::specs;
use crate::store::Store;
use crate::sweep::{self, Plan};
use avc_analysis::cli::Args;
use avc_analysis::harness::StatsCollector;
use std::path::{Path, PathBuf};

/// The CSV output directory (`--out`, default `results`).
fn out_dir(args: &Args) -> String {
    args.get("out").unwrap_or("results").to_string()
}

/// The registry directory (`--store`, default `<out>/store`).
fn store_dir(args: &Args) -> PathBuf {
    match args.get("store") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(&out_dir(args)).join("store"),
    }
}

fn collector(args: &Args) -> StatsCollector {
    if args.flag("progress") {
        StatsCollector::verbose()
    } else {
        StatsCollector::new()
    }
}

fn build_plan(name: &str, args: &Args) -> Result<Plan, String> {
    specs::build(name, args).ok_or_else(|| {
        let known: Vec<&str> = specs::NAMES.iter().map(|(n, _)| *n).collect();
        format!(
            "unknown sweep `{name}` — known sweeps: {}",
            known.join(", ")
        )
    })
}

fn cmd_sweep(name: &str, args: &Args) -> Result<(), String> {
    let plan = build_plan(name, args)?;
    println!("== avc sweep {name} ==");
    println!("{}", plan.banner);
    println!();
    let mut store = Store::open(store_dir(args)).map_err(|e| e.to_string())?;
    let started = std::time::Instant::now();
    let outcome = sweep::run(&mut store, &plan, &collector(args), true)
        .map_err(|e| format!("store append failed: {e}"))?;
    store
        .compact()
        .map_err(|e| format!("store compaction failed: {e}"))?;
    println!(
        "sweep {name}: {} cells ran, {} cached, {:.1}s wall (store: {})",
        outcome.ran,
        outcome.cached,
        started.elapsed().as_secs_f64(),
        store.records_path().display()
    );
    Ok(())
}

fn cmd_export(name: &str, args: &Args) -> Result<(), String> {
    let plan = build_plan(name, args)?;
    let store = Store::open(store_dir(args)).map_err(|e| e.to_string())?;
    let export = sweep::export(&store, &plan)?;
    let out = out_dir(args);
    for (stem, table) in &export.tables {
        avc_analysis::experiments::report(table, &out, stem);
    }
    for line in &export.trailer {
        println!("{line}");
    }
    Ok(())
}

fn cmd_ls(args: &Args) -> Result<(), String> {
    let store = Store::open(store_dir(args)).map_err(|e| e.to_string())?;
    if store.is_empty() {
        println!("store {} is empty", store.records_path().display());
        return Ok(());
    }
    // Group the latest records by experiment, keeping registry order.
    for (name, description) in specs::NAMES {
        let cells: Vec<_> = store
            .iter_latest()
            .filter(|r| r.manifest.experiment == name)
            .collect();
        if cells.is_empty() {
            continue;
        }
        let wall: u64 = cells.iter().map(|r| r.wall_ms).sum();
        println!(
            "{name}: {} cells, {:.1}s compute — {description}",
            cells.len(),
            wall as f64 / 1e3
        );
        if args.flag("cells") {
            for r in &cells {
                println!(
                    "  {}  {}  ({:.1}s)",
                    &r.hash[..12],
                    r.manifest.get("cell").unwrap_or("?"),
                    r.wall_ms as f64 / 1e3
                );
            }
        }
    }
    let strays = store
        .iter_latest()
        .filter(|r| {
            specs::NAMES
                .iter()
                .all(|(n, _)| *n != r.manifest.experiment)
        })
        .count();
    if strays > 0 {
        println!("(+ {strays} cells from unregistered experiments)");
    }
    Ok(())
}

fn cmd_show(prefix: &str, args: &Args) -> Result<(), String> {
    let store = Store::open(store_dir(args)).map_err(|e| e.to_string())?;
    let hits = store.find_by_prefix(prefix);
    match hits.as_slice() {
        [] => Err(format!("no stored cell matches `{prefix}`")),
        [record] => {
            println!("{}", record.manifest.to_json().to_string_pretty());
            println!("hash: {}", record.hash);
            println!("wall: {:.1}s", record.wall_ms as f64 / 1e3);
            if let Some(trials) = &record.result.trials {
                println!(
                    "trials: {} runs, {} converged samples, error fraction {}",
                    trials.total_runs,
                    trials.samples.len(),
                    trials.error_fraction
                );
            }
            for (stem, rows) in &record.result.tables {
                println!("table {stem}: {} row(s)", rows.len());
                for row in rows {
                    println!("  {}", row.join(" | "));
                }
            }
            for (key, value) in &record.result.values {
                println!("value {key} = {value}");
            }
            for note in &record.result.notes {
                println!("note: {note}");
            }
            Ok(())
        }
        many => {
            println!("{} cells match `{prefix}`:", many.len());
            for r in many {
                println!(
                    "  {}  {} / {}",
                    &r.hash[..12],
                    r.manifest.experiment,
                    r.manifest.get("cell").unwrap_or("?")
                );
            }
            Ok(())
        }
    }
}

fn usage() -> String {
    let mut out = String::from(
        "usage: avc <command> [flags]\n\
         \n\
         commands:\n\
         \x20 sweep <name>    run (or resume) a sweep, checkpointing each cell\n\
         \x20 resume <name>   alias for sweep\n\
         \x20 export <name>   write the sweep's results/*.csv from the store\n\
         \x20 ls [--cells]    list stored results by experiment\n\
         \x20 show <hash>     inspect one stored cell by hash prefix\n\
         \x20 help            this message\n\
         \n\
         flags: --out DIR (default results), --store DIR (default <out>/store),\n\
         \x20      --progress, --serial | --threads N, plus per-sweep flags\n\
         \x20      (--quick, --runs N, --seed N, ...)\n\
         \n\
         sweeps:\n",
    );
    for (name, description) in specs::NAMES {
        out.push_str(&format!("  {name:<16} {description}\n"));
    }
    out
}

/// Entry point for the `avc` binary: dispatches a parsed command line and
/// returns the process exit code.
#[must_use]
pub fn main() -> i32 {
    let (positionals, args) = Args::from_env_with_positionals();
    let command = positionals.first().map(String::as_str);
    let target = positionals.get(1).map(String::as_str);
    let outcome = match (command, target) {
        (Some("sweep") | Some("resume"), Some(name)) => cmd_sweep(name, &args),
        (Some("export"), Some(name)) => cmd_export(name, &args),
        (Some("ls"), None) => cmd_ls(&args),
        (Some("show"), Some(prefix)) => cmd_show(prefix, &args),
        (Some("help") | None, _) => {
            print!("{}", usage());
            Ok(())
        }
        (Some("sweep") | Some("resume") | Some("export"), None) => {
            Err("missing sweep name (see `avc help`)".to_string())
        }
        (Some("show"), None) => Err("missing hash prefix (see `avc help`)".to_string()),
        (Some(other), _) => Err(format!("unknown command `{other}` (see `avc help`)")),
    };
    match outcome {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("avc: {message}");
            1
        }
    }
}

/// The legacy single-binary behavior: run the named sweep to completion,
/// then export its CSVs — checkpointing included. The ten `avc-bench`
/// binaries are one-line wrappers over this.
pub fn legacy(name: &str) {
    let args = Args::from_env();
    if let Err(message) = cmd_sweep(name, &args).and_then(|()| cmd_export(name, &args)) {
        eprintln!("avc: {message}");
        std::process::exit(1);
    }
}
