//! Parallel composition of population protocols.
//!
//! The product construction is the standard way population protocols are
//! combined (it underlies, e.g., the register-machine simulations of
//! \[AAE08] that motivate fast majority as a primitive): agents carry a
//! state from each component and every interaction updates both components
//! independently. The composite state space is the product, so the
//! composite of an `s₁`- and an `s₂`-state protocol has `s₁·s₂` states.

use avc_population::{Opinion, Protocol, StateId};

/// Which component of a [`Parallel`] composition provides outputs and
/// input encodings for the composite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lead {
    /// The first component drives `output`/`input`.
    First,
    /// The second component drives `output`/`input`.
    Second,
}

/// The parallel composition `P × Q`: both components run independently on
/// the same interaction schedule.
///
/// Outputs and input encodings are delegated to the *lead* component; the
/// other component's input encoding is still applied, so an agent's initial
/// composite state encodes its opinion in both components.
///
/// # Example: decide majority while measuring broadcast
///
/// ```
/// use avc_population::engine::{CountSim, Simulator};
/// use avc_population::{Config, Opinion, Protocol};
/// use avc_protocols::{compose::{Lead, Parallel}, Epidemic, FourState};
/// use rand::SeedableRng;
///
/// let composite = Parallel::new(FourState, Epidemic, Lead::First);
/// assert_eq!(composite.num_states(), 4 * 2);
/// let config = Config::from_input(&composite, 7, 4);
/// let mut sim = CountSim::new(composite, config);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let out = sim.run_to_consensus(&mut rng, u64::MAX);
/// assert_eq!(out.verdict.opinion(), Some(Opinion::A)); // majority decided
/// ```
#[derive(Debug, Clone)]
pub struct Parallel<P, Q> {
    first: P,
    second: Q,
    lead: Lead,
    name: String,
}

impl<P: Protocol, Q: Protocol> Parallel<P, Q> {
    /// Composes two protocols.
    ///
    /// # Panics
    ///
    /// Panics if the product state count overflows `u32`.
    pub fn new(first: P, second: Q, lead: Lead) -> Parallel<P, Q> {
        let product = (first.num_states() as u64) * (second.num_states() as u64);
        assert!(
            u32::try_from(product).is_ok(),
            "composite state space too large: {product}"
        );
        let name = format!("{} x {}", first.name(), second.name());
        Parallel {
            first,
            second,
            lead,
            name,
        }
    }

    /// The first component.
    pub fn first(&self) -> &P {
        &self.first
    }

    /// The second component.
    pub fn second(&self) -> &Q {
        &self.second
    }

    /// Packs component states into a composite state.
    ///
    /// # Panics
    ///
    /// Panics if either component state is out of range.
    #[must_use]
    pub fn pack(&self, first: StateId, second: StateId) -> StateId {
        assert!(first < self.first.num_states(), "first state out of range");
        assert!(
            second < self.second.num_states(),
            "second state out of range"
        );
        first * self.second.num_states() + second
    }

    /// Unpacks a composite state into its components.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn unpack(&self, state: StateId) -> (StateId, StateId) {
        assert!(state < self.num_states(), "composite state out of range");
        (
            state / self.second.num_states(),
            state % self.second.num_states(),
        )
    }
}

impl<P: Protocol, Q: Protocol> Protocol for Parallel<P, Q> {
    fn num_states(&self) -> u32 {
        self.first.num_states() * self.second.num_states()
    }

    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        let (i1, i2) = self.unpack(initiator);
        let (r1, r2) = self.unpack(responder);
        let (i1n, r1n) = self.first.transition(i1, r1);
        let (i2n, r2n) = self.second.transition(i2, r2);
        (self.pack(i1n, i2n), self.pack(r1n, r2n))
    }

    fn output(&self, state: StateId) -> Opinion {
        let (s1, s2) = self.unpack(state);
        match self.lead {
            Lead::First => self.first.output(s1),
            Lead::Second => self.second.output(s2),
        }
    }

    fn input(&self, opinion: Opinion) -> StateId {
        self.pack(self.first.input(opinion), self.second.input(opinion))
    }

    fn state_label(&self, state: StateId) -> String {
        let (s1, s2) = self.unpack(state);
        format!(
            "({}, {})",
            self.first.state_label(s1),
            self.second.state_label(s2)
        )
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Avc, Epidemic, FourState, Voter};
    use avc_population::engine::{CountSim, Simulator};
    use avc_population::Config;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pack_unpack_roundtrip() {
        let c = Parallel::new(FourState, Epidemic, Lead::First);
        for s in 0..c.num_states() {
            let (a, b) = c.unpack(s);
            assert_eq!(c.pack(a, b), s);
        }
    }

    #[test]
    fn components_evolve_independently() {
        let c = Parallel::new(FourState, Voter, Lead::First);
        for i in 0..c.num_states() {
            for r in 0..c.num_states() {
                let (i1, i2) = c.unpack(i);
                let (r1, r2) = c.unpack(r);
                let (xi, xr) = c.transition(i, r);
                let (x1, x2) = c.unpack(xi);
                let (y1, y2) = c.unpack(xr);
                assert_eq!((x1, y1), c.first().transition(i1, r1));
                assert_eq!((x2, y2), c.second().transition(i2, r2));
            }
        }
    }

    #[test]
    fn majority_times_epidemic_decides_and_infects() {
        // Agents decide majority with the four-state component while the
        // epidemic component records whether the initial-A information has
        // reached them. Both must complete.
        let c = Parallel::new(FourState, Epidemic, Lead::First);
        let config = Config::from_input(&c, 13, 8);
        let mut sim = CountSim::new(c, config);
        let mut rng = SmallRng::seed_from_u64(5);
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert!(out.verdict.is_consensus());
    }

    #[test]
    fn lead_selects_output_component() {
        let first_led = Parallel::new(FourState, Epidemic, Lead::First);
        let second_led = Parallel::new(FourState, Epidemic, Lead::Second);
        // Composite state (−1, infected): output B under First, A under
        // Second (infected maps to A).
        let s = first_led.pack(1, 0);
        assert_eq!(first_led.output(s), avc_population::Opinion::B);
        assert_eq!(second_led.output(s), avc_population::Opinion::A);
    }

    #[test]
    fn composition_with_avc_preserves_exactness() {
        let c = Parallel::new(Avc::new(3, 1).unwrap(), Voter, Lead::First);
        let config = Config::from_input(&c, 4, 7);
        let mut sim = CountSim::new(c, config);
        let mut rng = SmallRng::seed_from_u64(6);
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert_eq!(out.verdict.opinion(), Some(avc_population::Opinion::B));
    }

    #[test]
    fn labels_show_both_components() {
        let c = Parallel::new(FourState, Epidemic, Lead::First);
        let s = c.pack(0, 1);
        assert_eq!(c.state_label(s), "(+1, susceptible)");
        assert!(c.name().contains("four-state"));
        assert!(c.name().contains("epidemic"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pack_validates_ranges() {
        let c = Parallel::new(Voter, Voter, Lead::First);
        let _ = c.pack(2, 0);
    }
}
