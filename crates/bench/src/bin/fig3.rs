//! Regenerates **Figure 3**: three protocols at margin `ε = 1/n`.
//!
//! Usage: `cargo run --release -p avc-bench --bin fig3 [--quick] [--runs N]
//! [--seed N] [--ns 11,101,...] [--serial | --threads N] [--progress]
//! [--out DIR]`

use avc_analysis::cli::Args;
use avc_analysis::experiments::{fig3, report};
use avc_analysis::plot::ScatterPlot;

fn main() {
    let args = Args::from_env();
    let mut config = if args.flag("quick") {
        fig3::Config::quick()
    } else {
        fig3::Config::default()
    };
    config.runs = args.get_u64("runs", config.runs);
    config.seed = args.get_u64("seed", config.seed);
    config.ns = args.get_u64_list("ns", &config.ns);
    config.parallelism = args.parallelism();

    avc_bench::banner(
        "Figure 3",
        &format!(
            "3-state vs 4-state vs n-state AVC, eps = 1/n, {} runs per cell, n in {:?}",
            config.runs, config.ns
        ),
    );

    let started = std::time::Instant::now();
    let stats = avc_bench::collector(&args);
    let cells = fig3::run_with_stats(&config, &stats);
    let out = avc_bench::out_dir(&args);
    report(&fig3::time_table(&cells), &out, "fig3_time");
    report(&fig3::error_table(&cells), &out, "fig3_error");

    // Terminal rendering of the left panel (log–log, as in the paper).
    let mut plot = ScatterPlot::new(
        "Figure 3 (left): parallel convergence time vs n (log-log)",
        64,
        18,
    )
    .log_log();
    for family in ["3-state", "4-state", "avc"] {
        let series: Vec<(f64, f64)> = cells
            .iter()
            .filter(|c| c.protocol.starts_with(family))
            .map(|c| (c.n as f64, c.results.mean_parallel_time()))
            .collect();
        plot.add_series(family, series);
    }
    println!("{}", plot.render());
    println!("throughput: {}", stats.snapshot());
    println!("total wall time: {:?}", started.elapsed());
}
