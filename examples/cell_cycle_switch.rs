//! The biological motivation from the paper's introduction: the cell-cycle
//! switch computes approximate majority [CCN12], and the three-state
//! protocol models epigenetic cell memory [DMST07]. A *switch* must flip
//! decisively for clear inputs yet is allowed to dither near the balance
//! point — exactly the three-state protocol's error profile.
//!
//! This example sweeps the signal strength (margin) and shows the switch's
//! decision quality and speed, contrasting it with AVC which never
//! mis-switches.
//!
//! Run with: `cargo run --release --example cell_cycle_switch`

use avc::analysis::harness::{run_trials, EngineKind, TrialPlan};
use avc::analysis::table::{fmt_num, Table};
use avc::population::{ConvergenceRule, MajorityInstance};
use avc::protocols::{Avc, ThreeState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A population of molecules deciding between two fates.
    let n = 2_001;
    let runs = 120;
    let mut table = Table::new(
        format!("cell-cycle switch (three-state) vs AVC, n = {n} molecules, {runs} runs"),
        [
            "signal (eps)",
            "switch errors",
            "switch time",
            "avc errors",
            "avc time",
        ],
    );

    let switch = ThreeState::new();
    let avc = Avc::with_states(64)?;
    for (i, eps) in [0.002, 0.01, 0.05, 0.2].into_iter().enumerate() {
        let plan = TrialPlan::new(MajorityInstance::with_margin(n, eps))
            .runs(runs)
            .seed(100 + i as u64);
        let s = run_trials(
            &switch,
            &plan,
            EngineKind::Jump,
            ConvergenceRule::StateConsensus,
        );
        let a = run_trials(
            &avc,
            &plan,
            EngineKind::Auto,
            ConvergenceRule::OutputConsensus,
        );
        table.push_row([
            fmt_num(plan.instance().margin()),
            fmt_num(s.error_fraction()),
            fmt_num(s.mean_parallel_time()),
            fmt_num(a.error_fraction()),
            fmt_num(a.mean_parallel_time()),
        ]);
    }

    println!("{}", table.to_markdown());
    println!(
        "The biological switch dithers on weak signals (errors near 1/2) but is fast;\n\
         AVC pays a modest state budget (s = {}) to never mis-decide.",
        avc.s()
    );
    Ok(())
}
