//! Crash-safe experiment registry with checkpoint/resume, plus the unified
//! `avc` sweep CLI.
//!
//! Every experiment is a grid of *cells*. A cell's identity is the SHA-256
//! hash of a canonical [`manifest`](manifest::Manifest) — protocol, engine,
//! instance size, effective seed, trial count — and its result (trial
//! samples as exact `f64` bit patterns, pre-rendered table rows) is appended
//! durably to a JSONL [`store`](store::Store) the moment the cell finishes.
//! Interrupting a sweep (Ctrl-C, `kill -9`, power loss) therefore costs at
//! most the in-flight cell; rerunning the same `avc sweep` command skips
//! every completed cell and `avc export` regenerates byte-identical
//! `results/*.csv` files at any `--serial`/`--threads` setting.
//!
//! The crate is std-only by design: the registry format must not depend on
//! anything that could drift (see `json` for the canonical subset used).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod hash;
pub mod json;
pub mod manifest;
pub mod record;
pub mod scenario_grid;
pub mod specs;
pub mod store;
pub mod sweep;
