//! Wall-clock phase timing.
//!
//! [`Span`] is the one sanctioned way to measure elapsed wall time in the
//! workspace — the harness's per-trial timing and the store's per-cell
//! timing both go through it, so the `Instant` bookkeeping lives in exactly
//! one place. Span values are *wall-clock* telemetry: nondeterministic by
//! nature, and therefore kept out of the deterministic `sim.*` registries
//! (see the crate docs' determinism contract).

use std::time::{Duration, Instant};

use crate::metrics::{HistogramSnapshot, LogHistogram};

/// A started wall-clock timer.
///
/// # Example
///
/// ```
/// use avc_telemetry::Span;
/// let span = Span::start();
/// let ns = span.elapsed_ns();
/// let again = span.elapsed_ns();
/// assert!(again >= ns);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Span {
    started: Instant,
}

impl Span {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Span {
        Span {
            started: Instant::now(),
        }
    }

    /// Elapsed time since [`Span::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (584 years).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed whole milliseconds.
    #[must_use]
    pub fn elapsed_ms(&self) -> u64 {
        self.elapsed_ns() / 1_000_000
    }

    /// Records the elapsed nanoseconds into an atomic histogram and
    /// returns them.
    pub fn record(&self, histogram: &LogHistogram) -> u64 {
        let ns = self.elapsed_ns();
        histogram.record(ns);
        ns
    }

    /// Records the elapsed nanoseconds into a plain histogram and returns
    /// them.
    pub fn record_into(&self, histogram: &mut HistogramSnapshot) -> u64 {
        let ns = self.elapsed_ns();
        histogram.record(ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_and_records() {
        let span = Span::start();
        std::thread::sleep(Duration::from_millis(2));
        let mut h = HistogramSnapshot::new();
        let ns = span.record_into(&mut h);
        assert!(ns >= 2_000_000, "slept 2ms but measured {ns}ns");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, ns);
    }
}
