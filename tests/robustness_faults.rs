//! Fault-injection stress suite: pinned protocol behaviours under agent
//! crashes, stuck-at agents, and transient state corruption.
//!
//! Every test here is deterministic: fault injection draws no randomness,
//! the schedules are seeded, and the pinned seeds were chosen by
//! inspecting real runs — a failure means the fault machinery or a
//! protocol changed behaviour, not that the dice rolled differently.

use avc::population::driver::{Driver, DriverEvent, NullObserver, Observer, SimView};
use avc::population::engine::{AdaptiveSim, AgentSim, CountSim, JumpSim, Simulator, TauLeapSim};
use avc::population::faults::{Fault, FaultError, FaultEvent, FaultPlan};
use avc::population::graph::Graph;
use avc::population::spec::Verdict;
use avc::population::{Config, ConvergenceRule, Opinion, Protocol};
use avc::protocols::{Avc, FourState, ThreeState};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn drive_faulted<S: avc::population::engine::ChunkedSimulator>(
    sim: &mut S,
    plan: &mut FaultPlan,
    seed: u64,
    max_steps: u64,
) -> avc::population::spec::RunOutcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    Driver::new(ConvergenceRule::OutputConsensus)
        .with_max_steps(max_steps)
        .run_faulted(sim, &mut rng, &mut NullObserver, plan)
}

/// Pinned fault-mode behaviour #1: the three-state protocol — approximate
/// by design — *flips its outcome* under a small corruption. At
/// `a = 52, b = 49` (margin 3), corrupting 5 agents from the A input state
/// to the B input state swings the effective majority, and seeds whose
/// clean run answers A answer B when faulted. The corruption path here is
/// the count-space one (`CountSim`), shared by all counting engines.
#[test]
fn three_state_outcome_flips_under_small_corruption() {
    let ts = ThreeState::new();
    // Seeds chosen by inspection: the clean run converges to A on each.
    for seed in [1u64, 2, 4] {
        let mut sim = CountSim::new(ts, Config::from_input(&ts, 52, 49));
        let mut rng = SmallRng::seed_from_u64(seed);
        let clean = Driver::new(ConvergenceRule::OutputConsensus)
            .with_max_steps(10_000_000)
            .run(&mut sim, &mut rng, &mut NullObserver);
        assert_eq!(clean.verdict, Verdict::Consensus(Opinion::A), "seed {seed}");

        let mut sim = CountSim::new(ts, Config::from_input(&ts, 52, 49));
        let mut plan = FaultPlan::new().at(
            0,
            Fault::Corrupt {
                from: ts.input(Opinion::A),
                to: ts.input(Opinion::B),
                agents: 5,
            },
        );
        let faulted = drive_faulted(&mut sim, &mut plan, seed, 10_000_000);
        assert_eq!(
            faulted.verdict,
            Verdict::Consensus(Opinion::B),
            "corruption failed to flip seed {seed}"
        );
        assert_eq!(plan.remaining(), 0, "fault was never applied");
    }
}

/// Pinned fault-mode behaviour #2: a *single* stuck-at agent defeats
/// four-state exactness. The protocol's correctness rests on conserving
/// the signed strong-token difference; an agent stuck in the strong-B
/// input state re-injects B influence at every interaction, and the whole
/// majority-A population is dragged to a wrong all-B consensus —
/// `count_a` reaches zero among the free agents too.
#[test]
fn single_stuck_agent_defeats_four_state_exactness() {
    for seed in 0..6u64 {
        let config = Config::from_input(&FourState, 15, 10);
        let mut sim = AgentSim::new(&FourState, config.clone(), Graph::clique(25));
        // Agent 24 is the last initial-B agent; stick it from step 0.
        let mut plan = FaultPlan::new().at(0, Fault::StickAt { agent: 24 });
        let out = drive_faulted(&mut sim, &mut plan, seed, 2_000_000);
        assert_eq!(
            out.verdict,
            Verdict::Consensus(Opinion::B),
            "seed {seed}: stuck agent failed to drag the population"
        );
        assert_eq!(sim.count_a(), 0, "seed {seed}");
        assert!(sim.is_stuck(24));

        // The same seed without the fault answers correctly.
        let mut sim = AgentSim::new(&FourState, config, Graph::clique(25));
        let mut rng = SmallRng::seed_from_u64(seed);
        let clean = Driver::new(ConvergenceRule::OutputConsensus)
            .with_max_steps(2_000_000)
            .run(&mut sim, &mut rng, &mut NullObserver);
        assert_eq!(clean.verdict, Verdict::Consensus(Opinion::A), "seed {seed}");
    }
}

/// Pinned fault-mode behaviour #3: AVC *recovers* from `k` crash/revive
/// events. Five of 25 agents crash early (their states freeze, their
/// outputs still count toward consensus) and revive at step 500; every
/// seeded run still converges to the correct majority, and only after the
/// revival — the frozen mid-protocol states block consensus until then.
#[test]
fn avc_recovers_from_crash_revive_events() {
    let avc = Avc::new(5, 1).expect("valid parameters");
    let (crash_at, revive_at) = (25u64, 500u64);
    for seed in 0..8u64 {
        let config = Config::from_input(&avc, 13, 12);
        let mut sim = AgentSim::new(&avc, config, Graph::clique(25));
        let mut events = Vec::new();
        for agent in 0..5usize {
            events.push(FaultEvent {
                at_step: crash_at,
                fault: Fault::Crash { agent },
            });
            events.push(FaultEvent {
                at_step: revive_at,
                fault: Fault::Revive { agent },
            });
        }
        let mut plan = FaultPlan::from_events(events);
        let out = drive_faulted(&mut sim, &mut plan, seed, 2_000_000);
        assert_eq!(
            out.verdict,
            Verdict::Consensus(Opinion::A),
            "seed {seed}: AVC failed to recover"
        );
        assert!(
            out.steps > revive_at,
            "seed {seed}: consensus at step {} before the revival at {revive_at}",
            out.steps
        );
        assert_eq!(plan.remaining(), 0);
    }
}

/// Same seed, same plan, twice: identical verdict, step count, and final
/// configuration. Faulted runs replay bit-identically because injection
/// draws no randomness and fires at deterministic steps.
#[test]
fn faulted_runs_replay_bit_identically() {
    let avc = Avc::new(7, 1).expect("valid parameters");
    let run_once = || {
        let config = Config::from_input(&avc, 30, 21);
        let mut sim = AgentSim::new(&avc, config, Graph::clique(51));
        let mut plan = FaultPlan::new()
            .at(40, Fault::Crash { agent: 3 })
            .at(60, Fault::BitFlip { agent: 10, bit: 0 })
            .at(300, Fault::Revive { agent: 3 });
        let out = drive_faulted(&mut sim, &mut plan, 7, 2_000_000);
        (out, sim.counts().to_vec())
    };
    let (out_a, counts_a) = run_once();
    let (out_b, counts_b) = run_once();
    assert_eq!(out_a, out_b);
    assert_eq!(counts_a, counts_b);
}

/// `Corrupt` is engine-universal: every counting engine applies it in
/// count space, preserves the population, and continues to a valid run.
#[test]
fn corruption_is_supported_by_every_engine() {
    let check = |sim: &mut dyn Simulator, label: &str| {
        let n = sim.population();
        let moved = sim
            .inject(Fault::Corrupt {
                from: 0,
                to: 1,
                agents: 4,
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(moved, 4, "{label}");
        assert_eq!(sim.population(), n, "{label} changed the population");
        assert_eq!(sim.counts().iter().sum::<u64>(), n, "{label}");
    };
    let config = || Config::from_input(&FourState, 40, 20);
    check(&mut CountSim::new(FourState, config()), "CountSim");
    check(&mut JumpSim::new(FourState, config()), "JumpSim");
    check(&mut AdaptiveSim::new(FourState, config()), "AdaptiveSim");
    check(&mut TauLeapSim::new(FourState, config()), "TauLeapSim");
    check(
        &mut AgentSim::new(FourState, config(), Graph::clique(60)),
        "AgentSim",
    );
}

/// Corrupting more agents than the source state holds moves only what is
/// there, on every engine.
#[test]
fn corruption_clamps_to_the_source_count() {
    let mut sim = CountSim::new(FourState, Config::from_input(&FourState, 3, 20));
    let moved = sim
        .inject(Fault::Corrupt {
            from: 0,
            to: 1,
            agents: 1_000,
        })
        .expect("corrupt is supported");
    assert_eq!(moved, 3);
    assert_eq!(sim.counts().iter().sum::<u64>(), 23);
}

/// Agent-addressed faults require agent identity, which only [`AgentSim`]
/// has; the counting engines must refuse them loudly rather than guess.
#[test]
fn agent_addressed_faults_are_rejected_by_counting_engines() {
    let mut sim = CountSim::new(FourState, Config::from_input(&FourState, 5, 5));
    for fault in [
        Fault::Crash { agent: 0 },
        Fault::Revive { agent: 0 },
        Fault::StickAt { agent: 0 },
        Fault::Unstick { agent: 0 },
        Fault::BitFlip { agent: 0, bit: 1 },
    ] {
        match sim.inject(fault) {
            Err(FaultError::Unsupported { engine, .. }) => assert_eq!(engine, "CountSim"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }
}

/// Observers hear each injection as a [`DriverEvent::Fault`], at the first
/// reachable step at or after its scheduled step.
#[test]
fn observer_sees_fault_events_in_schedule_order() {
    struct FaultLog {
        seen: Vec<(u64, Fault)>,
    }
    impl Observer for FaultLog {
        fn on_event(&mut self, view: &SimView<'_>, event: &DriverEvent) {
            if let DriverEvent::Fault(fault) = event {
                self.seen.push((view.steps, *fault));
            }
        }
    }

    let config = Config::from_input(&FourState, 30, 21);
    let mut sim = AgentSim::new(&FourState, config, Graph::clique(51));
    let mut plan = FaultPlan::new()
        .at(100, Fault::Crash { agent: 2 })
        .at(10, Fault::StickAt { agent: 7 })
        .at(100, Fault::Revive { agent: 2 });
    let mut log = FaultLog { seen: Vec::new() };
    let mut rng = SmallRng::seed_from_u64(3);
    let out = Driver::new(ConvergenceRule::OutputConsensus)
        .with_max_steps(50)
        .run_faulted(&mut sim, &mut rng, &mut log, &mut plan);

    // Only the step-10 fault fires within the 50-step budget.
    assert_eq!(out.verdict, Verdict::MaxSteps);
    assert_eq!(log.seen.len(), 1);
    assert_eq!(log.seen[0].1, Fault::StickAt { agent: 7 });
    assert!(log.seen[0].0 >= 10, "fired before its scheduled step");
    assert_eq!(plan.remaining(), 2, "the step-100 faults must stay pending");
}
