//! Shared plumbing for the experiment binaries.
//!
//! Every binary regenerates one paper artifact (see `DESIGN.md` §5 for the
//! index) and accepts:
//!
//! * `--quick` — a downscaled configuration for smoke runs;
//! * `--runs N` — override the number of trials per point;
//! * `--seed N` — override the master seed;
//! * `--serial` / `--threads N` — trial parallelism (default: one worker
//!   per core; results are bit-identical at every setting);
//! * `--progress` — print a progress line per completed experiment cell;
//! * `--out DIR` — output directory for CSVs (default `results`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avc_analysis::cli::Args;
use avc_analysis::harness::StatsCollector;

/// Resolves the output directory from `--out` (default `results`).
#[must_use]
pub fn out_dir(args: &Args) -> String {
    args.get("out").unwrap_or("results").to_string()
}

/// A throughput collector for the run: verbose (per-cell progress lines on
/// stderr) when `--progress` is given, quiet otherwise.
#[must_use]
pub fn collector(args: &Args) -> StatsCollector {
    if args.flag("progress") {
        StatsCollector::verbose()
    } else {
        StatsCollector::new()
    }
}

/// Prints a standard experiment banner.
pub fn banner(name: &str, detail: &str) {
    println!("== {name} ==");
    println!("{detail}");
    println!();
}
