//! Quickstart: solve exact majority with AVC on a hard instance.
//!
//! Run with: `cargo run --release --example quickstart`

use avc::population::engine::{CountSim, Simulator};
use avc::population::{Config, MajorityInstance, Opinion, Protocol};
use avc::protocols::Avc;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 10 001 agents; the majority is decided by a single agent (ε = 1/n).
    let n = 10_001;
    let instance = MajorityInstance::one_extra(n);
    println!(
        "instance: {} agents, {} start in A, {} in B (margin eps = {:.2e})",
        n,
        instance.a(),
        instance.b(),
        instance.margin()
    );

    // The paper's "n-state" AVC: d = 1, m ≈ n − 3, so s ≈ n states.
    let protocol = Avc::with_states(n)?;
    println!(
        "protocol: {} with m = {}, d = {}, s = {} states",
        protocol.name(),
        protocol.m(),
        protocol.d(),
        protocol.s()
    );

    let config = Config::from_input(&protocol, instance.a(), instance.b());
    let mut sim = CountSim::new(protocol, config);
    let mut rng = SmallRng::seed_from_u64(2015);
    let outcome = sim.run_to_consensus(&mut rng, u64::MAX);

    println!(
        "converged to {:?} after {:.1} parallel time ({} interactions)",
        outcome.verdict.opinion().expect("AVC always converges"),
        outcome.parallel_time,
        outcome.steps
    );
    assert_eq!(
        outcome.verdict.opinion(),
        Some(Opinion::A),
        "AVC solves majority exactly: a one-agent advantage is enough"
    );
    println!("exactness check passed: the single-agent majority won.");
    Ok(())
}
