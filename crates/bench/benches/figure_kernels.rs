//! Criterion kernels of the figure experiments at reduced scale: one cell
//! of Figure 3 and one point of Figure 4 per protocol, so regressions in
//! the experiment pipeline show up in CI without multi-minute sweeps.

use avc_analysis::harness::{run_trials, EngineKind, TrialPlan};
use avc_population::{ConvergenceRule, MajorityInstance};
use avc_protocols::{Avc, FourState, ThreeState};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig3_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_cell_n1001_5runs");
    group.sample_size(10);
    let plan = TrialPlan::new(MajorityInstance::one_extra(1_001))
        .runs(5)
        .seed(1);

    group.bench_function("three_state", |b| {
        b.iter(|| {
            run_trials(
                &ThreeState::new(),
                &plan,
                EngineKind::Jump,
                ConvergenceRule::StateConsensus,
            )
            .convergence_fraction()
        })
    });
    group.bench_function("four_state", |b| {
        b.iter(|| {
            run_trials(
                &FourState,
                &plan,
                EngineKind::Jump,
                ConvergenceRule::OutputConsensus,
            )
            .error_fraction()
        })
    });
    group.bench_function("avc_n_state", |b| {
        let avc = Avc::with_states(1_001).expect("valid budget");
        b.iter(|| {
            run_trials(
                &avc,
                &plan,
                EngineKind::Auto,
                ConvergenceRule::OutputConsensus,
            )
            .error_fraction()
        })
    });
    group.finish();
}

fn bench_fig4_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_point_n10001_s66_eps1e-3");
    group.sample_size(10);
    let plan = TrialPlan::new(MajorityInstance::with_margin(10_001, 1e-3))
        .runs(3)
        .seed(2);
    let avc = Avc::with_states(66).expect("valid budget");
    group.bench_function("avc", |b| {
        b.iter(|| {
            run_trials(
                &avc,
                &plan,
                EngineKind::Auto,
                ConvergenceRule::OutputConsensus,
            )
            .mean_parallel_time()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3_cell, bench_fig4_point);
criterion_main!(benches);
