//! `avc-sim` — ad-hoc simulation runs from the command line.
//!
//! ```text
//! avc-sim --protocol avc --n 10001 --eps 0.001 --states 64 --runs 25
//! avc-sim --protocol four-state --n 1001 --runs 101 --engine jump
//! avc-sim --protocol three-state --n 100001 --eps 0.0001 --seed 7
//! ```
//!
//! Prints a per-run line and a summary (mean/median parallel time, error
//! fraction). Flags:
//!
//! * `--protocol` — `avc` (default), `four-state`, `three-state`, `voter`;
//! * `--n` — population size (default 1001);
//! * `--eps` — margin (default 1/n);
//! * `--states` / `--m` / `--d` — AVC sizing (default `--states n`);
//! * `--engine` — `auto` (default), `agent`, `count`, `jump`, `adaptive`,
//!   `tau-leap`;
//! * `--runs`, `--seed`, `--max-steps`, `--verbose`.

use avc::analysis::cli::Args;
use avc::analysis::harness::{run_one, EngineKind};
use avc::analysis::stats::Summary;
use avc::population::rngutil::SeedSequence;
use avc::population::{Config, ConvergenceRule, MajorityInstance, Protocol};
use avc::protocols::{Avc, FourState, ThreeState, Voter};

fn main() {
    let args = Args::from_env();
    let n = args.get_u64("n", 1_001);
    let eps = args.get_f64("eps", 1.0 / n as f64);
    let runs = args.get_u64("runs", 11);
    let seed = args.get_u64("seed", 0);
    let max_steps = args.get_u64("max-steps", u64::MAX);
    let verbose = args.flag("verbose");

    let engine: EngineKind = args
        .get("engine")
        .unwrap_or("auto")
        .parse()
        .unwrap_or_else(|e| panic!("{e}"));

    let instance = MajorityInstance::with_margin(n, eps);
    let name = args.get("protocol").unwrap_or("avc").to_string();
    let (protocol, rule): (Box<dyn DynProtocol>, ConvergenceRule) = match name.as_str() {
        "avc" => {
            let avc = if let Some(m) = args.get("m") {
                let m: u64 = m.parse().expect("--m expects an odd integer");
                let d = args.get_u64("d", 1) as u32;
                Avc::new(m, d).expect("valid AVC parameters")
            } else {
                Avc::with_states(args.get_u64("states", n)).expect("valid state budget")
            };
            (Box::new(avc), ConvergenceRule::OutputConsensus)
        }
        "four-state" => (Box::new(FourState), ConvergenceRule::OutputConsensus),
        "three-state" => (Box::new(ThreeState::new()), ConvergenceRule::StateConsensus),
        "voter" => (Box::new(Voter), ConvergenceRule::OutputConsensus),
        other => panic!("unknown protocol `{other}` (avc|four-state|three-state|voter)"),
    };

    println!(
        "{}: n = {n}, a = {}, b = {} (eps = {:.3e}), engine {engine:?}, {runs} runs",
        protocol.name_dyn(),
        instance.a(),
        instance.b(),
        instance.margin()
    );

    let seeds = SeedSequence::new(seed);
    let mut times = Vec::new();
    let mut errors = 0u64;
    let mut unconverged = 0u64;
    for trial in 0..runs {
        let mut rng = seeds.rng_for(trial);
        let out = protocol.run_dyn(instance, engine, rule, &mut rng, max_steps);
        match out.verdict.opinion() {
            Some(op) => {
                if Some(op) != instance.winner() {
                    errors += 1;
                }
                times.push(out.parallel_time);
                if verbose {
                    println!(
                        "  run {trial:>3}: {op} after {:.2} parallel time ({} steps)",
                        out.parallel_time, out.steps
                    );
                }
            }
            None => {
                unconverged += 1;
                if verbose {
                    println!("  run {trial:>3}: no convergence within {max_steps} steps");
                }
            }
        }
    }

    if times.is_empty() {
        println!("no run converged within the step budget");
        return;
    }
    let summary = Summary::from_samples(&times);
    println!(
        "parallel time: mean {:.2} ± {:.2}, median {:.2}, range [{:.2}, {:.2}]",
        summary.mean,
        summary.std_error(),
        summary.median,
        summary.min,
        summary.max
    );
    println!(
        "errors: {errors}/{runs} ({:.1}%); unconverged: {unconverged}",
        100.0 * errors as f64 / runs as f64
    );
}

/// Object-safe driver shim so protocols of different types share one code
/// path (`run_one` is generic, so we monomorphize behind a small trait).
trait DynProtocol {
    fn name_dyn(&self) -> &str;
    fn run_dyn(
        &self,
        instance: MajorityInstance,
        engine: EngineKind,
        rule: ConvergenceRule,
        rng: &mut rand::rngs::SmallRng,
        max_steps: u64,
    ) -> avc::population::spec::RunOutcome;
}

impl<P: Protocol + Clone> DynProtocol for P {
    fn name_dyn(&self) -> &str {
        self.name()
    }
    fn run_dyn(
        &self,
        instance: MajorityInstance,
        engine: EngineKind,
        rule: ConvergenceRule,
        rng: &mut rand::rngs::SmallRng,
        max_steps: u64,
    ) -> avc::population::spec::RunOutcome {
        let config = Config::from_input(self, instance.a(), instance.b());
        run_one(self, config, engine, rule, rng, max_steps)
    }
}
