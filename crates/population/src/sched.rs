//! Pluggable pair schedulers, including adversarial ones.
//!
//! The population model leaves the *scheduler* — who interacts next — as a
//! degree of freedom. The paper's analysis (and every engine here by
//! default) uses the uniform random scheduler: each step draws an ordered
//! pair of distinct agents uniformly (an edge of the interaction graph,
//! uniformly, with a random orientation). Exactness claims are stronger
//! than that, though: the four-state protocol is exact under *any fair*
//! schedule \[DV12], and AVC's correctness argument never uses uniformity
//! (only its speed bound does). This module makes the scheduler a seam so
//! the stress suite can probe those claims empirically.
//!
//! [`Uniform`] is the default and is **RNG-stream-identical** to the
//! pre-seam engines: it monomorphizes to exactly the
//! [`Graph::sample_pair`] call the hot loop made before, so golden traces
//! and differential suites are unaffected. The adversarial strategies are
//! all *fair* (every edge keeps a positive per-step probability, so every
//! interaction recurs infinitely often almost surely) but heavily skewed:
//!
//! * [`BiasedPair`] — a fixed "hot" clique of agents hogs most steps;
//! * [`LaggardStarving`] — a victim set only interacts on a sparse
//!   periodic schedule, starving information flow through it;
//! * [`EpochBatched`] — steps are grouped into epochs of `⌊n/2⌋`
//!   disjoint pairs from a fresh random perfect matching, the
//!   round-robin-like schedule of synchronous gossip;
//! * [`GraphRestricted`] — pairs are drawn from a sparse subgraph even
//!   though the engine's bookkeeping graph is the clique, modelling a
//!   communication topology the protocol does not know about.
//!
//! All strategies draw only from the supplied RNG, so a run under any of
//! them is deterministic per seed — the adversary is randomized but
//! replayable.

use crate::graph::Graph;
use rand::{Rng, RngCore};

/// A pair-selection strategy for per-agent engines.
///
/// Implementations return the ordered pair of (distinct) agents that
/// interact at `step` (the 0-based index of the step being scheduled).
/// They may keep internal state (epoch buffers, phase counters) but must
/// derive all randomness from `rng`, so trajectories stay deterministic
/// per seed. Like [`ChunkedSimulator`](crate::engine::ChunkedSimulator),
/// the trait is generic over the RNG and therefore not object safe — the
/// engine monomorphizes the scheduler into its hot loop.
pub trait Scheduler {
    /// Selects the ordered pair interacting at `step`.
    fn next_pair<R: RngCore + ?Sized>(
        &mut self,
        graph: &Graph,
        step: u64,
        rng: &mut R,
    ) -> (usize, usize);

    /// Short human-readable description for reports and manifests.
    fn label(&self) -> String;

    /// Returns the scheduler to its freshly-constructed state without
    /// reallocating, so a reused engine replays exactly like a new one
    /// (the trial-batch reuse seam of `ChunkedSimulator::reset`).
    ///
    /// Stateless strategies need nothing; stateful ones (epoch buffers,
    /// phase counters) must clear every field that influences future
    /// draws. The contract: after `reset`, the next-pair stream for any
    /// RNG must be identical to a fresh scheduler's.
    fn reset(&mut self) {}
}

/// The uniform random scheduler: the model's default, and the paper's.
///
/// Delegates straight to [`Graph::sample_pair`], consuming the RNG
/// identically to the pre-scheduler engines (pinned by golden traces and
/// the differential suites).
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl Scheduler for Uniform {
    #[inline(always)]
    fn next_pair<R: RngCore + ?Sized>(
        &mut self,
        graph: &Graph,
        _step: u64,
        rng: &mut R,
    ) -> (usize, usize) {
        graph.sample_pair(rng)
    }

    fn label(&self) -> String {
        "uniform".to_string()
    }
}

/// With probability `bias`, draw both agents from the "hot" set
/// `0..hot`; otherwise fall back to a uniform draw over the whole graph.
///
/// Clique-only. Models a scheduler that keeps hammering a fixed clique of
/// agents, slowing the spread of information held outside it. Fair: the
/// fallback branch gives every pair positive probability.
#[derive(Debug, Clone, Copy)]
pub struct BiasedPair {
    hot: usize,
    bias: f64,
}

impl BiasedPair {
    /// A scheduler favouring the agents `0..hot` with probability `bias`.
    ///
    /// # Panics
    ///
    /// Panics if `hot < 2` or `bias` is not in `[0, 1)` (a bias of 1 would
    /// be unfair: agents outside the hot set would never interact).
    #[must_use]
    pub fn new(hot: usize, bias: f64) -> BiasedPair {
        assert!(hot >= 2, "hot set needs at least two agents, got {hot}");
        assert!(
            (0.0..1.0).contains(&bias),
            "bias must be in [0,1), got {bias}"
        );
        BiasedPair { hot, bias }
    }
}

impl Scheduler for BiasedPair {
    fn next_pair<R: RngCore + ?Sized>(
        &mut self,
        graph: &Graph,
        _step: u64,
        rng: &mut R,
    ) -> (usize, usize) {
        assert!(
            graph.is_clique(),
            "BiasedPair schedules over a clique; got an explicit graph"
        );
        assert!(
            self.hot <= graph.num_agents(),
            "hot set larger than population"
        );
        if rng.gen_bool(self.bias) {
            let u = rng.gen_range(0..self.hot);
            let mut v = rng.gen_range(0..self.hot - 1);
            if v >= u {
                v += 1;
            }
            (u, v)
        } else {
            graph.sample_pair(rng)
        }
    }

    fn label(&self) -> String {
        format!("biased(hot={},bias={})", self.hot, self.bias)
    }
}

/// Starves the last `laggards` agents: steps whose phase within `period`
/// is nonzero redraw any pair touching a laggard as a pair among the
/// non-laggards; only one step per period may touch a laggard.
///
/// Clique-only. Models agents on the far side of a congested link: they
/// do eventually interact (fairness via the phase-0 steps) but at a rate
/// `1/period` of everyone else's.
#[derive(Debug, Clone, Copy)]
pub struct LaggardStarving {
    laggards: usize,
    period: u64,
}

impl LaggardStarving {
    /// Starves the `laggards` highest-numbered agents to one potential
    /// interaction step per `period`.
    ///
    /// # Panics
    ///
    /// Panics if `laggards` is zero or `period < 2`.
    #[must_use]
    pub fn new(laggards: usize, period: u64) -> LaggardStarving {
        assert!(laggards >= 1, "need at least one laggard");
        assert!(period >= 2, "period must be at least 2, got {period}");
        LaggardStarving { laggards, period }
    }
}

impl Scheduler for LaggardStarving {
    fn next_pair<R: RngCore + ?Sized>(
        &mut self,
        graph: &Graph,
        step: u64,
        rng: &mut R,
    ) -> (usize, usize) {
        assert!(
            graph.is_clique(),
            "LaggardStarving schedules over a clique; got an explicit graph"
        );
        let n = graph.num_agents();
        assert!(
            self.laggards < n - 1,
            "at least two non-laggards required ({} laggards of {n})",
            self.laggards
        );
        let pair = graph.sample_pair(rng);
        if step.is_multiple_of(self.period) {
            return pair; // laggards may interact this step
        }
        let cutoff = n - self.laggards;
        if pair.0 < cutoff && pair.1 < cutoff {
            return pair;
        }
        // Redraw among the non-laggards (one extra draw pair; still
        // deterministic per seed).
        let u = rng.gen_range(0..cutoff);
        let mut v = rng.gen_range(0..cutoff - 1);
        if v >= u {
            v += 1;
        }
        (u, v)
    }

    fn label(&self) -> String {
        format!("starved(laggards={},period={})", self.laggards, self.period)
    }
}

/// Serves steps from a fresh random perfect matching per epoch: each
/// epoch lasts `⌊n/2⌋` steps and plays the matching's disjoint pairs in
/// order (random orientation each).
///
/// Clique-only. This is the synchronous-gossip schedule: within an epoch
/// no agent interacts twice, the far extreme from the uniform scheduler's
/// birthday collisions. Fair by construction — every agent (bar one when
/// `n` is odd) interacts exactly once per epoch.
#[derive(Debug, Clone, Default)]
pub struct EpochBatched {
    /// Shuffled agent ids; consecutive disjoint pairs form the matching.
    order: Vec<u32>,
    /// Next matching pair to serve, in `0..⌊n/2⌋`.
    cursor: usize,
}

impl EpochBatched {
    /// A fresh scheduler (the first `next_pair` call starts epoch 0).
    #[must_use]
    pub fn new() -> EpochBatched {
        EpochBatched::default()
    }

    fn reshuffle<R: RngCore + ?Sized>(&mut self, n: usize, rng: &mut R) {
        if self.order.len() != n {
            // Refill in place (no realloc once capacity is warm) so the
            // reuse seam's reset → reshuffle path allocates nothing.
            self.order.clear();
            self.order.extend(0..n as u32);
        }
        // Fisher–Yates; manual so we only depend on `gen_range`.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            self.order.swap(i, j);
        }
        self.cursor = 0;
    }
}

impl Scheduler for EpochBatched {
    fn next_pair<R: RngCore + ?Sized>(
        &mut self,
        graph: &Graph,
        _step: u64,
        rng: &mut R,
    ) -> (usize, usize) {
        assert!(
            graph.is_clique(),
            "EpochBatched schedules over a clique; got an explicit graph"
        );
        let n = graph.num_agents();
        if self.cursor >= n / 2 || self.order.len() != n {
            self.reshuffle(n, rng);
        }
        let u = self.order[2 * self.cursor] as usize;
        let v = self.order[2 * self.cursor + 1] as usize;
        self.cursor += 1;
        if rng.gen_bool(0.5) {
            (u, v)
        } else {
            (v, u)
        }
    }

    fn label(&self) -> String {
        "epoch".to_string()
    }

    fn reset(&mut self) {
        // An empty order forces `next_pair` down the same
        // rebuild-identity-then-shuffle path a fresh scheduler takes; a
        // bare `cursor = 0` would instead Fisher–Yates the *stale*
        // permutation and diverge from a fresh scheduler's draws.
        self.order.clear();
        self.cursor = 0;
    }
}

/// Draws pairs from a fixed (typically sparse) subtopology instead of the
/// engine's graph.
///
/// The engine's own graph still defines its bookkeeping (and must have
/// the same number of agents); this scheduler simply refuses to use its
/// edges. Restricting a clique engine to a cycle or star reproduces the
/// \[DV12] graph-restricted regime without rebuilding the engine.
#[derive(Debug, Clone)]
pub struct GraphRestricted {
    sub: Graph,
}

impl GraphRestricted {
    /// A scheduler drawing uniform ordered pairs from `sub`'s edges.
    ///
    /// # Panics
    ///
    /// Panics if `sub` has no edges or is disconnected (a disconnected
    /// schedule is unfair: components never mix).
    #[must_use]
    pub fn new(sub: Graph) -> GraphRestricted {
        assert!(sub.num_edges() > 0, "restriction graph has no edges");
        assert!(sub.is_connected(), "restriction graph must be connected");
        GraphRestricted { sub }
    }

    /// The restriction subgraph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.sub
    }
}

impl Scheduler for GraphRestricted {
    fn next_pair<R: RngCore + ?Sized>(
        &mut self,
        graph: &Graph,
        _step: u64,
        rng: &mut R,
    ) -> (usize, usize) {
        assert_eq!(
            self.sub.num_agents(),
            graph.num_agents(),
            "restriction graph size must match the engine's population"
        );
        self.sub.sample_pair(rng)
    }

    fn label(&self) -> String {
        format!(
            "restricted(n={},m={})",
            self.sub.num_agents(),
            self.sub.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn draws<S: Scheduler>(mut sched: S, n: usize, steps: u64, seed: u64) -> Vec<(usize, usize)> {
        let graph = Graph::clique(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..steps)
            .map(|t| sched.next_pair(&graph, t, &mut rng))
            .collect()
    }

    #[test]
    fn uniform_matches_graph_sample_pair_exactly() {
        let graph = Graph::clique(9);
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut sched = Uniform;
        for t in 0..500 {
            assert_eq!(
                sched.next_pair(&graph, t, &mut a),
                graph.sample_pair(&mut b)
            );
        }
    }

    #[test]
    fn all_strategies_return_valid_distinct_pairs() {
        for (label, pairs) in [
            ("uniform", draws(Uniform, 10, 300, 1)),
            ("biased", draws(BiasedPair::new(3, 0.9), 10, 300, 2)),
            ("starved", draws(LaggardStarving::new(3, 8), 10, 300, 3)),
            ("epoch", draws(EpochBatched::new(), 10, 300, 4)),
            (
                "restricted",
                draws(GraphRestricted::new(Graph::cycle(10)), 10, 300, 5),
            ),
        ] {
            for &(u, v) in &pairs {
                assert!(u != v && u < 10 && v < 10, "{label}: bad pair ({u},{v})");
            }
        }
    }

    #[test]
    fn strategies_are_deterministic_per_seed() {
        assert_eq!(
            draws(EpochBatched::new(), 11, 200, 7),
            draws(EpochBatched::new(), 11, 200, 7)
        );
        assert_eq!(
            draws(BiasedPair::new(4, 0.75), 11, 200, 7),
            draws(BiasedPair::new(4, 0.75), 11, 200, 7)
        );
    }

    #[test]
    fn biased_pair_favours_the_hot_set() {
        let pairs = draws(BiasedPair::new(3, 0.9), 30, 10_000, 11);
        let hot = pairs.iter().filter(|&&(u, v)| u < 3 && v < 3).count();
        // ≈ 0.9 + 0.1 · P[uniform pair lands in hot set]; far above uniform's
        // 3·2/(30·29) ≈ 0.7%.
        assert!(hot > 8_000, "hot fraction too low: {hot}/10000");
    }

    #[test]
    fn laggards_interact_only_on_phase_zero_steps() {
        let n = 12;
        let sched = LaggardStarving::new(4, 16);
        let pairs = draws(sched, n, 16_000, 13);
        let cutoff = n - 4;
        let mut touched = 0u64;
        for (t, &(u, v)) in pairs.iter().enumerate() {
            if u >= cutoff || v >= cutoff {
                assert_eq!(t as u64 % 16, 0, "laggard touched off-phase at {t}");
                touched += 1;
            }
        }
        // Fairness: laggards do interact sometimes.
        assert!(touched > 0, "laggards never interacted");
    }

    #[test]
    fn epoch_batches_are_disjoint_matchings() {
        let n = 10;
        let pairs = draws(EpochBatched::new(), n, 200, 17);
        for epoch in pairs.chunks(n / 2) {
            let mut seen = vec![false; n];
            for &(u, v) in epoch {
                assert!(!seen[u] && !seen[v], "agent repeated within an epoch");
                seen[u] = true;
                seen[v] = true;
            }
        }
    }

    #[test]
    fn graph_restricted_respects_the_subgraph() {
        let sub = Graph::star(8);
        let pairs = draws(GraphRestricted::new(sub), 8, 500, 19);
        for &(u, v) in &pairs {
            assert!(u == 0 || v == 0, "non-star pair ({u},{v})");
        }
    }

    #[test]
    #[should_panic(expected = "must be connected")]
    fn graph_restricted_rejects_disconnected_subgraphs() {
        let _ = GraphRestricted::new(Graph::from_edges(4, vec![(0, 1), (2, 3)]));
    }

    #[test]
    fn reset_epoch_scheduler_replays_like_a_fresh_one() {
        let graph = Graph::clique(11);
        let mut used = EpochBatched::new();
        let mut rng = SmallRng::seed_from_u64(23);
        // Leave the scheduler mid-epoch with a warm, partially-served
        // permutation — the state a trial boundary would catch it in.
        for t in 0..7 {
            used.next_pair(&graph, t, &mut rng);
        }
        used.reset();
        let mut a = SmallRng::seed_from_u64(29);
        let mut b = SmallRng::seed_from_u64(29);
        let mut fresh = EpochBatched::new();
        for t in 0..200 {
            assert_eq!(
                used.next_pair(&graph, t, &mut a),
                fresh.next_pair(&graph, t, &mut b),
                "divergence at step {t}"
            );
        }
    }
}
