//! The Average-and-Conquer (AVC) protocol — the paper's main contribution.

use avc_population::{Opinion, Protocol, StateId};
use std::error::Error;
use std::fmt;

/// The sign of an AVC state: the node's tentative output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// `+`, corresponding to input/majority state `A` (output 1).
    Plus,
    /// `−`, corresponding to input/majority state `B` (output 0).
    Minus,
}

impl Sign {
    /// The sign of a nonzero integer.
    ///
    /// # Panics
    ///
    /// Panics if `v == 0` — zero values carry an explicit sign in AVC and
    /// must not be reconstructed from the integer.
    fn of(v: i64) -> Sign {
        match v.cmp(&0) {
            std::cmp::Ordering::Greater => Sign::Plus,
            std::cmp::Ordering::Less => Sign::Minus,
            std::cmp::Ordering::Equal => panic!("zero has no arithmetic sign"),
        }
    }

    fn unit(self) -> i64 {
        match self {
            Sign::Plus => 1,
            Sign::Minus => -1,
        }
    }

    fn opinion(self) -> Opinion {
        match self {
            Sign::Plus => Opinion::A,
            Sign::Minus => Opinion::B,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Plus => write!(f, "+"),
            Sign::Minus => write!(f, "-"),
        }
    }
}

/// A state of the AVC protocol, as defined in Figure 1 of the paper.
///
/// Each state carries a *sign* (the node's tentative output) and a *weight*
/// (its confidence): strong states have odd weight `3..=m`, intermediate
/// states have weight 1 and an extra level `1..=d`, and weak states have
/// weight 0. The state's *value* is `sign × weight`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AvcState {
    /// A strong state holding an odd value `v` with `3 ≤ |v| ≤ m`.
    Strong(i64),
    /// An intermediate state `±1_level` with weight 1 and `1 ≤ level ≤ d`.
    Intermediate(Sign, u32),
    /// A weak state `±0` with weight 0.
    Weak(Sign),
}

impl AvcState {
    /// The state's weight (Figure 1, line 1).
    #[must_use]
    pub fn weight(self) -> i64 {
        match self {
            AvcState::Strong(v) => v.abs(),
            AvcState::Intermediate(..) => 1,
            AvcState::Weak(_) => 0,
        }
    }

    /// The state's sign (Figure 1, line 2).
    #[must_use]
    pub fn sign(self) -> Sign {
        match self {
            AvcState::Strong(v) => Sign::of(v),
            AvcState::Intermediate(s, _) | AvcState::Weak(s) => s,
        }
    }

    /// The state's value `sgn × weight` (Figure 1, line 3).
    #[must_use]
    pub fn value(self) -> i64 {
        match self {
            AvcState::Strong(v) => v,
            AvcState::Intermediate(s, _) => s.unit(),
            AvcState::Weak(_) => 0,
        }
    }
}

impl fmt::Display for AvcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvcState::Strong(v) => write!(f, "{v:+}"),
            AvcState::Intermediate(s, level) => write!(f, "{s}1_{level}"),
            AvcState::Weak(s) => write!(f, "{s}0"),
        }
    }
}

/// Invalid `(m, d)` or state-budget parameters for [`Avc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AvcParameterError {
    /// `m` must be an odd integer `≥ 1`.
    InvalidM(u64),
    /// `d` must be `≥ 1`.
    InvalidD(u32),
    /// A state budget `s` must be at least `m_min + 2d + 1 = 4` for `d = 1`.
    BudgetTooSmall(u64),
}

impl fmt::Display for AvcParameterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvcParameterError::InvalidM(m) => {
                write!(f, "m must be an odd integer >= 1, got {m}")
            }
            AvcParameterError::InvalidD(d) => write!(f, "d must be >= 1, got {d}"),
            AvcParameterError::BudgetTooSmall(s) => {
                write!(f, "state budget must be >= 4, got {s}")
            }
        }
    }
}

impl Error for AvcParameterError {}

/// The **Average-and-Conquer** exact-majority protocol (paper §3, Figure 1).
///
/// Nodes start at value `+m` (input `A`) or `−m` (input `B`) and repeatedly
/// *average* their values (rounding to odd integers), *neutralize* opposite
/// weight-1 states through `d` intermediate levels into weak `±0` states,
/// and let weak states adopt the sign of any non-weak partner. The total
/// value in the system is invariant (Invariant 4.3), which makes the
/// protocol exact: it converges to the initial majority's sign with
/// probability 1, in `O(log n/(sε) + log n log s)` expected parallel time.
///
/// The protocol uses `s = m + 2d + 1` states. The paper's experiments all
/// use `d = 1` (§6), provided here by [`Avc::with_states`].
///
/// # Example
///
/// ```
/// use avc_protocols::{Avc, AvcState};
///
/// let avc = Avc::new(5, 1)?;
/// assert_eq!(avc.s(), 8);
/// // Worked example from the paper: values 5 and −1 average to 1 and 3.
/// let five = avc.encode(AvcState::Strong(5));
/// let minus_one = avc.encode(AvcState::Intermediate(avc_protocols::Sign::Minus, 1));
/// use avc_population::Protocol;
/// let (x, y) = avc.transition(five, minus_one);
/// let (x, y) = (avc.decode(x), avc.decode(y));
/// assert_eq!(x.value() + y.value(), 4);
/// assert_eq!((x.value(), y.value()), (1, 3));
/// # Ok::<(), avc_protocols::AvcParameterError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Avc {
    m: i64,
    d: u32,
    /// Number of strong values per sign: `(m − 1) / 2`.
    strong_per_sign: u32,
    name: String,
}

impl Avc {
    /// Creates the protocol with the given maximum weight `m` (odd, `≥ 1`)
    /// and number of intermediate levels `d` (`≥ 1`).
    ///
    /// # Errors
    ///
    /// Returns an error if `m` is even or zero, or `d` is zero.
    pub fn new(m: u64, d: u32) -> Result<Avc, AvcParameterError> {
        if m == 0 || m.is_multiple_of(2) {
            return Err(AvcParameterError::InvalidM(m));
        }
        if d == 0 {
            return Err(AvcParameterError::InvalidD(d));
        }
        let name = format!("avc(m={m},d={d})");
        Ok(Avc {
            m: m as i64,
            d,
            strong_per_sign: ((m - 1) / 2) as u32,
            name,
        })
    }

    /// Creates the protocol under the paper's experimental setting `d = 1`,
    /// using at most `budget` states: `m` is the largest odd integer with
    /// `m + 3 ≤ budget`, so `s ∈ {budget, budget − 1}`.
    ///
    /// The paper's Figure 4 sweeps `s ∈ {4, 6, 12, 24, …}` this way, and
    /// its "n-state AVC" in Figure 3 is `Avc::with_states(n)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `budget < 4` (four states are necessary for
    /// exact majority).
    pub fn with_states(budget: u64) -> Result<Avc, AvcParameterError> {
        if budget < 4 {
            return Err(AvcParameterError::BudgetTooSmall(budget));
        }
        let m = if (budget - 3) % 2 == 1 {
            budget - 3
        } else {
            budget - 4
        };
        Avc::new(m, 1)
    }

    /// The maximum weight `m`.
    #[must_use]
    pub fn m(&self) -> u64 {
        self.m as u64
    }

    /// The number of intermediate levels `d`.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// The number of states `s = m + 2d + 1`.
    #[must_use]
    pub fn s(&self) -> u64 {
        self.m as u64 + 2 * self.d as u64 + 1
    }

    /// Encodes a state as its dense index.
    ///
    /// The layout is `−m … −3, −1_1 … −1_d, −0, +0, +1_1 … +1_d, +3 … +m`.
    ///
    /// # Panics
    ///
    /// Panics if the state is invalid for these parameters (even or
    /// out-of-range strong value, level outside `1..=d`).
    #[must_use]
    pub fn encode(&self, state: AvcState) -> StateId {
        let k = self.strong_per_sign;
        let d = self.d;
        match state {
            AvcState::Strong(v) => {
                assert!(
                    v % 2 != 0 && v.abs() >= 3 && v.abs() <= self.m,
                    "invalid strong value {v} for m={}",
                    self.m
                );
                if v < 0 {
                    // −m at index 0, −3 at index k−1.
                    ((v + self.m) / 2) as StateId
                } else {
                    // +3 at k+2d+2, +m at the end.
                    (k + 2 * d + 2) + ((v - 3) / 2) as u32
                }
            }
            AvcState::Intermediate(sign, level) => {
                assert!(level >= 1 && level <= d, "invalid level {level} for d={d}");
                match sign {
                    Sign::Minus => k + (level - 1),
                    Sign::Plus => k + d + 2 + (level - 1),
                }
            }
            AvcState::Weak(Sign::Minus) => k + d,
            AvcState::Weak(Sign::Plus) => k + d + 1,
        }
    }

    /// Decodes a dense index back into a state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn decode(&self, id: StateId) -> AvcState {
        let k = self.strong_per_sign;
        let d = self.d;
        assert!(
            (id as u64) < self.s(),
            "state id {id} out of range for s={}",
            self.s()
        );
        if id < k {
            AvcState::Strong(-self.m + 2 * id as i64)
        } else if id < k + d {
            AvcState::Intermediate(Sign::Minus, id - k + 1)
        } else if id == k + d {
            AvcState::Weak(Sign::Minus)
        } else if id == k + d + 1 {
            AvcState::Weak(Sign::Plus)
        } else if id < k + 2 * d + 2 {
            AvcState::Intermediate(Sign::Plus, id - (k + d + 2) + 1)
        } else {
            AvcState::Strong(3 + 2 * (id - (k + 2 * d + 2)) as i64)
        }
    }

    /// The signed value encoded by a state index.
    #[must_use]
    pub fn value_of(&self, id: StateId) -> i64 {
        self.decode(id).value()
    }

    /// The total value `Σ value(state) · count(state)` of a configuration
    /// given as per-state counts.
    ///
    /// By Invariant 4.3 this quantity never changes along any execution;
    /// it starts at `(a − b)·m` and its sign determines the decision.
    ///
    /// # Panics
    ///
    /// Panics if `counts` does not have exactly `s` entries.
    #[must_use]
    pub fn total_value(&self, counts: &[u64]) -> i64 {
        assert_eq!(counts.len() as u64, self.s(), "count vector length != s");
        counts
            .iter()
            .enumerate()
            .map(|(id, &c)| self.value_of(id as StateId) * c as i64)
            .sum()
    }

    /// `Shift-to-Zero` (Figure 1): intermediates below level `d` move one
    /// level toward zero; every other state is unchanged.
    fn shift_to_zero(&self, state: AvcState) -> AvcState {
        match state {
            AvcState::Intermediate(sign, level) if level < self.d => {
                AvcState::Intermediate(sign, level + 1)
            }
            other => other,
        }
    }

    /// `ϕ` (Figure 1): maps the integers ±1 into the level-1 intermediate
    /// states; other odd values become strong states.
    fn phi(&self, v: i64) -> AvcState {
        debug_assert!(v % 2 != 0, "ϕ takes odd integers, got {v}");
        match v {
            1 => AvcState::Intermediate(Sign::Plus, 1),
            -1 => AvcState::Intermediate(Sign::Minus, 1),
            other => AvcState::Strong(other),
        }
    }

    /// `R↓` (Figure 1): round down to an odd value, then `ϕ`.
    fn round_down(&self, k: i64) -> AvcState {
        self.phi(if k % 2 != 0 { k } else { k - 1 })
    }

    /// `R↑` (Figure 1): round up to an odd value, then `ϕ`.
    fn round_up(&self, k: i64) -> AvcState {
        self.phi(if k % 2 != 0 { k } else { k + 1 })
    }

    /// The update rule `update⟨x, y⟩` of Figure 1, on decoded states.
    ///
    /// The rule is symmetric in its arguments (up to swapping the results),
    /// so initiator/responder order does not matter.
    #[must_use]
    pub fn update(&self, x: AvcState, y: AvcState) -> (AvcState, AvcState) {
        let (wx, wy) = (x.weight(), y.weight());
        if wx > 0 && wy > 0 && (wx > 1 || wy > 1) {
            // Averaging reaction (line 11). Both values are odd, so the sum
            // is even and the average is an exact integer.
            let avg = (x.value() + y.value()) / 2;
            (self.round_down(avg), self.round_up(avg))
        } else if wx * wy == 0 && wx + wy > 0 {
            // Zero meets non-zero (lines 12–14): the weak node adopts the
            // sign of its partner; the partner is only affected if it is an
            // intermediate below level d (it drops one level).
            //
            // Note: the TR's line 12 literally reads `value(x)+value(y) > 0`;
            // the prose ("zero meets non-zero") and the sum invariant require
            // the weight-based guard implemented here.
            if wx != 0 {
                (self.shift_to_zero(x), AvcState::Weak(x.sign()))
            } else {
                (AvcState::Weak(y.sign()), self.shift_to_zero(y))
            }
        } else if wx == 1
            && wy == 1
            && x.sign() != y.sign()
            && (matches!(x, AvcState::Intermediate(_, l) if l == self.d)
                || matches!(y, AvcState::Intermediate(_, l) if l == self.d))
        {
            // Neutralization (lines 15–17): opposite intermediate states,
            // at least one at the deepest level, cancel into ±0.
            (AvcState::Weak(x.sign()), AvcState::Weak(y.sign()))
        } else {
            // Residual case (lines 18–19): both shift toward zero. This
            // covers weak–weak (a no-op) and intermediate–intermediate pairs
            // with no level-d participant; we follow the pseudocode literally
            // and shift same-sign intermediate pairs too (a no-op under the
            // experimental setting d = 1). Values are unchanged either way,
            // preserving Invariant 4.3.
            (self.shift_to_zero(x), self.shift_to_zero(y))
        }
    }
}

impl Protocol for Avc {
    fn num_states(&self) -> u32 {
        self.s() as u32
    }

    fn transition(&self, initiator: StateId, responder: StateId) -> (StateId, StateId) {
        let (x, y) = self.update(self.decode(initiator), self.decode(responder));
        (self.encode(x), self.encode(y))
    }

    fn output(&self, state: StateId) -> Opinion {
        self.decode(state).sign().opinion()
    }

    fn input(&self, opinion: Opinion) -> StateId {
        let sign = match opinion {
            Opinion::A => Sign::Plus,
            Opinion::B => Sign::Minus,
        };
        if self.m >= 3 {
            self.encode(AvcState::Strong(self.m * sign.unit()))
        } else {
            // m = 1: the initial states are the level-1 intermediates and the
            // protocol coincides with the four-state protocol.
            self.encode(AvcState::Intermediate(sign, 1))
        }
    }

    fn state_label(&self, state: StateId) -> String {
        self.decode(state).to_string()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avc(m: u64, d: u32) -> Avc {
        Avc::new(m, d).expect("valid parameters")
    }

    fn inter(sign: Sign, level: u32) -> AvcState {
        AvcState::Intermediate(sign, level)
    }

    #[test]
    fn parameter_validation() {
        assert_eq!(Avc::new(4, 1).unwrap_err(), AvcParameterError::InvalidM(4));
        assert_eq!(Avc::new(0, 1).unwrap_err(), AvcParameterError::InvalidM(0));
        assert_eq!(Avc::new(5, 0).unwrap_err(), AvcParameterError::InvalidD(0));
        assert!(Avc::new(1, 1).is_ok());
    }

    #[test]
    fn state_count_formula() {
        assert_eq!(avc(1, 1).s(), 4);
        assert_eq!(avc(5, 1).s(), 8);
        assert_eq!(avc(5, 3).s(), 12);
        assert_eq!(avc(15, 2).s(), 20);
    }

    #[test]
    fn with_states_matches_figure4_parameterization() {
        // Figure 4 uses s ∈ {4, 6, 12, …} with d = 1, i.e. m = s − 3.
        for (s, m) in [(4u64, 1u64), (6, 3), (12, 9), (24, 21), (34, 31), (66, 63)] {
            let p = Avc::with_states(s).unwrap();
            assert_eq!(p.m(), m);
            assert_eq!(p.d(), 1);
            assert_eq!(p.s(), s);
        }
        // Odd budgets round down.
        assert_eq!(Avc::with_states(11).unwrap().s(), 10);
        assert!(Avc::with_states(3).is_err());
    }

    #[test]
    fn encode_decode_roundtrip_all_states() {
        for (m, d) in [(1u64, 1u32), (1, 4), (3, 1), (5, 2), (9, 3), (101, 7)] {
            let p = avc(m, d);
            for id in 0..p.num_states() {
                let state = p.decode(id);
                assert_eq!(p.encode(state), id, "m={m}, d={d}, id={id}");
            }
        }
    }

    #[test]
    fn state_space_layout_is_value_ordered() {
        let p = avc(7, 2);
        let values: Vec<i64> = (0..p.num_states()).map(|id| p.value_of(id)).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(values, sorted, "layout should be monotone in value");
        assert_eq!(values[0], -7);
        assert_eq!(*values.last().unwrap(), 7);
    }

    #[test]
    fn weight_sign_value_match_figure1() {
        let p = avc(5, 2);
        assert_eq!(AvcState::Strong(-5).weight(), 5);
        assert_eq!(AvcState::Strong(-5).sign(), Sign::Minus);
        assert_eq!(AvcState::Strong(-5).value(), -5);
        assert_eq!(inter(Sign::Plus, 2).weight(), 1);
        assert_eq!(inter(Sign::Minus, 1).value(), -1);
        assert_eq!(AvcState::Weak(Sign::Plus).weight(), 0);
        assert_eq!(AvcState::Weak(Sign::Minus).value(), 0);
        assert_eq!(AvcState::Weak(Sign::Minus).sign(), Sign::Minus);
        let _ = p;
    }

    #[test]
    fn paper_example_five_meets_minus_one() {
        // "input states 5 and −1 will yield output states 1 and 3"
        let p = avc(5, 1);
        let (x, y) = p.update(AvcState::Strong(5), inter(Sign::Minus, 1));
        assert_eq!(x, inter(Sign::Plus, 1));
        assert_eq!(y, AvcState::Strong(3));
    }

    #[test]
    fn paper_example_m_meets_minus_m() {
        // "states m and −m react to produce states −1_1 and 1_1"
        for m in [3u64, 5, 9, 15] {
            let p = avc(m, 2);
            let (x, y) = p.update(AvcState::Strong(m as i64), AvcState::Strong(-(m as i64)));
            assert_eq!(x, inter(Sign::Minus, 1));
            assert_eq!(y, inter(Sign::Plus, 1));
        }
    }

    #[test]
    fn paper_example_three_meets_minus_zero() {
        // "input states 3 and −0 will yield output states 3 and 0"
        let p = avc(5, 1);
        let (x, y) = p.update(AvcState::Strong(3), AvcState::Weak(Sign::Minus));
        assert_eq!(x, AvcState::Strong(3));
        assert_eq!(y, AvcState::Weak(Sign::Plus));
    }

    #[test]
    fn averaging_rounds_even_averages_apart() {
        let p = avc(9, 1);
        // 9 and 3: average 6 → 5 and 7.
        let (x, y) = p.update(AvcState::Strong(9), AvcState::Strong(3));
        assert_eq!((x.value(), y.value()), (5, 7));
        // 9 and −3: average 3 → both 3.
        let (x, y) = p.update(AvcState::Strong(9), AvcState::Strong(-3));
        assert_eq!((x.value(), y.value()), (3, 3));
        // −9 and 1: average −4 → −5 and −3.
        let (x, y) = p.update(AvcState::Strong(-9), inter(Sign::Plus, 1));
        assert_eq!((x.value(), y.value()), (-5, -3));
    }

    #[test]
    fn averaging_into_plus_minus_one_yields_level_one_intermediates() {
        let p = avc(9, 3);
        // 3 and −3: average 0 → −1_1 and +1_1.
        let (x, y) = p.update(AvcState::Strong(3), AvcState::Strong(-3));
        assert_eq!(x, inter(Sign::Minus, 1));
        assert_eq!(y, inter(Sign::Plus, 1));
        // 3 and −1: average 1 → both +1_1.
        let (x, y) = p.update(AvcState::Strong(3), inter(Sign::Minus, 2));
        assert_eq!(x, inter(Sign::Plus, 1));
        assert_eq!(y, inter(Sign::Plus, 1));
    }

    #[test]
    fn weak_adopts_sign_and_intermediate_partner_drops_level() {
        let p = avc(5, 3);
        // −1_1 meets +0: partner adopts −, node drops to −1_2.
        let (x, y) = p.update(inter(Sign::Minus, 1), AvcState::Weak(Sign::Plus));
        assert_eq!(x, inter(Sign::Minus, 2));
        assert_eq!(y, AvcState::Weak(Sign::Minus));
        // At level d the intermediate no longer drops.
        let (x, y) = p.update(inter(Sign::Minus, 3), AvcState::Weak(Sign::Plus));
        assert_eq!(x, inter(Sign::Minus, 3));
        assert_eq!(y, AvcState::Weak(Sign::Minus));
        // Symmetric argument order.
        let (x, y) = p.update(AvcState::Weak(Sign::Minus), AvcState::Strong(5));
        assert_eq!(x, AvcState::Weak(Sign::Plus));
        assert_eq!(y, AvcState::Strong(5));
    }

    #[test]
    fn neutralization_requires_level_d() {
        let p = avc(5, 3);
        // Opposite intermediates, one at level d: both become weak.
        let (x, y) = p.update(inter(Sign::Plus, 3), inter(Sign::Minus, 1));
        assert_eq!(x, AvcState::Weak(Sign::Plus));
        assert_eq!(y, AvcState::Weak(Sign::Minus));
        // Opposite intermediates below level d: both drop one level.
        let (x, y) = p.update(inter(Sign::Plus, 1), inter(Sign::Minus, 2));
        assert_eq!(x, inter(Sign::Plus, 2));
        assert_eq!(y, inter(Sign::Minus, 3));
    }

    #[test]
    fn weak_weak_is_silent() {
        let p = avc(5, 2);
        for (sx, sy) in [
            (Sign::Plus, Sign::Plus),
            (Sign::Plus, Sign::Minus),
            (Sign::Minus, Sign::Minus),
        ] {
            let (x, y) = p.update(AvcState::Weak(sx), AvcState::Weak(sy));
            assert_eq!(x, AvcState::Weak(sx));
            assert_eq!(y, AvcState::Weak(sy));
        }
    }

    #[test]
    fn update_preserves_value_sum_exhaustively() {
        // Invariant 4.3 checked over every ordered state pair for several
        // parameter settings.
        for (m, d) in [(1u64, 1u32), (1, 3), (3, 1), (5, 2), (9, 4), (15, 1)] {
            let p = avc(m, d);
            for a in 0..p.num_states() {
                for b in 0..p.num_states() {
                    let (x, y) = p.transition(a, b);
                    assert_eq!(
                        p.value_of(a) + p.value_of(b),
                        p.value_of(x) + p.value_of(y),
                        "sum invariant violated for {} , {} (m={m}, d={d})",
                        p.state_label(a),
                        p.state_label(b),
                    );
                }
            }
        }
    }

    #[test]
    fn transitions_stay_in_state_space() {
        for (m, d) in [(1u64, 1u32), (5, 2), (9, 1), (21, 3)] {
            let p = avc(m, d);
            let s = p.num_states();
            for a in 0..s {
                for b in 0..s {
                    let (x, y) = p.transition(a, b);
                    assert!(x < s && y < s);
                }
            }
        }
    }

    #[test]
    fn transition_is_symmetric_up_to_swap() {
        for (m, d) in [(1u64, 1u32), (5, 2), (9, 3)] {
            let p = avc(m, d);
            let s = p.num_states();
            for a in 0..s {
                for b in 0..s {
                    let (x1, y1) = p.transition(a, b);
                    let (x2, y2) = p.transition(b, a);
                    assert!(
                        (x1 == y2 && y1 == x2) || (x1 == x2 && y1 == y2),
                        "asymmetric transition for ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn weights_never_exceed_m() {
        // The averaging of two values with |v| ≤ m stays within [−m, m].
        for (m, d) in [(5u64, 1u32), (9, 2)] {
            let p = avc(m, d);
            for a in 0..p.num_states() {
                for b in 0..p.num_states() {
                    let (x, y) = p.transition(a, b);
                    assert!(p.decode(x).weight() <= m as i64);
                    assert!(p.decode(y).weight() <= m as i64);
                }
            }
        }
    }

    #[test]
    fn m_equals_one_matches_four_state_protocol() {
        use crate::four_state::FourState;
        let p = avc(1, 1);
        let q = FourState;
        assert_eq!(p.num_states(), q.num_states());
        // Map AVC states to FourState states by (sign, weight).
        let to_fs = |p: &Avc, id: StateId| -> StateId {
            let st = p.decode(id);
            let plus = st.sign() == Sign::Plus;
            match (st.weight(), plus) {
                (1, true) => q.encode_strong(Opinion::A),
                (1, false) => q.encode_strong(Opinion::B),
                (0, true) => q.encode_weak(Opinion::A),
                (0, false) => q.encode_weak(Opinion::B),
                _ => unreachable!("m=1 has no higher weights"),
            }
        };
        for a in 0..p.num_states() {
            assert_eq!(p.output(a), q.output(to_fs(&p, a)));
            for b in 0..p.num_states() {
                let (x, y) = p.transition(a, b);
                let (u, v) = q.transition(to_fs(&p, a), to_fs(&p, b));
                let mut got = [to_fs(&p, x), to_fs(&p, y)];
                let mut want = [u, v];
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "mismatch at ({a},{b})");
            }
        }
    }

    #[test]
    fn inputs_are_extremal_states() {
        let p = avc(9, 2);
        assert_eq!(p.decode(p.input(Opinion::A)), AvcState::Strong(9));
        assert_eq!(p.decode(p.input(Opinion::B)), AvcState::Strong(-9));
        let p1 = avc(1, 2);
        assert_eq!(p1.decode(p1.input(Opinion::A)), inter(Sign::Plus, 1));
        assert_eq!(p1.decode(p1.input(Opinion::B)), inter(Sign::Minus, 1));
    }

    #[test]
    fn outputs_follow_sign() {
        let p = avc(5, 2);
        for id in 0..p.num_states() {
            let expected = match p.decode(id).sign() {
                Sign::Plus => Opinion::A,
                Sign::Minus => Opinion::B,
            };
            assert_eq!(p.output(id), expected);
        }
    }

    #[test]
    fn total_value_tracks_initial_margin() {
        let p = avc(5, 1);
        let config = avc_population::Config::from_input(&p, 7, 4);
        assert_eq!(p.total_value(config.as_slice()), (7 - 4) * 5);
    }

    #[test]
    fn state_labels_are_readable() {
        let p = avc(5, 2);
        assert_eq!(p.state_label(p.encode(AvcState::Strong(-5))), "-5");
        assert_eq!(p.state_label(p.encode(inter(Sign::Plus, 2))), "+1_2");
        assert_eq!(p.state_label(p.encode(AvcState::Weak(Sign::Minus))), "-0");
    }
}
