//! Implementing your own population protocol against the [`Protocol`]
//! trait: a parity-insensitive "undecided state dynamics" variant, run on
//! every engine plus a non-complete interaction graph.
//!
//! Run with: `cargo run --release --example custom_protocol`
//!
//! [`Protocol`]: avc::population::Protocol

use avc::population::engine::{AgentSim, CountSim, JumpSim, Simulator};
use avc::population::graph::Graph;
use avc::population::{Config, Opinion, Protocol, StateId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Undecided-state dynamics: like the three-state protocol but *two-way* —
/// both participants react. Opposite opinions knock **both** agents into
/// the undecided state; an undecided agent adopts any decided partner.
#[derive(Debug, Clone, Copy)]
struct UndecidedDynamics;

const OPINION_A: StateId = 0;
const OPINION_B: StateId = 1;
const UNDECIDED: StateId = 2;

impl Protocol for UndecidedDynamics {
    fn num_states(&self) -> u32 {
        3
    }

    fn transition(&self, a: StateId, b: StateId) -> (StateId, StateId) {
        match (a, b) {
            (OPINION_A, OPINION_B) | (OPINION_B, OPINION_A) => (UNDECIDED, UNDECIDED),
            (UNDECIDED, x) if x != UNDECIDED => (x, x),
            (x, UNDECIDED) if x != UNDECIDED => (x, x),
            other => other,
        }
    }

    fn output(&self, state: StateId) -> Opinion {
        if state == OPINION_B {
            Opinion::B
        } else {
            Opinion::A
        }
    }

    fn input(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => OPINION_A,
            Opinion::B => OPINION_B,
        }
    }

    fn name(&self) -> &str {
        "undecided-dynamics"
    }
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);
    let (a, b) = (700u64, 300u64);
    let n = (a + b) as usize;

    // The same protocol runs unchanged on all engines…
    let config = Config::from_input(&UndecidedDynamics, a, b);
    let out_count =
        CountSim::new(UndecidedDynamics, config.clone()).run_to_consensus(&mut rng, u64::MAX);
    let out_jump =
        JumpSim::new(UndecidedDynamics, config.clone()).run_to_consensus(&mut rng, u64::MAX);
    println!(
        "clique, count engine: {:?} in {:.1} parallel time",
        out_count.verdict, out_count.parallel_time
    );
    println!(
        "clique, jump engine:  {:?} in {:.1} parallel time",
        out_jump.verdict, out_jump.parallel_time
    );

    // …and on arbitrary connected interaction graphs via the agent engine.
    for (label, graph) in [
        ("cycle", Graph::cycle(n)),
        ("star", Graph::star(n)),
        ("20x50 grid", Graph::grid(20, 50)),
    ] {
        let mut sim = AgentSim::new(UndecidedDynamics, config.clone(), graph);
        let out = sim.run_to_consensus(&mut rng, 500_000_000);
        println!(
            "{label}: {:?} in {:.1} parallel time",
            out.verdict, out.parallel_time
        );
    }
}
