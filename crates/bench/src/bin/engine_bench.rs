//! Engine microbenchmark: legacy per-step loop vs chunked driver loop.
//!
//! Measures every engine on a Figure-3-shaped workload (four-state protocol,
//! one-extra instance, output-consensus rule, bounded step budget) under two
//! stepping regimes that consume the RNG identically:
//!
//! * **legacy** — [`advance_upto_step_by_step`]: one `advance` call per
//!   scheduler step through `&mut dyn RngCore`, the pre-driver loop shape;
//! * **chunked** — [`Driver::run`] over the engine's monomorphized
//!   `ChunkedSimulator::advance_chunk` with a concrete `SmallRng`.
//!
//! Both runs of a repetition start from the same seed and must finish at the
//! same step count and majority count — the benchmark asserts this, so it
//! doubles as an equivalence check.
//!
//! Both halves run the protocol through the [`Cached`] dense transition
//! table, exactly like the experiment harness does.
//!
//! A third, **batch** regime measures the trial-batch reuse seam on small-n
//! cells: a slice of trials run with per-trial `build_erased` construction
//! (the pre-reuse harness shape) versus one long-lived engine reset in
//! place per trial via `reset_erased`. The two paths must produce identical
//! per-trial outcomes, and the agent and count engines must clear a 1.15×
//! construction-reuse floor at the smallest cell (where per-trial setup is
//! a structural share of a trial).
//!
//! Flags: `--quick` (small population only, fewer reps), `--out PATH` (write
//! the JSON report), `--check PATH` (compare against a committed report and
//! fail if any engine's speedup regressed by more than 25%), `--profile`
//! (per-phase breakdown — sampling vs transition vs bookkeeping — for the
//! agent and count engines, appended to the report), `--profile-out PATH`
//! (write the per-phase breakdown as telemetry registry snapshots; implies
//! `--profile`), `--gate-telemetry PATH` (telemetry overhead gate: the
//! chunked hot loop, which now carries the `Sink` seam with its default
//! `NoopSink`, must stay within 2% of a committed pre-telemetry report
//! after normalizing for machine speed by the legacy column).

use avc_population::cached::Cached;
use avc_population::driver::{Driver, NullObserver};
use avc_population::engine::{advance_upto_step_by_step, ErasedChunkedSim, StopCondition};
use avc_population::graph::Graph;
use avc_population::sampler::FenwickSampler;
use avc_population::scenario::build_erased;
use avc_population::telemetry::export::{atomic_write, snapshot_to_json};
use avc_population::telemetry::{MetricValue, RegistrySnapshot};
use avc_population::{
    Config, ConvergenceRule, EngineKind, MajorityInstance, Protocol, SchedulerSpec,
};
use avc_protocols::FourState;
use avc_store::json::Json;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// The convergence rule of the Figure 3 workload.
const RULE: ConvergenceRule = ConvergenceRule::OutputConsensus;
/// Seed shared by the legacy and chunked halves of each repetition.
const SEED: u64 = 42;
/// The tolerated speedup regression factor for `--check`.
const TOLERANCE: f64 = 1.25;
/// The tolerated chunked-time inflation factor for `--gate-telemetry`.
const TELEMETRY_TOLERANCE: f64 = 1.02;
/// The minimum construction-reuse speedup the batch mode demands on the
/// engines whose per-trial setup cost is structural (graph + agent vector
/// for `agent`, Fenwick tree + boxes for `count`).
const BATCH_FLOOR: f64 = 1.15;
/// The engines the [`BATCH_FLOOR`] applies to.
const BATCH_FLOOR_ENGINES: [&str; 2] = ["agent", "count"];
/// The population the floor binds at. Construction cost is per-trial
/// constant while run cost grows with n (a one-extra trial at n=5 converges
/// in ~20 steps), so the smallest cell is where the reuse win is structural
/// rather than noise; larger cells are reported ungated.
const BATCH_FLOOR_N: u64 = 5;
/// The hot-loop cells the telemetry gate covers: the two engines whose
/// chunked loop pays a per-step cost, so any non-compiled-out `Sink` work
/// shows up here first.
const GATED_ENGINES: [&str; 2] = ["agent", "count"];

/// Step budget keeping each measurement bounded; the per-agent engine
/// pays every scheduler step, so it gets a tighter cap at scale.
fn max_steps(engine: EngineKind, n: u64) -> u64 {
    match engine {
        EngineKind::Agent if n > 10_000 => 2_000_000,
        _ if n > 10_000 => 20_000_000,
        _ => 4_000_000,
    }
}

/// One measured (engine, n) cell.
struct Entry {
    engine: &'static str,
    n: u64,
    max_steps: u64,
    steps: u64,
    legacy_ms: f64,
    chunked_ms: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.legacy_ms / self.chunked_ms
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("engine", Json::str(self.engine)),
            ("n", Json::Int(self.n as i64)),
            ("max_steps", Json::Int(self.max_steps as i64)),
            ("steps", Json::Int(self.steps as i64)),
            ("legacy_ms", Json::str(format!("{:.3}", self.legacy_ms))),
            ("chunked_ms", Json::str(format!("{:.3}", self.chunked_ms))),
            ("speedup", Json::str(format!("{:.3}", self.speedup()))),
        ])
    }
}

/// Builds one engine through the scenario plane's erased builder — the
/// same seam every harness client uses, so the bench measures the shipped
/// dispatch path.
fn build(engine: EngineKind, n: u64) -> Box<dyn ErasedChunkedSim> {
    let inst = MajorityInstance::one_extra(n);
    let config = Config::from_input(&FourState, inst.a(), inst.b());
    let protocol = Cached::new(FourState);
    build_erased(protocol, config, engine, &SchedulerSpec::Uniform)
        .expect("the uniform scheduler is valid for every engine")
}

/// Runs the legacy per-step loop: dyn-dispatched `advance` through a
/// `&mut dyn RngCore`, exactly the shape of the pre-driver harness.
fn run_legacy(engine: EngineKind, n: u64, max_steps: u64) -> (f64, u64, u64) {
    let mut sim = build(engine, n);
    let mut rng = SmallRng::seed_from_u64(SEED);
    let stop = StopCondition::for_rule(RULE, sim.population()).with_max_steps(max_steps);
    let started = Instant::now();
    let _ = advance_upto_step_by_step(sim.as_mut(), &mut rng as &mut dyn RngCore, stop);
    let elapsed = started.elapsed().as_secs_f64() * 1e3;
    (elapsed, sim.steps(), sim.count_a())
}

/// Runs the chunked driver loop: one erased call per chunk into the
/// engine's monomorphized `advance_chunk` over a concrete `SmallRng`
/// (construction stays outside the timed region).
fn run_chunked(engine: EngineKind, n: u64, max_steps: u64) -> (f64, u64, u64) {
    let mut sim = build(engine, n);
    let driver = Driver::new(RULE).with_max_steps(max_steps);
    let mut rng = SmallRng::seed_from_u64(SEED);
    let started = Instant::now();
    let _ = driver.run_erased(sim.as_mut(), &mut rng, &mut NullObserver);
    let elapsed = started.elapsed().as_secs_f64() * 1e3;
    (elapsed, sim.steps(), sim.count_a())
}

/// One measured (engine, n) cell of the trial-batch mode: the same slice of
/// trials run with per-trial construction versus one build plus
/// `reset_erased` per trial (the harness's batch loop since the reuse seam).
struct BatchEntry {
    engine: &'static str,
    n: u64,
    trials: u64,
    steps: u64,
    fresh_ms: f64,
    reused_ms: f64,
    /// Best per-repetition fresh/reused ratio. The [`BATCH_FLOOR`] gate
    /// uses this rather than the median: the floor exists to catch a
    /// *structural* regression (per-trial construction back in the loop),
    /// which no repetition would survive, while single-rep scheduling
    /// noise at microsecond trial lengths should not fail CI.
    best_speedup: f64,
}

impl BatchEntry {
    fn speedup(&self) -> f64 {
        self.fresh_ms / self.reused_ms
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("engine", Json::str(self.engine)),
            ("n", Json::Int(self.n as i64)),
            ("trials", Json::Int(self.trials as i64)),
            ("steps", Json::Int(self.steps as i64)),
            ("fresh_ms", Json::str(format!("{:.3}", self.fresh_ms))),
            ("reused_ms", Json::str(format!("{:.3}", self.reused_ms))),
            ("speedup", Json::str(format!("{:.3}", self.speedup()))),
            (
                "best_speedup",
                Json::str(format!("{:.3}", self.best_speedup)),
            ),
        ])
    }
}

/// Runs `trials` trials the pre-reuse way: the `Cached` table is shared, but
/// every trial pays `Config::from_input` + `build_erased` (config clone,
/// engine state, scheduler, box) before it can run.
fn run_trials_fresh(engine: EngineKind, n: u64, trials: u64) -> (f64, Vec<(u64, u64)>) {
    let inst = MajorityInstance::one_extra(n);
    let protocol = Cached::new(FourState);
    let driver = Driver::new(RULE).with_max_steps(max_steps(engine, n));
    let mut outcomes = Vec::with_capacity(trials as usize);
    let started = Instant::now();
    for trial in 0..trials {
        let config = Config::from_input(&FourState, inst.a(), inst.b());
        let mut sim = build_erased(&protocol, config, engine, &SchedulerSpec::Uniform)
            .expect("the uniform scheduler is valid for every engine");
        let mut rng = SmallRng::seed_from_u64(SEED ^ trial);
        let _ = driver.run_erased(sim.as_mut(), &mut rng, &mut NullObserver);
        outcomes.push((sim.steps(), sim.count_a()));
    }
    (started.elapsed().as_secs_f64() * 1e3, outcomes)
}

/// Runs the same `trials` trials through one long-lived engine reset in
/// place before each trial — the reuse seam's shape. The single build is
/// timed too, so the comparison charges the reused path its setup.
fn run_trials_reused(engine: EngineKind, n: u64, trials: u64) -> (f64, Vec<(u64, u64)>) {
    let inst = MajorityInstance::one_extra(n);
    let protocol = Cached::new(FourState);
    let driver = Driver::new(RULE).with_max_steps(max_steps(engine, n));
    let mut outcomes = Vec::with_capacity(trials as usize);
    let started = Instant::now();
    let config = Config::from_input(&FourState, inst.a(), inst.b());
    let mut sim = build_erased(&protocol, config.clone(), engine, &SchedulerSpec::Uniform)
        .expect("the uniform scheduler is valid for every engine");
    for trial in 0..trials {
        sim.reset_erased(&config);
        let mut rng = SmallRng::seed_from_u64(SEED ^ trial);
        let _ = driver.run_erased(sim.as_mut(), &mut rng, &mut NullObserver);
        outcomes.push((sim.steps(), sim.count_a()));
    }
    (started.elapsed().as_secs_f64() * 1e3, outcomes)
}

/// Measures one batch cell; both paths must produce identical per-trial
/// (steps, majority count) sequences — the fresh-equivalence contract of
/// `reset_erased`, asserted here on every repetition.
fn measure_batch(engine: EngineKind, n: u64, trials: u64, reps: usize) -> BatchEntry {
    let mut fresh = Vec::with_capacity(reps);
    let mut reused = Vec::with_capacity(reps);
    let mut steps = 0;
    let mut best_speedup: f64 = 0.0;
    for _ in 0..reps {
        let (ft, fo) = run_trials_fresh(engine, n, trials);
        let (rt, ro) = run_trials_reused(engine, n, trials);
        assert_eq!(
            fo,
            ro,
            "{}/{n}: fresh and reused trial batches diverged",
            engine.name()
        );
        steps = fo.iter().map(|(s, _)| s).sum();
        best_speedup = best_speedup.max(ft / rt);
        fresh.push(ft);
        reused.push(rt);
    }
    BatchEntry {
        engine: engine.name(),
        n,
        trials,
        steps,
        fresh_ms: median(&mut fresh),
        reused_ms: median(&mut reused),
        best_speedup,
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Per-phase cost breakdown of one engine's chunked hot loop.
///
/// The full run is timed as usual; the sampling and transition phases are
/// then *replayed in isolation* for the same number of steps (sampling
/// against a frozen initial distribution / the interaction graph, transition
/// as flat table lookups over pseudo-random pairs). Bookkeeping is the
/// remainder, clamped at zero — replays on frozen state are approximations,
/// not exact slices of the real loop.
struct Profile {
    engine: &'static str,
    n: u64,
    /// The breakdown as a telemetry registry snapshot: `sim.steps` plus one
    /// `wall.<phase>_ns` counter per phase, so `--profile-out` serializes it
    /// with the telemetry exporter instead of a bespoke schema.
    snapshot: RegistrySnapshot,
}

impl Profile {
    fn set_phase_ms(snapshot: &mut RegistrySnapshot, key: &str, ms: f64) {
        snapshot.set(key, MetricValue::Counter((ms * 1e6).round() as u64));
    }

    fn phase_ms(&self, key: &str) -> f64 {
        self.snapshot.counter(key).unwrap_or(0) as f64 / 1e6
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("engine", Json::str(self.engine)),
            ("n", Json::Int(self.n as i64)),
            (
                "steps",
                Json::Int(self.snapshot.counter("sim.steps").unwrap_or(0) as i64),
            ),
            (
                "total_ms",
                Json::str(format!("{:.3}", self.phase_ms("wall.total_ns"))),
            ),
            (
                "sampling_ms",
                Json::str(format!("{:.3}", self.phase_ms("wall.sampling_ns"))),
            ),
            (
                "transition_ms",
                Json::str(format!("{:.3}", self.phase_ms("wall.transition_ns"))),
            ),
            (
                "bookkeeping_ms",
                Json::str(format!("{:.3}", self.phase_ms("wall.bookkeeping_ns"))),
            ),
        ])
    }
}

/// Times `steps` transition lookups over pseudo-random state pairs.
fn replay_transitions(protocol: &Cached<FourState>, steps: u64) -> f64 {
    let s = protocol.num_states();
    let mut rng = SmallRng::seed_from_u64(SEED ^ 0x5eed);
    let started = Instant::now();
    for _ in 0..steps {
        let bits = rng.next_u32();
        let a = bits % s;
        let b = (bits >> 16) % s;
        black_box(protocol.transition(a, b));
    }
    started.elapsed().as_secs_f64() * 1e3
}

/// Times `steps` iterations of the count engine's two sampling draws
/// (first-agent `select`, second-agent fused `select_pair`) against the
/// frozen initial distribution.
fn replay_count_sampling(n: u64, steps: u64) -> f64 {
    let inst = MajorityInstance::one_extra(n);
    let config = Config::from_input(&FourState, inst.a(), inst.b());
    let sampler = FenwickSampler::from_weights(config.as_slice());
    let total = sampler.total();
    let mut rng = SmallRng::seed_from_u64(SEED);
    let started = Instant::now();
    for _ in 0..steps {
        black_box(sampler.select(rng.gen_range(0..total)));
        black_box(sampler.select_pair(rng.gen_range(0..total - 1)));
    }
    started.elapsed().as_secs_f64() * 1e3
}

/// Times `steps` ordered-pair draws on the clique graph.
fn replay_agent_sampling(n: u64, steps: u64) -> f64 {
    let graph = Graph::clique(n as usize);
    let mut rng = SmallRng::seed_from_u64(SEED);
    let started = Instant::now();
    for _ in 0..steps {
        black_box(graph.sample_pair(&mut rng));
    }
    started.elapsed().as_secs_f64() * 1e3
}

/// Profiles one engine at population `n` (agent and count only — the other
/// engines interleave their phases, so an isolated replay would not
/// correspond to any slice of their real loop).
fn profile(engine: EngineKind, n: u64, reps: usize) -> Profile {
    let max_steps = max_steps(engine, n);
    let protocol = Cached::new(FourState);
    let mut total = Vec::with_capacity(reps);
    let mut sampling = Vec::with_capacity(reps);
    let mut transition = Vec::with_capacity(reps);
    let mut steps = 0;
    for _ in 0..reps {
        let (t, s, _) = run_chunked(engine, n, max_steps);
        total.push(t);
        steps = s;
        sampling.push(match engine {
            EngineKind::Count => replay_count_sampling(n, s),
            EngineKind::Agent => replay_agent_sampling(n, s),
            _ => unreachable!("profile covers agent and count only"),
        });
        transition.push(replay_transitions(&protocol, s));
    }
    let total_ms = median(&mut total);
    let sampling_ms = median(&mut sampling);
    let transition_ms = median(&mut transition);
    let mut snapshot = RegistrySnapshot::new();
    snapshot.set("sim.steps", MetricValue::Counter(steps));
    Profile::set_phase_ms(&mut snapshot, "wall.total_ns", total_ms);
    Profile::set_phase_ms(&mut snapshot, "wall.sampling_ns", sampling_ms);
    Profile::set_phase_ms(&mut snapshot, "wall.transition_ns", transition_ms);
    Profile::set_phase_ms(
        &mut snapshot,
        "wall.bookkeeping_ns",
        (total_ms - sampling_ms - transition_ms).max(0.0),
    );
    Profile {
        engine: engine.name(),
        n,
        snapshot,
    }
}

fn measure(engine: EngineKind, n: u64, reps: usize) -> Entry {
    let max_steps = max_steps(engine, n);
    let mut legacy = Vec::with_capacity(reps);
    let mut chunked = Vec::with_capacity(reps);
    let mut steps = 0;
    for _ in 0..reps {
        let (lt, ls, la) = run_legacy(engine, n, max_steps);
        let (ct, cs, ca) = run_chunked(engine, n, max_steps);
        assert_eq!(
            (ls, la),
            (cs, ca),
            "{}/{n}: legacy and chunked runs diverged",
            engine.name()
        );
        legacy.push(lt);
        chunked.push(ct);
        steps = cs;
    }
    Entry {
        engine: engine.name(),
        n,
        max_steps,
        steps,
        legacy_ms: median(&mut legacy),
        chunked_ms: median(&mut chunked),
    }
}

/// Compares freshly measured speedups to a committed report: every engine
/// present in both must retain at least `committed / TOLERANCE`. Batch
/// cells are deliberately *not* compared against the committed report:
/// their microsecond-scale trials make run-to-run medians too noisy for a
/// ratio gate, and the absolute [`BATCH_FLOOR`] check (which runs on every
/// invocation, `--check` or not) already catches the structural
/// regression — construction creeping back into the per-trial loop.
fn check(entries: &[Entry], committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let committed = Json::parse(&text)?;
    let committed = committed
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("committed report has no entries array")?;
    let mut compared = 0;
    for old in committed {
        let (engine, n) = (
            old.get("engine").and_then(Json::as_str).unwrap_or(""),
            old.get("n").and_then(Json::as_int).unwrap_or(0),
        );
        let Some(new) = entries
            .iter()
            .find(|e| e.engine == engine && e.n as i64 == n)
        else {
            continue; // quick mode measures a subset of the committed grid
        };
        let old_speedup: f64 = old
            .get("speedup")
            .and_then(Json::as_str)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("{engine}/{n}: malformed committed speedup"))?;
        let floor = old_speedup / TOLERANCE;
        println!(
            "check {engine}/{n}: committed {old_speedup:.3}x, floor {floor:.3}x, current {:.3}x",
            new.speedup()
        );
        if new.speedup() < floor {
            return Err(format!(
                "{engine}/{n}: speedup regressed to {:.3}x (committed {old_speedup:.3}x, floor {floor:.3}x)",
                new.speedup()
            ));
        }
        compared += 1;
    }
    if compared == 0 {
        return Err("no overlapping entries between current and committed reports".into());
    }
    println!("perf check passed ({compared} cells within {TOLERANCE}x of committed)");
    Ok(())
}

/// The telemetry overhead gate: on the agent and count cells, the chunked
/// loop (whose engines now carry the `Sink` seam with its default
/// `NoopSink`) must match a committed pre-telemetry report to within
/// [`TELEMETRY_TOLERANCE`]. Raw wall times are not comparable across
/// machines, so each committed chunked time is first rescaled by this
/// machine's legacy/committed-legacy ratio — the legacy per-step loop is the
/// same workload measured in the same process, so it serves as the
/// machine-speed proxy.
fn gate_telemetry(entries: &[Entry], committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let committed = Json::parse(&text)?;
    let committed = committed
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("committed report has no entries array")?;
    let ms_field = |obj: &Json, key: &str| -> Option<f64> {
        obj.get(key).and_then(Json::as_str)?.parse().ok()
    };
    let mut compared = 0;
    for old in committed {
        let (engine, n) = (
            old.get("engine").and_then(Json::as_str).unwrap_or(""),
            old.get("n").and_then(Json::as_int).unwrap_or(0),
        );
        if !GATED_ENGINES.contains(&engine) {
            continue;
        }
        let Some(new) = entries
            .iter()
            .find(|e| e.engine == engine && e.n as i64 == n)
        else {
            continue; // quick mode measures a subset of the committed grid
        };
        let old_legacy = ms_field(old, "legacy_ms")
            .ok_or_else(|| format!("{engine}/{n}: malformed committed legacy_ms"))?;
        let old_chunked = ms_field(old, "chunked_ms")
            .ok_or_else(|| format!("{engine}/{n}: malformed committed chunked_ms"))?;
        let scaled = old_chunked * (new.legacy_ms / old_legacy);
        let ceiling = scaled * TELEMETRY_TOLERANCE;
        println!(
            "gate {engine}/{n}: committed {old_chunked:.3} ms, machine-scaled {scaled:.3} ms, \
             ceiling {ceiling:.3} ms, current {:.3} ms",
            new.chunked_ms
        );
        if new.chunked_ms > ceiling {
            return Err(format!(
                "{engine}/{n}: chunked loop at {:.3} ms exceeds {ceiling:.3} ms \
                 (committed {old_chunked:.3} ms scaled for machine speed, +{:.0}%)",
                new.chunked_ms,
                (TELEMETRY_TOLERANCE - 1.0) * 100.0
            ));
        }
        compared += 1;
    }
    if compared == 0 {
        return Err("no overlapping gated cells between current and committed reports".into());
    }
    println!(
        "telemetry overhead gate passed ({compared} hot-loop cells within \
         {:.0}% of committed)",
        (TELEMETRY_TOLERANCE - 1.0) * 100.0
    );
    Ok(())
}

fn main() {
    let args = avc_analysis::cli::Args::from_env();
    let quick = args.flag("quick");
    let (ns, reps): (&[u64], usize) = if quick {
        (&[1_001], 3)
    } else {
        (&[1_001, 100_001], 5)
    };

    let mut entries = Vec::new();
    for &n in ns {
        for engine in EngineKind::CONCRETE {
            let entry = measure(engine, n, reps);
            println!(
                "{:>8} n={:<7} steps={:<9} legacy {:>9.3} ms  chunked {:>9.3} ms  speedup {:.3}x",
                entry.engine,
                entry.n,
                entry.steps,
                entry.legacy_ms,
                entry.chunked_ms,
                entry.speedup()
            );
            entries.push(entry);
        }
    }

    // Trial-batch mode: small-n fig3-shaped cells, where per-trial
    // construction is a visible share of a trial and the reuse seam's win
    // must show. The floor only binds on the engines with structural setup
    // cost; the rest are reported for the record.
    let (batch_ns, batch_trials): (&[u64], u64) = if quick {
        (&[5, 11], 2048)
    } else {
        (&[5, 11], 4096)
    };
    let mut batch_entries = Vec::new();
    for &n in batch_ns {
        for engine in EngineKind::CONCRETE {
            let entry = measure_batch(engine, n, batch_trials, reps);
            println!(
                "{:>8} n={:<7} batch of {}: fresh {:>9.3} ms  reused {:>9.3} ms  speedup {:.3}x (best {:.3}x)",
                entry.engine,
                entry.n,
                entry.trials,
                entry.fresh_ms,
                entry.reused_ms,
                entry.speedup(),
                entry.best_speedup
            );
            if entry.n == BATCH_FLOOR_N
                && BATCH_FLOOR_ENGINES.contains(&entry.engine)
                && entry.best_speedup < BATCH_FLOOR
            {
                eprintln!(
                    "batch floor FAILED: {}/{} at {:.3}x best-of-reps, floor {BATCH_FLOOR}x",
                    entry.engine, entry.n, entry.best_speedup
                );
                std::process::exit(1);
            }
            batch_entries.push(entry);
        }
    }

    let mut profiles = Vec::new();
    if args.flag("profile") || args.get("profile-out").is_some() {
        for &n in ns {
            for engine in [EngineKind::Agent, EngineKind::Count] {
                let p = profile(engine, n, reps);
                println!(
                    "{:>8} n={:<7} profile: total {:>9.3} ms = sampling {:>8.3} + transition {:>8.3} + bookkeeping {:>8.3}",
                    p.engine,
                    p.n,
                    p.phase_ms("wall.total_ns"),
                    p.phase_ms("wall.sampling_ns"),
                    p.phase_ms("wall.transition_ns"),
                    p.phase_ms("wall.bookkeeping_ns")
                );
                profiles.push(p);
            }
        }
    }

    let mut fields = vec![
        ("bench", Json::str("engine_bench")),
        ("mode", Json::str(if quick { "quick" } else { "full" })),
        ("protocol", Json::str("four_state")),
        ("rule", Json::str("output_consensus")),
        ("seed", Json::Int(SEED as i64)),
        (
            "entries",
            Json::Arr(entries.iter().map(Entry::to_json).collect()),
        ),
        (
            "batch",
            Json::Arr(batch_entries.iter().map(BatchEntry::to_json).collect()),
        ),
    ];
    if !profiles.is_empty() {
        fields.push((
            "profile",
            Json::Arr(profiles.iter().map(Profile::to_json).collect()),
        ));
    }
    let report = Json::obj(fields);

    if let Some(path) = args.get("out") {
        std::fs::write(path, report.to_string_pretty() + "\n").expect("write report");
        println!("[written to {path}]");
    }

    if let Some(path) = args.get("profile-out") {
        // One telemetry registry snapshot per profiled cell, serialized by
        // the telemetry exporter (same shapes as `telemetry.jsonl`).
        let cells: Vec<String> = profiles
            .iter()
            .map(|p| {
                format!(
                    "{{\"engine\":\"{}\",\"n\":{},\"snapshot\":{}}}",
                    p.engine,
                    p.n,
                    snapshot_to_json(&p.snapshot)
                )
            })
            .collect();
        let body = format!(
            "{{\"bench\":\"engine_bench_profile\",\"mode\":\"{}\",\"profiles\":[{}]}}\n",
            if quick { "quick" } else { "full" },
            cells.join(",")
        );
        atomic_write(std::path::Path::new(path), body.as_bytes()).expect("write profile report");
        println!("[profile written to {path}]");
    }

    if let Some(path) = args.get("check") {
        if let Err(message) = check(&entries, path) {
            eprintln!("perf check FAILED: {message}");
            std::process::exit(1);
        }
    }

    if let Some(path) = args.get("gate-telemetry") {
        if let Err(message) = gate_telemetry(&entries, path) {
            eprintln!("telemetry overhead gate FAILED: {message}");
            std::process::exit(1);
        }
    }
}
