//! Adaptive engine: starts as [`CountSim`], switches to [`JumpSim`] once
//! silent steps dominate.

use crate::config::Config;
use crate::engine::{
    AdvanceReport, ChunkedSimulator, CountSim, JumpSim, Simulator, StopCondition, StopReason,
};
use crate::faults::{Fault, FaultError};
use crate::protocol::{Opinion, Protocol, StateId};
use avc_telemetry::{NoopSink, Sink};
use rand::RngCore;

/// Window length over which the productive fraction is estimated.
const WINDOW: u64 = 4_096;
/// Switch to [`JumpSim`] once fewer than `WINDOW / SWITCH_DIVISOR`
/// interactions in a window were productive.
const SWITCH_DIVISOR: u64 = 16;

/// A one-way adaptive engine.
///
/// For protocols with many states, the early dynamics are dense — nearly
/// every interaction is productive — so [`CountSim`]'s `O(log s)` steps are
/// optimal. The late dynamics are sparse: the bulk of steps are silent,
/// which is exactly where [`JumpSim`] shines (its per-*event* cost pays off
/// once events are rare). `AdaptiveSim` runs `CountSim` until the productive
/// fraction over a step window drops below `1/16`, then transplants the
/// configuration into a `JumpSim` and continues there.
///
/// The switch does not perturb the trajectory distribution: both engines
/// simulate the same chain, and the handoff copies the exact configuration.
///
/// # Example
///
/// ```
/// use avc_population::engine::{AdaptiveSim, Simulator};
/// use avc_population::protocol::tests_support::Voter;
/// use avc_population::Config;
/// use rand::SeedableRng;
///
/// let mut sim = AdaptiveSim::new(Voter, Config::from_input(&Voter, 500, 100));
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
/// assert!(sim.run_to_consensus(&mut rng, u64::MAX).verdict.is_consensus());
/// ```
/// The `T` parameter is the telemetry [`Sink`] seam (see
/// [`CountSim`] for the contract). The sink lives on the adaptive wrapper —
/// the inner engines keep the no-op default — so chunk deltas and the
/// dense→sparse [`Sink::on_phase_switch`] event are recorded at the level
/// that sees both phases.
#[derive(Debug)]
pub struct AdaptiveSim<P: Protocol + Clone, T = NoopSink> {
    dense: CountSim<P>,
    /// Allocated at the first dense→sparse switch and retained across
    /// [`ChunkedSimulator::reset`], so reused trial batches switch phases
    /// without reconstructing a `JumpSim`. Stale (ignored) while
    /// `in_sparse` is false.
    sparse: Option<JumpSim<P>>,
    in_sparse: bool,
    window_start_steps: u64,
    window_start_events: u64,
    telemetry: T,
}

impl<P: Protocol + Clone> AdaptiveSim<P> {
    /// Creates an engine from an initial configuration.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`CountSim::new`].
    pub fn new(protocol: P, config: Config) -> AdaptiveSim<P> {
        AdaptiveSim {
            dense: CountSim::new(protocol, config),
            sparse: None,
            in_sparse: false,
            window_start_steps: 0,
            window_start_events: 0,
            telemetry: NoopSink,
        }
    }
}

impl<P: Protocol + Clone, T: Sink> AdaptiveSim<P, T> {
    /// Replaces the telemetry sink, rebinding the engine's type. All
    /// simulation state carries over untouched, so attaching telemetry is
    /// RNG-invisible.
    pub fn with_telemetry<T2: Sink>(self, telemetry: T2) -> AdaptiveSim<P, T2> {
        AdaptiveSim {
            dense: self.dense,
            sparse: self.sparse,
            in_sparse: self.in_sparse,
            window_start_steps: self.window_start_steps,
            window_start_events: self.window_start_events,
            telemetry,
        }
    }

    /// The attached telemetry sink.
    pub fn telemetry(&self) -> &T {
        &self.telemetry
    }

    /// The attached telemetry sink, mutably (for draining counts).
    pub fn telemetry_mut(&mut self) -> &mut T {
        &mut self.telemetry
    }

    /// Whether the engine has switched to the jump-chain phase.
    #[must_use]
    pub fn is_sparse_phase(&self) -> bool {
        self.in_sparse
    }

    fn dispatch(&self) -> &dyn Simulator {
        if self.in_sparse {
            self.sparse.as_ref().expect("in_sparse without a JumpSim")
        } else {
            &self.dense
        }
    }

    fn maybe_switch(&mut self) {
        debug_assert!(!self.in_sparse, "maybe_switch is a dense-phase hook");
        let (steps, events) = (self.dense.steps(), self.dense.events());
        if steps - self.window_start_steps < WINDOW {
            return;
        }
        let productive = events - self.window_start_events;
        self.window_start_steps = steps;
        self.window_start_events = events;
        if productive < WINDOW / SWITCH_DIVISOR {
            let config = self.dense.config();
            match &mut self.sparse {
                // A retained JumpSim from an earlier trial: reset replays
                // exactly like a fresh build, so the handoff is unchanged.
                Some(jump) => jump.reset(&config),
                None => {
                    self.sparse = Some(JumpSim::new(self.dense.protocol().clone(), config));
                }
            }
            let jump = self.sparse.as_mut().expect("just installed");
            jump.set_counters(steps, events);
            self.in_sparse = true;
            self.telemetry.on_phase_switch();
        }
    }
}

impl<P: Protocol + Clone, T: Sink> Simulator for AdaptiveSim<P, T> {
    fn population(&self) -> u64 {
        self.dispatch().population()
    }

    fn steps(&self) -> u64 {
        self.dispatch().steps()
    }

    fn events(&self) -> u64 {
        self.dispatch().events()
    }

    fn counts(&self) -> &[u64] {
        if self.in_sparse {
            self.sparse
                .as_ref()
                .expect("in_sparse without a JumpSim")
                .counts()
        } else {
            self.dense.counts()
        }
    }

    fn count_a(&self) -> u64 {
        self.dispatch().count_a()
    }

    fn unanimous_state(&self) -> Option<StateId> {
        self.dispatch().unanimous_state()
    }

    fn state_output(&self, state: StateId) -> Opinion {
        self.dispatch().state_output(state)
    }

    fn config_is_silent(&self) -> bool {
        self.dispatch().config_is_silent()
    }

    fn inject(&mut self, fault: Fault) -> Result<u64, FaultError> {
        let result = if self.in_sparse {
            self.sparse
                .as_mut()
                .expect("in_sparse without a JumpSim")
                .inject(fault)
        } else {
            self.dense.inject(fault)
        };
        if let Ok(n) = result {
            if n > 0 {
                self.telemetry.on_fault();
            }
        }
        // Report the outer engine's name, not the current phase's.
        result.map_err(|e| match e {
            FaultError::Unsupported { fault, .. } => FaultError::Unsupported {
                engine: "AdaptiveSim",
                fault,
            },
            other => other,
        })
    }

    fn advance(&mut self, rng: &mut dyn RngCore) -> u64 {
        if self.in_sparse {
            return self
                .sparse
                .as_mut()
                .expect("in_sparse without a JumpSim")
                .advance(rng);
        }
        let advanced = self.dense.advance(rng);
        self.maybe_switch();
        advanced
    }

    fn advance_upto(&mut self, rng: &mut dyn RngCore, stop: StopCondition) -> AdvanceReport {
        self.advance_chunk(rng, stop)
    }
}

impl<P: Protocol + Clone, T: Sink> ChunkedSimulator for AdaptiveSim<P, T> {
    fn advance_chunk<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        stop: StopCondition,
    ) -> AdvanceReport {
        let (steps0, events0) = (self.steps(), self.events());
        // Dense chunks are additionally bounded by the next window boundary
        // so the productive-fraction estimate is evaluated at exactly the
        // steps the per-step path would evaluate it (the handoff consumes
        // no randomness, so the trajectory is unaffected either way).
        let reason = loop {
            if self.in_sparse {
                let sim = self.sparse.as_mut().expect("in_sparse without a JumpSim");
                break sim.advance_chunk(rng, stop).reason;
            }
            let window_end = self.window_start_steps.saturating_add(WINDOW);
            let budget = stop.max_steps.min(window_end);
            let reason = self
                .dense
                .advance_chunk(rng, stop.with_max_steps(budget))
                .reason;
            match reason {
                StopReason::StepBudget => {
                    self.maybe_switch();
                    if self.steps() >= stop.max_steps {
                        break StopReason::StepBudget;
                    }
                }
                other => break other,
            }
        };
        let report = AdvanceReport {
            steps: self.steps() - steps0,
            events: self.events() - events0,
            reason,
        };
        self.telemetry.on_chunk(report.steps, report.events);
        report
    }

    fn reset(&mut self, config: &Config) {
        self.dense.reset(config);
        // The retained sparse engine (if any) stays allocated but ignored
        // until the next dense→sparse switch resets it from the live
        // configuration.
        self.in_sparse = false;
        self.window_start_steps = 0;
        self.window_start_events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tests_support::{Annihilate, Voter};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn switches_on_sparse_dynamics() {
        // Annihilation with a huge imbalance is quiet from the start: only
        // 50 of 5050 agents can ever react, so the productive fraction is
        // ≈2% and the engine must switch within the first window.
        let config = Config::from_input(&Annihilate, 5_000, 50);
        let mut sim = AdaptiveSim::new(Annihilate, config);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert!(out.verdict.is_consensus());
        assert!(sim.is_sparse_phase(), "expected a switch to JumpSim");
        // Counters carried over the handoff.
        assert_eq!(out.steps, sim.steps());
        assert!(sim.events() <= sim.steps());
    }

    #[test]
    fn stays_dense_on_dense_dynamics() {
        // The voter model on a balanced small instance is productive roughly
        // half the time; no switch should occur before consensus.
        let config = Config::from_input(&Voter, 60, 60);
        let mut sim = AdaptiveSim::new(Voter, config);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = sim.run_to_consensus(&mut rng, u64::MAX);
        assert!(out.verdict.is_consensus());
    }

    #[test]
    fn trait_accessors_delegate() {
        let config = Config::from_input(&Voter, 3, 2);
        let sim = AdaptiveSim::new(Voter, config);
        assert_eq!(sim.population(), 5);
        assert_eq!(sim.count_a(), 3);
        assert_eq!(sim.counts(), &[3, 2]);
        assert_eq!(sim.steps(), 0);
        assert_eq!(sim.unanimous_state(), None);
        assert!(!sim.config_is_silent());
    }
}
