//! Exhaustive verification tools for population protocols.
//!
//! The paper's lower-bound section (§5, Appendices B–C) argues about *all*
//! protocols with a given number of states via reachability arguments. This
//! crate mechanizes the building blocks:
//!
//! * [`reach`] — exact reachability analysis over configuration space
//!   (multisets of states) for small populations, and the three correctness
//!   properties of Theorem B.1 as machine-checkable predicates;
//! * [`enumerate`] — exhaustive enumeration of all symmetric three-state
//!   protocols, reproducing the impossibility of exact three-state majority
//!   \[MNRS14] cited in §1, plus mutation analysis of the four-state
//!   protocol (Claim B.5: the correct behaviour is essentially forced);
//! * [`fourstate_claims`] — machine checks of Claim B.2 and Corollary B.3,
//!   the reachability building blocks of Theorem B.1's proof;
//! * [`witness`] — extraction and replay of explicit interaction schedules
//!   (counterexample traces, constructive convergence certificates);
//! * [`exact_time`] — exact expected hitting times from the absorbing-chain
//!   linear system, used to validate the Monte-Carlo engines;
//! * [`knowledge`] — the information-propagation process `K_t` of
//!   Theorem C.1/Claim C.2, with its exact expected cover time, supporting
//!   the `Ω(log n)` lower bound;
//! * [`table_protocol`] — a table-driven [`Protocol`] used to represent
//!   enumerated protocols.
//!
//! [`Protocol`]: avc_population::Protocol
//!
//! # Example: the four-state protocol is exactly correct for small `n`
//!
//! ```
//! use avc_verify::reach::check_exact_majority;
//! use avc_protocols::FourState;
//!
//! for n in 2..=7u64 {
//!     for a in 0..=n {
//!         let verdict = check_exact_majority(&FourState, a, n - a, 100_000).unwrap();
//!         assert!(verdict.is_correct(), "violated at a={a}, b={}", n - a);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;
pub mod exact_time;
pub mod fourstate_claims;
pub mod knowledge;
pub mod reach;
pub mod table_protocol;
pub mod witness;
