//! Convergence vs graph expansion — the \[DV12] spectral picture.
//!
//! Draief–Vojnović bound the four-state protocol's convergence on a
//! connected interaction graph by `(log n + 1)/δ(G, ε)`, an eigenvalue-gap
//! quantity. This experiment measures convergence time across topologies
//! with very different spectral gaps (clique, star, random-regular, grid,
//! cycle) and reports both, demonstrating the slowdown tracks `1/gap`.

use crate::harness::{drive_to_consensus, run_indexed_with_stats, Parallelism, StatsCollector};
use crate::stats::Summary;
use crate::table::{fmt_num, Table};
use avc_population::cached::Cached;
use avc_population::engine::AgentSim;
use avc_population::graph::Graph;
use avc_population::rngutil::SeedSequence;
use avc_population::spectral::{spectral_gap, PowerIterationOptions};
use avc_population::{Config as PopulationConfig, ConvergenceRule, MajorityInstance};
use avc_protocols::FourState;

/// Parameters for the graph/gap experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Population size (kept moderate: the per-agent engine pays every
    /// step, and the cycle needs `Θ(n²)` parallel time).
    pub n: usize,
    /// Margin.
    pub epsilon: f64,
    /// Runs per topology.
    pub runs: u64,
    /// Master seed.
    pub seed: u64,
    /// Step budget per run (slow topologies are reported as timeouts).
    pub max_steps: u64,
    /// Thread sharding of each topology's trials (results are unaffected).
    pub parallelism: Parallelism,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            n: 300,
            epsilon: 0.2,
            runs: 25,
            seed: 23,
            max_steps: 4_000_000_000,
            parallelism: Parallelism::default(),
        }
    }
}

impl Config {
    /// A downscaled configuration for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Config {
        Config {
            n: 24,
            epsilon: 0.5,
            runs: 5,
            seed: 23,
            max_steps: 100_000_000,
            parallelism: Parallelism::default(),
        }
    }

    /// Builds a configuration from parsed CLI arguments (`--quick`, `--n`,
    /// `--runs`, `--seed`, `--serial`/`--threads`).
    #[must_use]
    pub fn from_args(args: &crate::cli::Args) -> Config {
        let mut config = if args.flag("quick") {
            Config::quick()
        } else {
            Config::default()
        };
        config.n = args.get_u64("n", config.n as u64) as usize;
        config.runs = args.get_u64("runs", config.runs);
        config.seed = args.get_u64("seed", config.seed);
        config.parallelism = args.parallelism();
        config
    }
}

/// One topology's measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Topology label.
    pub label: String,
    /// Undirected edge count.
    pub edges: usize,
    /// Spectral gap `1 − λ₂` of the random-walk matrix.
    pub gap: f64,
    /// Parallel-time summary over converged runs (`None` if every run hit
    /// the step budget).
    pub summary: Option<Summary>,
    /// Runs that hit the step budget.
    pub timeouts: u64,
}

/// The topologies measured, constructed at population `n`. Public so sweep
/// specs can enumerate the cell labels without running the experiment.
#[must_use]
pub fn topologies(n: usize, seed: u64) -> Vec<(String, Graph)> {
    let mut rng = SeedSequence::new(seed).rng_for(u64::MAX);
    let regular = loop {
        let g = Graph::random_regular(n, 6, &mut rng);
        if g.is_connected() {
            break g;
        }
    };
    let side = (n as f64).sqrt().round() as usize;
    vec![
        ("clique".to_string(), Graph::clique(n)),
        ("star".to_string(), Graph::star(n)),
        ("random 6-regular".to_string(), regular),
        (
            format!("grid {side}x{}", n / side),
            Graph::grid(side, n / side),
        ),
        ("cycle".to_string(), Graph::cycle(n)),
    ]
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &Config) -> Vec<Point> {
    run_with_stats(config, &StatsCollector::new())
}

/// As [`run`], folding per-topology throughput telemetry into `stats`.
#[must_use]
pub fn run_with_stats(config: &Config, stats: &StatsCollector) -> Vec<Point> {
    (0..topologies(config.n, config.seed).len())
        .map(|gi| run_point(config, gi, stats))
        .collect()
}

/// Runs one topology; `gi` indexes [`topologies`]`(config.n, config.seed)`.
/// Trial seeds derive from the topology index alone, so a topology reruns
/// identically in isolation (the basis of checkpoint/resume).
///
/// # Panics
///
/// Panics if `gi` is out of range.
#[must_use]
pub fn run_point(config: &Config, gi: usize, stats: &StatsCollector) -> Point {
    let seeds = SeedSequence::new(config.seed);
    let (label, graph) = topologies(config.n, config.seed)
        .into_iter()
        .nth(gi)
        .expect("topology index in range");
    // Population may differ slightly for the grid (side rounding).
    let n = graph.num_agents() as u64;
    let inst = MajorityInstance::with_margin(n, config.epsilon);
    let gap = spectral_gap(&graph, PowerIterationOptions::default());
    let topology_seeds = seeds.child(gi as u64);
    let graph_ref = &graph;
    // One shared transition table for every trial of this topology.
    let protocol = Cached::new(FourState);
    let protocol_ref = &protocol;
    let (outcomes, batch) = run_indexed_with_stats(config.runs, config.parallelism, |trial| {
        let mut rng = topology_seeds.rng_for(trial);
        let initial = PopulationConfig::from_input(&FourState, inst.a(), inst.b());
        let mut sim = AgentSim::new(protocol_ref, initial, graph_ref.clone());
        let out = drive_to_consensus(
            &mut sim,
            ConvergenceRule::OutputConsensus,
            &mut rng,
            config.max_steps,
        );
        (out, out.steps)
    });
    stats.record(&batch);
    let times: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.verdict.is_consensus())
        .map(|o| o.parallel_time)
        .collect();
    let timeouts = config.runs - times.len() as u64;
    let summary = (!times.is_empty()).then(|| Summary::from_samples(&times));
    Point {
        label,
        edges: graph.num_edges(),
        gap,
        summary,
        timeouts,
    }
}

/// Renders the result table.
#[must_use]
pub fn table(points: &[Point], config: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Four-state protocol vs interaction-graph expansion (n ≈ {}, eps = {}, {} runs)",
            config.n, config.epsilon, config.runs
        ),
        [
            "graph",
            "edges",
            "spectral_gap",
            "one_over_gap",
            "mean_parallel_time",
            "std_dev",
            "timeouts",
        ],
    );
    for p in points {
        let (mean, std) = match &p.summary {
            Some(s) => (fmt_num(s.mean), fmt_num(s.std_dev)),
            None => ("-".to_string(), "-".to_string()),
        };
        t.push_row([
            p.label.clone(),
            p.edges.to_string(),
            fmt_num(p.gap),
            fmt_num(1.0 / p.gap),
            mean,
            std,
            p.timeouts.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_graphs_have_small_gaps_and_long_times() {
        let config = Config::quick();
        let points = run(&config);
        assert_eq!(points.len(), 5);
        let get = |label: &str| points.iter().find(|p| p.label.starts_with(label)).unwrap();

        let clique = get("clique");
        let cycle = get("cycle");
        // The cycle's gap is well below the clique's…
        assert!(clique.gap > 20.0 * cycle.gap);
        // …and its convergence correspondingly slower.
        let clique_mean = clique.summary.as_ref().unwrap().mean;
        let cycle_mean = cycle.summary.as_ref().unwrap().mean;
        assert!(
            cycle_mean > 3.0 * clique_mean,
            "cycle {cycle_mean} vs clique {clique_mean}"
        );
        // No timeouts at this scale.
        assert!(points.iter().all(|p| p.timeouts == 0));
    }
}
