//! Property tests for the `Cached` dense transition-table wrapper.
//!
//! The harness routes every experiment through `Cached` when the protocol's
//! state space fits under `MAX_TABLE_ENTRIES`, so the wrapper must be an
//! *exact* stand-in for the arithmetic protocol: same transitions, outputs,
//! input encodings, silent-pair predicate, and configuration-silence
//! verdicts, over real AVC instances and adversarial random tables alike.

use avc_population::cached::{Cached, MAX_TABLE_ENTRIES};
use avc_population::{Opinion, Protocol, StateId};
use avc_protocols::Avc;
use proptest::prelude::*;

/// Asserts that `cached` and `plain` agree on every Protocol query over the
/// full `s × s` grid, plus `config_silent` on the given count vectors.
fn assert_exact_standin<P: Protocol>(cached: &Cached<P>, plain: &P, configs: &[Vec<u64>]) {
    let s = plain.num_states();
    assert_eq!(cached.num_states(), s);
    for a in 0..s {
        for b in 0..s {
            assert_eq!(
                cached.transition(a, b),
                plain.transition(a, b),
                "transition({a}, {b})"
            );
            assert_eq!(
                cached.is_silent(a, b),
                plain.is_silent(a, b),
                "is_silent({a}, {b})"
            );
        }
        assert_eq!(cached.output(a), plain.output(a), "output({a})");
    }
    assert_eq!(cached.input(Opinion::A), plain.input(Opinion::A));
    assert_eq!(cached.input(Opinion::B), plain.input(Opinion::B));
    for counts in configs {
        assert_eq!(
            cached.config_silent(counts),
            plain.config_silent(counts),
            "config_silent({counts:?})"
        );
    }
}

/// A few count vectors exercising empty, singleton, and mixed occupancy.
fn probe_configs(s: u32, seed: u64) -> Vec<Vec<u64>> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut configs = vec![vec![0u64; s as usize]];
    for one in 0..s.min(4) {
        let mut c = vec![0u64; s as usize];
        c[one as usize] = 1;
        configs.push(c.clone());
        c[one as usize] = 2;
        configs.push(c);
    }
    for _ in 0..8 {
        let c: Vec<u64> = (0..s).map(|_| rng.gen_range(0..4)).collect();
        configs.push(c);
    }
    configs
}

#[test]
fn avc_grid_agrees_with_arithmetic_protocol() {
    for m in [1u64, 3, 5, 15] {
        for d in [1u32, 2, 3] {
            let plain = Avc::new(m, d).expect("valid AVC parameters");
            let cached = Cached::new(Avc::new(m, d).expect("valid AVC parameters"));
            let configs = probe_configs(plain.num_states(), m * 31 + d as u64);
            assert_exact_standin(&cached, &plain, &configs);
        }
    }
}

/// An arbitrary protocol defined by explicit transition/output tables; the
/// worst case for `Cached` because nothing about it is structured.
#[derive(Debug, Clone)]
struct TableProtocol {
    s: u32,
    delta: Vec<(StateId, StateId)>,
    gamma: Vec<bool>,
}

impl Protocol for TableProtocol {
    fn num_states(&self) -> u32 {
        self.s
    }
    fn transition(&self, a: StateId, b: StateId) -> (StateId, StateId) {
        self.delta[(a * self.s + b) as usize]
    }
    fn output(&self, q: StateId) -> Opinion {
        if self.gamma[q as usize] {
            Opinion::A
        } else {
            Opinion::B
        }
    }
    fn input(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => 0,
            Opinion::B => self.s - 1,
        }
    }
    fn name(&self) -> &str {
        "table-test"
    }
}

fn table_protocol_strategy(max_states: u32) -> impl Strategy<Value = TableProtocol> {
    (2..=max_states, any::<u64>()).prop_map(|(s, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let delta = (0..s * s)
            .map(|_| (rng.gen_range(0..s), rng.gen_range(0..s)))
            .collect();
        let gamma = (0..s).map(|_| rng.gen_range(0..2) == 0).collect();
        TableProtocol { s, delta, gamma }
    })
}

proptest! {
    #[test]
    fn random_table_protocols_round_trip_through_the_cache(
        protocol in table_protocol_strategy(24),
        seed in any::<u64>(),
    ) {
        let cached = Cached::new(protocol.clone());
        let configs = probe_configs(protocol.num_states(), seed);
        assert_exact_standin(&cached, &protocol, &configs);
    }

    #[test]
    fn config_silent_matches_brute_force_on_random_counts(
        protocol in table_protocol_strategy(16),
        counts in proptest::collection::vec(0u64..5, 16),
    ) {
        let counts = &counts[..protocol.num_states() as usize];
        let cached = Cached::new(protocol.clone());
        // Independent brute-force oracle over live ordered pairs.
        let live: Vec<StateId> = (0..protocol.num_states())
            .filter(|&q| counts[q as usize] > 0)
            .collect();
        let mut expected = true;
        'outer: for &a in &live {
            for &b in &live {
                if a == b && counts[a as usize] < 2 {
                    continue;
                }
                if !protocol.is_silent(a, b) {
                    expected = false;
                    break 'outer;
                }
            }
        }
        prop_assert_eq!(cached.config_silent(counts), expected);
        prop_assert_eq!(protocol.config_silent(counts), expected);
    }
}

/// A protocol with an arbitrary state count and trivial dynamics, for
/// probing the table-size bound without paying for a real table.
#[derive(Debug, Clone)]
struct WideProtocol {
    s: u32,
}

impl Protocol for WideProtocol {
    fn num_states(&self) -> u32 {
        self.s
    }
    fn transition(&self, a: StateId, _b: StateId) -> (StateId, StateId) {
        (a, a)
    }
    fn output(&self, q: StateId) -> Opinion {
        if q == 0 {
            Opinion::A
        } else {
            Opinion::B
        }
    }
    fn input(&self, opinion: Opinion) -> StateId {
        match opinion {
            Opinion::A => 0,
            Opinion::B => self.s - 1,
        }
    }
    fn name(&self) -> &str {
        "wide-test"
    }
}

#[test]
fn table_size_boundary_is_exact() {
    // 4096² entries is exactly the cap; one more state overflows it.
    assert_eq!(MAX_TABLE_ENTRIES, 4_096 * 4_096);
    assert!(Cached::<WideProtocol>::fits(4_096));
    assert!(!Cached::<WideProtocol>::fits(4_097));

    // At the boundary, the cache builds and answers correctly at the
    // corners of the table.
    let plain = WideProtocol { s: 4_096 };
    let cached = Cached::try_new(plain.clone()).expect("4096 states fit");
    for (a, b) in [(0, 0), (0, 4_095), (4_095, 0), (4_095, 4_095), (17, 1_234)] {
        assert_eq!(cached.transition(a, b), plain.transition(a, b));
        assert_eq!(cached.is_silent(a, b), plain.is_silent(a, b));
    }

    // One state past the boundary, try_new declines and returns the
    // protocol unchanged; new() panics.
    let too_wide = WideProtocol { s: 4_097 };
    let back = Cached::try_new(too_wide).expect_err("4097 states must not fit");
    assert_eq!(back.num_states(), 4_097);
    let panicked = std::panic::catch_unwind(|| Cached::new(WideProtocol { s: 4_097 })).is_err();
    assert!(panicked, "Cached::new must panic past the bound");
}

#[test]
fn large_avc_instances_fall_back_to_arithmetic() {
    // The n-state AVC instance of Figure 3 at n = 100 001 has ~100 000
    // states — far past the table bound. try_new must hand it back.
    let avc = Avc::with_states(100_000).expect("valid AVC budget");
    let s = avc.num_states();
    assert!(s > 4_096);
    assert!(Cached::try_new(avc).is_err());
}
