//! Empirically validates **Theorem B.1**: four-state exact majority takes
//! `Ω(1/ε)` parallel time (fitted scaling exponent ≈ 1).
//!
//! Usage: `cargo run --release -p avc-bench --bin lb_four_state [--quick]
//! [--runs N] [--seed N] [--n N] [--serial | --threads N] [--progress]
//! [--out DIR]`

use avc_analysis::cli::Args;
use avc_analysis::experiments::{four_state_scaling, report};

fn main() {
    let args = Args::from_env();
    let mut config = if args.flag("quick") {
        four_state_scaling::Config::quick()
    } else {
        four_state_scaling::Config::default()
    };
    config.runs = args.get_u64("runs", config.runs);
    config.seed = args.get_u64("seed", config.seed);
    config.n = args.get_u64("n", config.n);
    config.parallelism = args.parallelism();

    avc_bench::banner(
        "Lower bound LB-1 (Theorem B.1)",
        &format!(
            "four-state protocol time vs margin at n = {}, {} runs per margin",
            config.n, config.runs
        ),
    );

    let stats = avc_bench::collector(&args);
    let outcome = four_state_scaling::run_with_stats(&config, &stats);
    let out = avc_bench::out_dir(&args);
    report(
        &four_state_scaling::table(&outcome, config.n),
        &out,
        "lb_four_state",
    );
    println!(
        "fitted log-log slope of time vs 1/eps: {:.3} (theory: Θ(1/eps) ⇒ 1)",
        outcome.slope
    );
    println!("throughput: {}", stats.snapshot());
}
