//! The shared run driver: one loop that owns convergence-rule evaluation
//! and feeds pluggable observers, over any engine's chunked advance.
//!
//! Every consumer of a simulation — consensus runs, trace recording,
//! dynamics snapshots, store sweeps — used to carry its own stepping loop.
//! The [`Driver`] replaces them all: it translates a [`ConvergenceRule`]
//! into an inline-checkable [`StopCondition`], slices the run into chunks
//! bounded by the next *checkpoint* (observer sample, silence check, or
//! step budget), and lets the engine burn through each chunk in a
//! monomorphized tight loop. Between chunks it evaluates the rule, notifies
//! the [`Observer`], and decides the [`Verdict`].
//!
//! # Cadence guarantees
//!
//! * An observer with `cadence() == Some(c)` sees the configuration at the
//!   run's entry step, then at the first step `≥` each subsequent multiple
//!   of `c` (engines that batch steps may land past the boundary; the
//!   observer sees the first reachable configuration at or after it), and
//!   finally at the terminal step via [`DriverEvent::Finished`].
//! * Under [`ConvergenceRule::Silence`] the (expensive) `config_is_silent`
//!   check runs at the driver's silence cadence — population size `n` by
//!   default, overridable via [`Driver::check_silence_every`].
//!
//! # Why RNG order is preserved
//!
//! Checkpoints only ever *shorten* a chunk's step budget; they never draw
//! randomness and never reorder the engine's draws. Each engine's chunked
//! loop consumes the RNG exactly as repeated single-step
//! [`Simulator::advance`] would (pinned by
//! `tests/advance_upto_equivalence.rs`), so trajectories are bit-identical
//! for every chunking, observer cadence, and dispatch path.

use crate::engine::{
    silent_verdict, AdvanceReport, ChunkedSimulator, ErasedChunkedSim, Simulator, StopCondition,
    StopReason,
};
use crate::faults::{Fault, FaultPlan};
use crate::protocol::{Opinion, StateId};
use crate::spec::{ConvergenceRule, RunOutcome, Verdict};
use rand::rngs::SmallRng;
use rand::RngCore;

/// A cheap borrowed summary of a simulation's observable state, passed to
/// [`Observer`] callbacks.
///
/// Carrying the fields (rather than `&dyn Simulator`) keeps observer
/// notification free of dispatch and lets the driver stay generic over
/// unsized engine types.
#[derive(Debug, Clone, Copy)]
pub struct SimView<'a> {
    /// Number of agents `n`.
    pub population: u64,
    /// Total scheduler steps elapsed.
    pub steps: u64,
    /// Total productive interactions executed.
    pub events: u64,
    /// Agents whose output is [`Opinion::A`].
    pub count_a: u64,
    /// Species counts, indexed by state.
    pub counts: &'a [u64],
    /// The state all agents share, if unanimous.
    pub unanimous_state: Option<StateId>,
}

impl<'a> SimView<'a> {
    /// Snapshots `sim`.
    pub fn of<S: Simulator + ?Sized>(sim: &'a S) -> SimView<'a> {
        SimView {
            population: sim.population(),
            steps: sim.steps(),
            events: sim.events(),
            count_a: sim.count_a(),
            counts: sim.counts(),
            unanimous_state: sim.unanimous_state(),
        }
    }

    /// `steps / n`.
    #[must_use]
    pub fn parallel_time(&self) -> f64 {
        crate::time::parallel_time(self.steps, self.population)
    }
}

/// Lifecycle notifications a [`Driver`] sends its [`Observer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverEvent {
    /// The run is about to start; the view shows the entry configuration.
    Started,
    /// The run ended with this verdict; the view shows the terminal
    /// configuration.
    Finished(Verdict),
    /// A fault from the run's [`FaultPlan`] was just injected; the view
    /// shows the post-injection configuration.
    Fault(Fault),
}

/// A pluggable consumer of driver progress.
///
/// All methods have no-op defaults; implement only what you need. See the
/// module docs for the cadence guarantees.
pub trait Observer {
    /// Requested sampling cadence in scheduler steps, if any.
    ///
    /// Returning `Some(c)` makes the driver end a chunk at (the first
    /// reachable step at or after) every `c` steps, so `on_chunk` is called
    /// there. Returning `None` lets chunks run to the next rule checkpoint.
    fn cadence(&self) -> Option<u64> {
        None
    }

    /// Called after every chunk with the post-chunk view and the chunk's
    /// [`AdvanceReport`].
    fn on_chunk(&mut self, _view: &SimView<'_>, _report: &AdvanceReport) {}

    /// Called at run start and end.
    fn on_event(&mut self, _view: &SimView<'_>, _event: &DriverEvent) {}
}

/// The do-nothing observer: chunks are bounded only by rule checkpoints.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Runs a simulation to a [`Verdict`] under a [`ConvergenceRule`].
///
/// Construct with [`Driver::new`], configure with the builder methods, then
/// call [`Driver::run`] (monomorphized hot path) or [`Driver::run_dyn`]
/// (object-safe path). Both evaluate the rule with identical semantics and
/// consume the RNG identically.
#[derive(Debug, Clone, Copy)]
pub struct Driver {
    rule: ConvergenceRule,
    max_steps: u64,
    silence_check_every: Option<u64>,
}

impl Driver {
    /// A driver for `rule` with an unlimited step budget and the default
    /// silence-check cadence (population size).
    #[must_use]
    pub fn new(rule: ConvergenceRule) -> Driver {
        Driver {
            rule,
            max_steps: u64::MAX,
            silence_check_every: None,
        }
    }

    /// Caps the run at `max_steps` scheduler steps (verdict
    /// [`Verdict::MaxSteps`] once `steps ≥ max_steps`; batching engines may
    /// overshoot within a batch, and the outcome reports true steps).
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Driver {
        self.max_steps = max_steps;
        self
    }

    /// Sets the cadence (in steps) of the explicit `config_is_silent`
    /// check used under [`ConvergenceRule::Silence`]. Default: `n`.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    #[must_use]
    pub fn check_silence_every(mut self, steps: u64) -> Driver {
        assert!(steps > 0, "silence-check cadence must be positive");
        self.silence_check_every = Some(steps);
        self
    }

    /// Runs `sim` on the monomorphized fast path: the engine's
    /// [`ChunkedSimulator::advance_chunk`] is instantiated for the concrete
    /// RNG type, so the per-step loop has zero dynamic dispatch.
    pub fn run<S, R, O>(&self, sim: &mut S, rng: &mut R, observer: &mut O) -> RunOutcome
    where
        S: ChunkedSimulator + ?Sized,
        R: RngCore + ?Sized,
        O: Observer + ?Sized,
    {
        self.drive(sim, rng, observer, None, |s, r, stop| {
            s.advance_chunk(r, stop)
        })
    }

    /// Runs `sim` through the object-safe [`Simulator::advance_upto`]
    /// boundary (same semantics and RNG consumption as [`Driver::run`];
    /// engines still run their chunk loops, only the RNG stays `dyn`).
    pub fn run_dyn<S, O>(&self, sim: &mut S, rng: &mut dyn RngCore, observer: &mut O) -> RunOutcome
    where
        S: Simulator + ?Sized,
        O: Observer + ?Sized,
    {
        self.drive(sim, rng, observer, None, |s, r, stop| {
            s.advance_upto(r, stop)
        })
    }

    /// As [`Driver::run`], injecting the faults of `faults` as the run
    /// crosses their scheduled steps.
    ///
    /// Each fault fires at the first *reachable* step at or after its
    /// `at_step` (chunks are cut at pending fault steps, so non-batching
    /// engines land exactly; batching engines may overshoot like they do
    /// observer cadences), *before* the convergence rule is evaluated at
    /// that step. The observer sees every injection as a
    /// [`DriverEvent::Fault`]. Injection draws no randomness, so the RNG
    /// stream is identical to a fault-free run of the same length. An
    /// empty plan makes this exactly [`Driver::run`].
    ///
    /// A run that ends (verdict reached, or a batching engine reports the
    /// configuration silent) before a scheduled fault's step never applies
    /// that fault; [`FaultPlan::remaining`] exposes how many were left.
    ///
    /// # Panics
    ///
    /// Panics if the engine rejects a fault
    /// (see [`Simulator::inject`]) — a mis-specified stress scenario is a
    /// programming error, not a run outcome.
    pub fn run_faulted<S, R, O>(
        &self,
        sim: &mut S,
        rng: &mut R,
        observer: &mut O,
        faults: &mut FaultPlan,
    ) -> RunOutcome
    where
        S: ChunkedSimulator + ?Sized,
        R: RngCore + ?Sized,
        O: Observer + ?Sized,
    {
        self.drive(sim, rng, observer, Some(faults), |s, r, stop| {
            s.advance_chunk(r, stop)
        })
    }

    /// As [`Driver::run_faulted`] over the object-safe
    /// [`Simulator::advance_upto`] boundary.
    ///
    /// # Panics
    ///
    /// As [`Driver::run_faulted`].
    pub fn run_faulted_dyn<S, O>(
        &self,
        sim: &mut S,
        rng: &mut dyn RngCore,
        observer: &mut O,
        faults: &mut FaultPlan,
    ) -> RunOutcome
    where
        S: Simulator + ?Sized,
        O: Observer + ?Sized,
    {
        self.drive(sim, rng, observer, Some(faults), |s, r, stop| {
            s.advance_upto(r, stop)
        })
    }

    /// As [`Driver::run`] over the erased [`ErasedChunkedSim`] boundary —
    /// the scenario builder's dispatch seam.
    ///
    /// The chunk loop behind `advance_chunk_erased` is the same
    /// `advance_chunk::<SmallRng>` monomorphization [`Driver::run`] uses, so
    /// the RNG stream and trajectory are bit-identical to concrete
    /// dispatch; the only added cost is one virtual call per chunk.
    pub fn run_erased<O>(
        &self,
        sim: &mut dyn ErasedChunkedSim,
        rng: &mut SmallRng,
        observer: &mut O,
    ) -> RunOutcome
    where
        O: Observer + ?Sized,
    {
        self.drive(sim, rng, observer, None, |s, r, stop| {
            s.advance_chunk_erased(r, stop)
        })
    }

    /// As [`Driver::run_faulted`] over the erased [`ErasedChunkedSim`]
    /// boundary. An empty plan makes this exactly [`Driver::run_erased`].
    ///
    /// # Panics
    ///
    /// As [`Driver::run_faulted`].
    pub fn run_faulted_erased<O>(
        &self,
        sim: &mut dyn ErasedChunkedSim,
        rng: &mut SmallRng,
        observer: &mut O,
        faults: &mut FaultPlan,
    ) -> RunOutcome
    where
        O: Observer + ?Sized,
    {
        self.drive(sim, rng, observer, Some(faults), |s, r, stop| {
            s.advance_chunk_erased(r, stop)
        })
    }

    /// The single driver loop both entry points share. `chunk` hides which
    /// advance boundary is in use.
    fn drive<S, R, O, F>(
        &self,
        sim: &mut S,
        rng: &mut R,
        observer: &mut O,
        mut faults: Option<&mut FaultPlan>,
        mut chunk: F,
    ) -> RunOutcome
    where
        S: Simulator + ?Sized,
        R: RngCore + ?Sized,
        O: Observer + ?Sized,
        F: FnMut(&mut S, &mut R, StopCondition) -> AdvanceReport,
    {
        let n = sim.population();
        let stop = StopCondition::for_rule(self.rule, n);
        observer.on_event(&SimView::of(sim), &DriverEvent::Started);

        let cadence = observer.cadence();
        if let Some(c) = cadence {
            assert!(c > 0, "observer cadence must be positive");
        }
        let mut next_sample = cadence.map_or(u64::MAX, |c| sim.steps().saturating_add(c));
        let silence_every = match self.rule {
            ConvergenceRule::Silence => Some(self.silence_check_every.unwrap_or(n).max(1)),
            _ => None,
        };
        let mut next_silence = silence_every.map_or(u64::MAX, |_| sim.steps());
        let mut next_fault = faults
            .as_deref()
            .and_then(FaultPlan::next_step)
            .unwrap_or(u64::MAX);

        let verdict = loop {
            // Due faults fire before the rule is evaluated at this step,
            // so a fault at the run's entry step perturbs the start state.
            if sim.steps() >= next_fault {
                let plan = faults
                    .as_deref_mut()
                    .expect("finite next_fault implies a plan");
                for event in plan.take_due(sim.steps()) {
                    match sim.inject(event.fault) {
                        Ok(_) => {
                            observer.on_event(&SimView::of(sim), &DriverEvent::Fault(event.fault));
                        }
                        Err(e) => panic!("fault injection failed at step {}: {e}", sim.steps()),
                    }
                }
                next_fault = plan.next_step().unwrap_or(u64::MAX);
            }
            if let Some(every) = silence_every {
                if sim.steps() >= next_silence {
                    if sim.config_is_silent() {
                        break silent_verdict(sim, n);
                    }
                    next_silence = sim.steps().saturating_add(every);
                }
            }
            if stop.predicate_hit(sim.count_a(), sim.unanimous_state().is_some()) {
                break self.rule_verdict(sim, n);
            }
            if sim.steps() >= self.max_steps {
                break Verdict::MaxSteps;
            }
            let target = self
                .max_steps
                .min(next_sample)
                .min(next_silence)
                .min(next_fault);
            let report = chunk(sim, rng, stop.with_max_steps(target));
            observer.on_chunk(&SimView::of(sim), &report);
            if sim.steps() >= next_sample {
                next_sample = sim
                    .steps()
                    .saturating_add(cadence.expect("finite next_sample implies a cadence"));
            }
            match report.reason {
                StopReason::Predicate => break self.rule_verdict(sim, n),
                StopReason::Silent => {
                    break match self.rule {
                        ConvergenceRule::Silence => silent_verdict(sim, n),
                        // The rule was checked before the chunk and did not
                        // hold, and it never will: the configuration can no
                        // longer change.
                        _ => Verdict::Stuck,
                    };
                }
                // A checkpoint, not necessarily the global budget: loop back
                // to re-evaluate the rule / silence / sampling state.
                StopReason::StepBudget => {}
            }
        };
        observer.on_event(&SimView::of(sim), &DriverEvent::Finished(verdict));
        RunOutcome {
            steps: sim.steps(),
            parallel_time: crate::time::parallel_time(sim.steps(), n),
            verdict,
        }
    }

    /// The verdict once the rule's [`StopCondition`] predicate holds.
    fn rule_verdict<S: Simulator + ?Sized>(&self, sim: &S, n: u64) -> Verdict {
        match self.rule {
            ConvergenceRule::OutputConsensus => {
                if sim.count_a() == n {
                    Verdict::Consensus(Opinion::A)
                } else {
                    Verdict::Consensus(Opinion::B)
                }
            }
            ConvergenceRule::StateConsensus => {
                let state = sim
                    .unanimous_state()
                    .expect("unanimity predicate hit without a unanimous state");
                Verdict::Consensus(sim.state_output(state))
            }
            ConvergenceRule::OutputCount { opinion, .. } => Verdict::Consensus(opinion),
            // Silence has no predicate; it resolves via the silence
            // checkpoint, never here.
            ConvergenceRule::Silence => silent_verdict(sim, n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::{CountSim, JumpSim};
    use crate::protocol::tests_support::{Annihilate, Voter};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Records every callback for assertion.
    #[derive(Default)]
    struct Log {
        cadence: Option<u64>,
        chunk_steps: Vec<u64>,
        events: Vec<(u64, DriverEvent)>,
    }

    impl Observer for Log {
        fn cadence(&self) -> Option<u64> {
            self.cadence
        }
        fn on_chunk(&mut self, view: &SimView<'_>, _report: &AdvanceReport) {
            self.chunk_steps.push(view.steps);
        }
        fn on_event(&mut self, view: &SimView<'_>, event: &DriverEvent) {
            self.events.push((view.steps, *event));
        }
    }

    #[test]
    fn run_and_run_dyn_are_bit_identical() {
        for seed in 0..5u64 {
            let mut a = CountSim::new(Voter, Config::from_input(&Voter, 30, 20));
            let mut b = a.clone();
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let driver = Driver::new(ConvergenceRule::OutputConsensus);
            let out_a = driver.run(&mut a, &mut rng_a, &mut NullObserver);
            let out_b = driver.run_dyn(&mut b, &mut rng_b, &mut NullObserver);
            assert_eq!(out_a, out_b);
            assert_eq!(a.counts(), b.counts());
        }
    }

    #[test]
    fn observer_sees_start_finish_and_cadenced_chunks() {
        let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 40, 40));
        let mut rng = SmallRng::seed_from_u64(9);
        let mut log = Log {
            cadence: Some(10),
            ..Log::default()
        };
        let out = Driver::new(ConvergenceRule::OutputConsensus)
            .with_max_steps(35)
            .run(&mut sim, &mut rng, &mut log);
        assert_eq!(log.events.first(), Some(&(0, DriverEvent::Started)));
        assert_eq!(
            log.events.last(),
            Some(&(out.steps, DriverEvent::Finished(out.verdict)))
        );
        // CountSim lands exactly on each 10-step boundary, then the budget.
        assert_eq!(log.chunk_steps, vec![10, 20, 30, 35]);
        assert_eq!(out.verdict, Verdict::MaxSteps);
    }

    #[test]
    fn silence_cadence_is_respected() {
        // Annihilate reaches silence; the default cadence (n) must find it.
        let mut sim = JumpSim::new(Annihilate, Config::from_input(&Annihilate, 9, 7));
        let mut rng = SmallRng::seed_from_u64(3);
        let out = Driver::new(ConvergenceRule::Silence).run(&mut sim, &mut rng, &mut NullObserver);
        assert_eq!(out.verdict, Verdict::Consensus(Opinion::A));
        assert!(sim.config_is_silent());
    }

    #[test]
    fn unsatisfiable_output_count_hits_the_budget() {
        // Demanding more B agents than exist must not underflow or stop
        // early — the run exhausts its budget (or dies silent).
        let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 6, 4));
        let mut rng = SmallRng::seed_from_u64(1);
        let out = Driver::new(ConvergenceRule::OutputCount {
            opinion: Opinion::B,
            count: 99,
        })
        .with_max_steps(50)
        .run(&mut sim, &mut rng, &mut NullObserver);
        assert_eq!(out.verdict, Verdict::MaxSteps);
    }
}
