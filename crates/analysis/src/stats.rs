//! Summary statistics and scaling-law fits.

use std::fmt;

/// Summary statistics of a sample.
///
/// A `Summary` retains its full sample (sorted into the IEEE 754 total
/// order), which makes it a *mergeable* aggregate: [`Summary::merge`] is an
/// exact monoid operation with [`Summary::empty`] as the identity. Because
/// every derived statistic is recomputed as a pure function of the
/// canonically sorted multiset, merging is associative and order-independent
/// down to the last bit — the property the parallel trial harness relies on
/// to make sharded aggregation indistinguishable from serial aggregation.
///
/// # Example
///
/// ```
/// use avc_analysis::stats::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.median, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
///
/// let left = Summary::from_samples(&[1.0, 3.0]);
/// let right = Summary::from_samples(&[4.0, 2.0]);
/// assert_eq!(left.merge(&right), s);
/// assert_eq!(right.merge(&left), s);
/// assert_eq!(Summary::empty().merge(&s), s);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (mean of central pair for even sizes).
    pub median: f64,
    /// The sample itself, sorted by `f64::total_cmp`. The total order (not
    /// `partial_cmp`) keeps the representation canonical even for −0.0 vs
    /// 0.0, so equal multisets always have bit-identical layouts.
    samples: Vec<f64>,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        assert!(samples.iter().all(|x| !x.is_nan()), "sample contains NaN");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary::from_sorted(sorted)
    }

    /// The identity of [`Summary::merge`]: a summary of zero samples.
    ///
    /// All statistics of an empty summary read as 0.
    #[must_use]
    pub fn empty() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            median: 0.0,
            samples: Vec::new(),
        }
    }

    /// Computes all statistics from an already-canonically-sorted sample.
    fn from_sorted(sorted: Vec<f64>) -> Summary {
        let count = sorted.len();
        if count == 0 {
            return Summary::empty();
        }
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
            samples: sorted,
        }
    }

    /// Merges two summaries into the summary of the combined sample.
    ///
    /// Exact, not approximate: the underlying sorted multisets are merged
    /// and every statistic recomputed, so
    /// `a.merge(&b) == Summary::from_samples(concat(a, b))` bit for bit.
    /// The operation is associative and commutative with [`Summary::empty`]
    /// as identity, which lets parallel workers aggregate partial batches in
    /// any order.
    #[must_use]
    pub fn merge(&self, other: &Summary) -> Summary {
        let (a, b) = (&self.samples, &other.samples);
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].total_cmp(&b[j]).is_le() {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        Summary::from_sorted(merged)
    }

    /// The retained sample, sorted ascending (IEEE 754 total order).
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The `q`-th quantile of the retained sample (linear interpolation, as
    /// [`quantile`]).
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty or `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "cannot take a quantile of nothing");
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        quantile_of_sorted(&self.samples, q)
    }

    /// Standard error of the mean (0 for an empty summary).
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.std_dev / (self.count as f64).sqrt()
    }

    /// A normal-approximation 95% confidence interval for the mean.
    ///
    /// Adequate for the experiment sample sizes in this repository
    /// (≥ 15 runs); for tiny samples prefer reporting the raw range.
    #[must_use]
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error();
        (self.mean - half, self.mean + half)
    }
}

/// The `q`-th quantile of a sample (linear interpolation between order
/// statistics, the default of most statistics packages).
///
/// # Panics
///
/// Panics if `samples` is empty, contains NaN, or `q` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use avc_analysis::stats::quantile;
/// let data = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(quantile(&data, 0.0), 1.0);
/// assert_eq!(quantile(&data, 0.5), 3.0);
/// assert_eq!(quantile(&data, 1.0), 5.0);
/// assert_eq!(quantile(&data, 0.25), 2.0);
/// ```
#[must_use]
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "cannot take a quantile of nothing");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    assert!(samples.iter().all(|x| !x.is_nan()), "sample contains NaN");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_of_sorted(&sorted, q)
}

/// Shared quantile core over an already-sorted sample.
fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.4} ± {:.4} (n={}, median {:.4}, range [{:.4}, {:.4}])",
            self.mean,
            self.std_error(),
            self.count,
            self.median,
            self.min,
            self.max
        )
    }
}

/// Ordinary least-squares fit `y = slope·x + intercept`.
///
/// # Panics
///
/// Panics if the inputs differ in length, have fewer than two points, or
/// have zero variance in `x`.
///
/// # Example
///
/// ```
/// use avc_analysis::stats::linear_fit;
/// let (slope, intercept) = linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]);
/// assert!((slope - 2.0).abs() < 1e-12);
/// assert!((intercept - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    assert!(sxx > 0.0, "x has zero variance");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

/// The log–log slope of `ys` against `xs` — the empirical scaling exponent
/// `α` in `y ≈ c·x^α`. Used to validate the paper's `Θ(1/ε)` and
/// `Θ(log n)` lower-bound shapes.
///
/// # Panics
///
/// Panics if any input is non-positive, or under the same conditions as
/// [`linear_fit`].
#[must_use]
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0),
        "log-log fit needs positive data"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    linear_fit(&lx, &ly).0
}

/// The fraction of `values` satisfying a predicate.
///
/// # Example
///
/// ```
/// use avc_analysis::stats::fraction;
/// assert_eq!(fraction(&[1, 2, 3, 4], |&x| x % 2 == 0), 0.5);
/// ```
pub fn fraction<T>(values: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|v| pred(v)).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::from_samples(&[5.0; 7]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::from_samples(&[3.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn summary_median_even_size() {
        let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_std_dev_known_value() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // Bessel-corrected variance of this classic sample is 32/7.
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        let _ = Summary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn loglog_slope_recovers_power_law() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.7)).collect();
        assert!((loglog_slope(&xs, &ys) - 1.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn loglog_rejects_nonpositive() {
        let _ = loglog_slope(&[1.0, 0.0], &[1.0, 2.0]);
    }

    #[test]
    fn fraction_counts() {
        assert_eq!(fraction::<u32>(&[], |_| true), 0.0);
        assert_eq!(fraction(&[1, 1, 2], |&x| x == 1), 2.0 / 3.0);
    }

    #[test]
    fn ci95_brackets_the_mean() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let (lo, hi) = s.ci95();
        assert!(lo < s.mean && s.mean < hi);
        assert!((hi - s.mean - 1.96 * s.std_error()).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&data, 0.5), 25.0);
        assert!((quantile(&data, 1.0 / 3.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::from_samples(&[1.0, 2.0]);
        let text = s.to_string();
        assert!(text.contains("mean 1.5"));
        assert!(text.contains("n=2"));
    }

    /// Bit-level equality: strict even for −0.0 vs 0.0, unlike `==`.
    fn bits_equal(a: &Summary, b: &Summary) -> bool {
        a.count == b.count
            && a.mean.to_bits() == b.mean.to_bits()
            && a.std_dev.to_bits() == b.std_dev.to_bits()
            && a.min.to_bits() == b.min.to_bits()
            && a.max.to_bits() == b.max.to_bits()
            && a.median.to_bits() == b.median.to_bits()
            && a.samples.len() == b.samples.len()
            && a.samples
                .iter()
                .zip(&b.samples)
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn merge_equals_whole_sample_summary() {
        let all = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let whole = Summary::from_samples(&all);
        let merged = Summary::from_samples(&all[..3]).merge(&Summary::from_samples(&all[3..]));
        assert!(bits_equal(&whole, &merged));
    }

    #[test]
    fn merge_is_commutative_and_has_identity() {
        let a = Summary::from_samples(&[1.0, -0.0, 2.5]);
        let b = Summary::from_samples(&[0.0, 7.0]);
        assert!(bits_equal(&a.merge(&b), &b.merge(&a)));
        assert!(bits_equal(&Summary::empty().merge(&a), &a));
        assert!(bits_equal(&a.merge(&Summary::empty()), &a));
    }

    #[test]
    fn merge_is_associative() {
        let a = Summary::from_samples(&[5.0, 1.0]);
        let b = Summary::from_samples(&[2.0]);
        let c = Summary::from_samples(&[9.0, 0.5, 3.0]);
        assert!(bits_equal(&a.merge(&b).merge(&c), &a.merge(&b.merge(&c))));
    }

    #[test]
    fn empty_summary_reads_as_zero() {
        let e = Summary::empty();
        assert_eq!(e.count, 0);
        assert_eq!(e.std_error(), 0.0);
        assert!(e.samples().is_empty());
    }

    #[test]
    fn summary_quantile_matches_free_function() {
        let data = [10.0, 20.0, 30.0, 40.0];
        let s = Summary::from_samples(&data);
        assert_eq!(s.quantile(0.5), quantile(&data, 0.5));
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(1.0), 40.0);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn summary_quantile_rejects_empty() {
        let _ = Summary::empty().quantile(0.5);
    }
}
