//! Trajectory recording: sampled time series of configuration statistics.
//!
//! The paper's analysis (§4) reasons about the *trajectory* of derived
//! quantities — the maximum weight per sign, the number of strong /
//! intermediate / weak nodes — not just the convergence time. This module
//! drives any [`ChunkedSimulator`] while sampling a user probe at a fixed step
//! cadence, producing the data behind the dynamics experiments.

use crate::driver::{Driver, DriverEvent, Observer, SimView};
use crate::engine::{AdvanceReport, ChunkedSimulator};
use crate::spec::{ConvergenceRule, RunOutcome};
use rand::RngCore;

/// One sampled point of a trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Scheduler steps elapsed at the sample.
    pub steps: u64,
    /// `steps / n`.
    pub parallel_time: f64,
    /// Values returned by the probe, one per probed statistic.
    pub values: Vec<f64>,
}

/// A recorded trajectory: the probe's statistic names plus the samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Names of the probed statistics (column headers).
    pub names: Vec<String>,
    /// Samples in step order (first sample at step 0).
    pub samples: Vec<Sample>,
    /// How the underlying run ended.
    pub outcome: RunOutcome,
}

impl Trace {
    /// The time series of statistic `index` as `(parallel_time, value)`
    /// pairs.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn series(&self, index: usize) -> Vec<(f64, f64)> {
        assert!(index < self.names.len(), "statistic index out of range");
        self.samples
            .iter()
            .map(|s| (s.parallel_time, s.values[index]))
            .collect()
    }
}

/// The recording [`Observer`]: samples the probe on the driver's cadence
/// and always captures the terminal configuration exactly once.
struct Recorder<'n, F> {
    cadence: u64,
    names: &'n [String],
    probe: F,
    samples: Vec<Sample>,
    next_sample: u64,
}

impl<F: FnMut(&[u64]) -> Vec<f64>> Recorder<'_, F> {
    fn take(&mut self, view: &SimView<'_>) {
        let values = (self.probe)(view.counts);
        assert_eq!(values.len(), self.names.len(), "probe arity mismatch");
        self.samples.push(Sample {
            steps: view.steps,
            parallel_time: view.parallel_time(),
            values,
        });
    }

    fn take_if_due(&mut self, view: &SimView<'_>) {
        if view.steps >= self.next_sample {
            self.take(view);
            self.next_sample = view.steps.saturating_add(self.cadence);
        }
    }
}

impl<F: FnMut(&[u64]) -> Vec<f64>> Observer for Recorder<'_, F> {
    fn cadence(&self) -> Option<u64> {
        Some(self.cadence)
    }

    fn on_chunk(&mut self, view: &SimView<'_>, _report: &AdvanceReport) {
        self.take_if_due(view);
    }

    fn on_event(&mut self, view: &SimView<'_>, event: &DriverEvent) {
        match event {
            DriverEvent::Started => self.take_if_due(view),
            // Always include the terminal configuration (deduplicated
            // against a cadence sample landing on the same step).
            DriverEvent::Finished(_) => {
                if self.samples.last().map(|s| s.steps) != Some(view.steps) {
                    self.take(view);
                }
            }
            // Injections surface through the cadence samples around them;
            // the trace records configurations, not causes.
            DriverEvent::Fault(_) => {}
        }
    }
}

/// Drives `sim` to convergence under `rule`, sampling `probe(counts)` every
/// `cadence` steps (and at step 0 and at the final configuration).
///
/// The probe receives the species counts and returns one value per
/// statistic named in `names`. The stepping is owned by
/// [`Driver`]; this function just plugs in a recording observer
/// (with a per-step silence cadence, so [`ConvergenceRule::Silence`] is
/// checked before every advance exactly as a sampled trace expects).
///
/// # Panics
///
/// Panics if `cadence` is zero or the probe returns a vector of the wrong
/// length.
pub fn record<S, R>(
    sim: &mut S,
    rng: &mut R,
    cadence: u64,
    max_steps: u64,
    rule: ConvergenceRule,
    names: Vec<String>,
    probe: impl FnMut(&[u64]) -> Vec<f64>,
) -> Trace
where
    S: ChunkedSimulator + ?Sized,
    R: RngCore + ?Sized,
{
    assert!(cadence > 0, "cadence must be positive");
    let mut recorder = Recorder {
        cadence,
        names: &names,
        probe,
        samples: Vec::new(),
        next_sample: sim.steps(),
    };
    let outcome = Driver::new(rule)
        .with_max_steps(max_steps)
        .check_silence_every(1)
        .run(sim, rng, &mut recorder);
    let samples = recorder.samples;
    Trace {
        names,
        samples,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::CountSim;
    use crate::protocol::tests_support::Voter;
    use crate::protocol::Opinion;
    use crate::spec::Verdict;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn record_voter(cadence: u64) -> Trace {
        let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 30, 10));
        let mut rng = SmallRng::seed_from_u64(4);
        record(
            &mut sim,
            &mut rng,
            cadence,
            u64::MAX,
            ConvergenceRule::OutputConsensus,
            vec!["count_a".to_string()],
            |counts| vec![counts[0] as f64],
        )
    }

    #[test]
    fn trace_starts_at_zero_and_ends_at_terminal() {
        let trace = record_voter(10);
        assert_eq!(trace.samples.first().unwrap().steps, 0);
        assert_eq!(
            trace.samples.last().unwrap().steps,
            trace.outcome.steps,
            "last sample must be the terminal configuration"
        );
        assert!(trace.outcome.verdict.is_consensus());
        // First sample sees the initial counts.
        assert_eq!(trace.samples[0].values[0], 30.0);
        // Terminal sample is absorbed: all 40 or none.
        let last = trace.samples.last().unwrap().values[0];
        assert!(last == 40.0 || last == 0.0);
    }

    #[test]
    fn cadence_controls_sample_density() {
        let sparse = record_voter(1_000_000);
        assert!(sparse.samples.len() <= 3);
        let dense = record_voter(5);
        assert!(dense.samples.len() >= sparse.samples.len());
        // Samples are strictly increasing in steps.
        for pair in dense.samples.windows(2) {
            assert!(pair[0].steps < pair[1].steps);
        }
    }

    #[test]
    fn series_extracts_columns() {
        let trace = record_voter(10);
        let series = trace.series(0);
        assert_eq!(series.len(), trace.samples.len());
        assert_eq!(series[0], (0.0, 30.0));
    }

    #[test]
    fn already_converged_config_yields_a_single_sample() {
        // All agents share the majority opinion from step 0: the run ends
        // before any interaction, and the step-0 sample doubles as the
        // terminal one (no duplicate).
        let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 7, 0));
        let mut rng = SmallRng::seed_from_u64(2);
        let trace = record(
            &mut sim,
            &mut rng,
            10,
            u64::MAX,
            ConvergenceRule::OutputConsensus,
            vec!["count_a".to_string()],
            |counts| vec![counts[0] as f64],
        );
        assert_eq!(trace.samples.len(), 1);
        assert_eq!(trace.samples[0].steps, 0);
        assert_eq!(trace.outcome.steps, 0);
        assert_eq!(trace.outcome.parallel_time, 0.0);
        assert_eq!(trace.outcome.verdict, Verdict::Consensus(Opinion::A));
    }

    #[test]
    fn max_steps_truncation_keeps_samples_strictly_increasing() {
        // Truncate both on and off the sampling cadence; the terminal
        // configuration must appear exactly once either way.
        for (cadence, max_steps) in [(5u64, 10u64), (4, 10), (10, 7)] {
            let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 50, 50));
            let mut rng = SmallRng::seed_from_u64(8);
            let trace = record(
                &mut sim,
                &mut rng,
                cadence,
                max_steps,
                ConvergenceRule::OutputConsensus,
                vec!["count_a".to_string()],
                |counts| vec![counts[0] as f64],
            );
            assert_eq!(trace.outcome.verdict, Verdict::MaxSteps);
            assert_eq!(trace.outcome.steps, max_steps);
            assert_eq!(trace.samples.last().unwrap().steps, max_steps);
            for pair in trace.samples.windows(2) {
                assert!(
                    pair[0].steps < pair[1].steps,
                    "duplicate sample at cadence={cadence}, max_steps={max_steps}"
                );
            }
        }
    }

    #[test]
    fn silent_config_under_unreachable_rule_is_stuck() {
        // All-A voter population is silent; a rule waiting for a lone B
        // agent can never hold. The jump engine reports the dead end and
        // the trace must surface it as `Stuck` instead of spinning.
        let mut sim = crate::engine::JumpSim::new(Voter, Config::from_input(&Voter, 5, 0));
        let mut rng = SmallRng::seed_from_u64(6);
        let trace = record(
            &mut sim,
            &mut rng,
            3,
            u64::MAX,
            ConvergenceRule::OutputCount {
                opinion: Opinion::B,
                count: 1,
            },
            vec!["count_a".to_string()],
            |counts| vec![counts[0] as f64],
        );
        assert_eq!(trace.outcome.verdict, Verdict::Stuck);
        assert_eq!(trace.samples.len(), 1, "no steps ever ran");
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn rejects_zero_cadence() {
        let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 3, 2));
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = record(
            &mut sim,
            &mut rng,
            0,
            10,
            ConvergenceRule::OutputConsensus,
            vec![],
            |_| vec![],
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_probe_arity_mismatch() {
        let mut sim = CountSim::new(Voter, Config::from_input(&Voter, 3, 2));
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = record(
            &mut sim,
            &mut rng,
            1,
            10,
            ConvergenceRule::OutputConsensus,
            vec!["a".into(), "b".into()],
            |_| vec![1.0],
        );
    }
}
