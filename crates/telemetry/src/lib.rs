//! Low-overhead metrics and run telemetry for the AVC simulation stack.
//!
//! The crate is std-only and dependency-free: it sits *below*
//! `avc-population` in the workspace graph so the engines can carry a
//! monomorphized [`Sink`] seam without pulling anything into
//! their hot loops. It provides four layers:
//!
//! * **Cells** ([`metrics`]): lock-free `AtomicU64` counters, gauges, and
//!   fixed-bucket log₂-scale histograms, each with a plain mergeable
//!   snapshot form.
//! * **Registry** ([`registry`]): named metrics with deterministic
//!   (`BTreeMap`) snapshot ordering, mergeable across trial workers exactly
//!   like the analysis crate's `Summary` monoid.
//! * **Instrumentation** ([`sink`], [`span`]): the `Sink` trait engines are
//!   generic over — [`NoopSink`] compiles to nothing, the
//!   default everywhere — and a [`Span`] wall-clock timer for
//!   phase/chunk/cell timing.
//! * **Export** ([`export`]): a JSONL event stream with the store's
//!   atomic write-temp-then-rename discipline and torn-tail-tolerant
//!   loading, plus the Prometheus text exposition format.
//!
//! # Determinism contract
//!
//! Telemetry separates *simulation-derived* values (steps, events, silent
//! fractions, convergence histograms — identical for a fixed seed at any
//! worker count) from *wall-clock* values (durations, throughput — never
//! comparable across runs). [`cell::CellTelemetry`] keeps the two in
//! distinct registries so exports can byte-compare the deterministic half;
//! `tests/telemetry_stream.rs` in `avc-store` pins `--threads 1` vs
//! `--threads 4` byte-identity on exactly that split.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod export;
pub mod metrics;
pub mod registry;
pub mod sink;
pub mod span;

pub use cell::{wall_suppressed, CellTelemetry};
pub use metrics::{Counter, Gauge, HistogramSnapshot, LogHistogram};
pub use registry::{MetricValue, Registry, RegistrySnapshot};
pub use sink::{CountingSink, NoopSink, Sink};
pub use span::Span;
