//! A tiny `--key value` argument parser for the experiment binaries.
//!
//! Kept dependency-free on purpose: the binaries need only a handful of
//! numeric overrides (`--runs`, `--seed`, `--n`) and boolean flags
//! (`--quick`), not a full CLI framework.

use crate::harness::Parallelism;
use std::collections::{HashMap, HashSet};

/// Parsed command-line arguments: `--key value` pairs and bare `--flag`s.
///
/// # Example
///
/// ```
/// use avc_analysis::cli::Args;
///
/// let args = Args::parse(["--runs", "7", "--quick"].iter().map(|s| s.to_string()));
/// assert_eq!(args.get_u64("runs", 101), 7);
/// assert!(args.flag("quick"));
/// assert_eq!(args.get_u64("seed", 0), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: HashSet<String>,
}

impl Args {
    /// Parses the process's arguments (skipping `argv[0]`).
    #[must_use]
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }

    /// Parses the process's arguments, splitting off leading positional
    /// tokens (subcommand words) before the first `--flag`.
    #[must_use]
    pub fn from_env_with_positionals() -> (Vec<String>, Args) {
        Args::parse_with_positionals(std::env::args().skip(1))
    }

    /// As [`Args::parse`], but tokens before the first `--key` are returned
    /// as positional arguments instead of panicking — the shape of a
    /// subcommand CLI (`avc sweep fig3 --runs 4`).
    ///
    /// # Panics
    ///
    /// Panics on a positional token *after* flag parsing has begun that is
    /// not consumed as a `--key value` value (same typo-fail-fast behavior
    /// as [`Args::parse`]).
    pub fn parse_with_positionals(tokens: impl IntoIterator<Item = String>) -> (Vec<String>, Args) {
        let mut tokens = tokens.into_iter().peekable();
        let mut positionals = Vec::new();
        while let Some(token) = tokens.peek() {
            if token.starts_with("--") {
                break;
            }
            positionals.push(tokens.next().expect("peeked"));
        }
        (positionals, Args::parse(tokens))
    }

    /// Parses an explicit token stream.
    ///
    /// A token `--key` followed by a non-`--` token is a key/value pair;
    /// a `--key` followed by another `--key` (or the end) is a flag.
    ///
    /// # Panics
    ///
    /// Panics on a token that does not start with `--` and is not consumed
    /// as a value (to fail fast on typos in experiment invocations).
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Args {
        let mut args = Args::default();
        let mut pending: Option<String> = None;
        for token in tokens {
            if let Some(stripped) = token.strip_prefix("--") {
                if let Some(flag) = pending.take() {
                    args.flags.insert(flag);
                }
                pending = Some(stripped.to_string());
            } else if let Some(key) = pending.take() {
                args.values.insert(key, token);
            } else {
                panic!("unexpected positional argument `{token}`");
            }
        }
        if let Some(flag) = pending {
            args.flags.insert(flag);
        }
        args
    }

    /// Whether `--name` was passed as a bare flag.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// The value of `--name`, if given.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// `--name` parsed as `u64`, or `default`.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but not a valid `u64`.
    #[must_use]
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects an integer, got `{v}`"))
            })
            .unwrap_or(default)
    }

    /// `--name` parsed as `f64`, or `default`.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but not a valid `f64`.
    #[must_use]
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects a number, got `{v}`"))
            })
            .unwrap_or(default)
    }

    /// The [`Parallelism`] requested via `--serial` or `--threads N`
    /// (default: [`Parallelism::Auto`]).
    ///
    /// # Panics
    ///
    /// Panics if both `--serial` and `--threads` are given, or on
    /// `--threads 0` / a non-integer thread count.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        let threads = self.get("threads").map(|v| {
            v.parse::<usize>()
                .unwrap_or_else(|_| panic!("--threads expects an integer, got `{v}`"))
        });
        match (self.flag("serial"), threads) {
            (true, Some(_)) => panic!("--serial and --threads are mutually exclusive"),
            (true, None) => Parallelism::Serial,
            (false, Some(n)) => {
                assert!(n >= 1, "--threads needs at least one worker");
                Parallelism::Threads(n)
            }
            (false, None) => Parallelism::Auto,
        }
    }

    /// `--name` as a comma-separated `u64` list, or `default`.
    ///
    /// # Panics
    ///
    /// Panics if any element fails to parse.
    #[must_use]
    pub fn get_u64_list(&self, name: &str, default: &[u64]) -> Vec<u64> {
        match self.get(name) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{name} expects integers, got `{x}`"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn key_value_pairs_and_flags() {
        let a = parse(&["--runs", "5", "--quick", "--seed", "9"]);
        assert_eq!(a.get_u64("runs", 0), 5);
        assert_eq!(a.get_u64("seed", 0), 9);
        assert!(a.flag("quick"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["--quick"]);
        assert!(a.flag("quick"));
    }

    #[test]
    fn float_and_list_values() {
        let a = parse(&["--eps", "0.5", "--ns", "11,101, 1001"]);
        assert_eq!(a.get_f64("eps", 0.0), 0.5);
        assert_eq!(a.get_u64_list("ns", &[1]), vec![11, 101, 1001]);
        assert_eq!(a.get_u64_list("other", &[1, 2]), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn rejects_positional() {
        let _ = parse(&["oops"]);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn rejects_bad_integer() {
        let a = parse(&["--runs", "many"]);
        let _ = a.get_u64("runs", 0);
    }

    #[test]
    fn parallelism_defaults_to_auto() {
        assert_eq!(parse(&[]).parallelism(), Parallelism::Auto);
        assert_eq!(parse(&["--serial"]).parallelism(), Parallelism::Serial);
        assert_eq!(
            parse(&["--threads", "4"]).parallelism(),
            Parallelism::Threads(4)
        );
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn parallelism_rejects_conflicting_flags() {
        let _ = parse(&["--serial", "--threads", "2"]).parallelism();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn parallelism_rejects_zero_threads() {
        let _ = parse(&["--threads", "0"]).parallelism();
    }
}
