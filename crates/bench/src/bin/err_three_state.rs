//! Regenerates the **three-state error law** behind Figure 3 (right):
//! empirical error fraction vs the \[PVV09] bound `exp(−D((1+ε)/2‖1/2)·n)`.
//!
//! Usage: `cargo run --release -p avc-bench --bin err_three_state [--quick]
//! [--runs N] [--seed N] [--serial | --threads N] [--progress] [--out DIR]`

use avc_analysis::cli::Args;
use avc_analysis::experiments::{report, three_state_error};

fn main() {
    let args = Args::from_env();
    let mut config = if args.flag("quick") {
        three_state_error::Config::quick()
    } else {
        three_state_error::Config::default()
    };
    config.runs = args.get_u64("runs", config.runs);
    config.seed = args.get_u64("seed", config.seed);
    config.ns = args.get_u64_list("ns", &config.ns);
    config.parallelism = args.parallelism();

    avc_bench::banner(
        "Ablation Abl-3 (three-state error probability)",
        &format!(
            "error fraction vs KL bound, n in {:?}, {} runs per point",
            config.ns, config.runs
        ),
    );

    let stats = avc_bench::collector(&args);
    let points = three_state_error::run_with_stats(&config, &stats);
    let out = avc_bench::out_dir(&args);
    report(&three_state_error::table(&points), &out, "err_three_state");
    println!("throughput: {}", stats.snapshot());
}
