//! Weighted categorical sampling backed by a Fenwick (binary indexed) tree.
//!
//! The count-based engines need to repeatedly draw a state index with
//! probability proportional to its agent count, under counts that change by
//! ±1 after every interaction. A Fenwick tree supports both the point update
//! and the inverse-CDF draw in `O(log s)`.

use rand::Rng;

/// A dynamic categorical distribution over `0..len` with `u64` weights.
///
/// # Example
///
/// ```
/// use avc_population::sampler::FenwickSampler;
/// use rand::SeedableRng;
///
/// let mut sampler = FenwickSampler::from_weights(&[2, 0, 3]);
/// assert_eq!(sampler.total(), 5);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let i = sampler.sample(&mut rng).unwrap();
/// assert!(i == 0 || i == 2);
/// sampler.add(0, -2);
/// assert_eq!(sampler.weight(0), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FenwickSampler {
    /// `tree[i]` holds the sum of a block of weights ending at index `i`
    /// (1-based Fenwick layout; `tree[0]` is unused).
    tree: Vec<u64>,
    len: usize,
    total: u64,
    /// Largest power of two `≤ len`, used for the O(log s) inverse-CDF walk.
    top_bit: usize,
}

impl FenwickSampler {
    /// Creates a sampler over `len` categories, all with weight zero.
    #[must_use]
    pub fn new(len: usize) -> FenwickSampler {
        let top_bit = if len == 0 {
            0
        } else {
            usize::BITS as usize - 1 - len.leading_zeros() as usize
        };
        FenwickSampler {
            tree: vec![0; len + 1],
            len,
            total: 0,
            top_bit: 1 << top_bit,
        }
    }

    /// Creates a sampler initialized with the given weights.
    #[must_use]
    pub fn from_weights(weights: &[u64]) -> FenwickSampler {
        let mut sampler = FenwickSampler::new(weights.len());
        // O(len) bulk build: accumulate each leaf into its parent block.
        for (i, &w) in weights.iter().enumerate() {
            sampler.tree[i + 1] += w;
            let parent = (i + 1) + ((i + 1) & (i + 1).wrapping_neg());
            if parent <= weights.len() {
                let v = sampler.tree[i + 1];
                sampler.tree[parent] += v;
            }
            sampler.total += w;
        }
        sampler
    }

    /// Number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sampler has zero categories.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all weights.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds `delta` to the weight of category `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the weight would underflow.
    pub fn add(&mut self, index: usize, delta: i64) {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        if delta >= 0 {
            let d = delta as u64;
            self.total += d;
            let mut i = index + 1;
            while i <= self.len {
                self.tree[i] += d;
                i += i & i.wrapping_neg();
            }
        } else {
            let d = delta.unsigned_abs();
            assert!(self.weight(index) >= d, "weight underflow at index {index}");
            self.total -= d;
            let mut i = index + 1;
            while i <= self.len {
                self.tree[i] -= d;
                i += i & i.wrapping_neg();
            }
        }
    }

    /// Current weight of category `index`.
    #[must_use]
    pub fn weight(&self, index: usize) -> u64 {
        self.prefix_sum(index + 1) - self.prefix_sum(index)
    }

    /// Sum of weights of categories `0..end`.
    #[must_use]
    pub fn prefix_sum(&self, end: usize) -> u64 {
        let mut i = end.min(self.len);
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Finds the smallest index whose prefix-inclusive cumulative weight
    /// exceeds `target` (i.e. the inverse CDF at `target`).
    ///
    /// # Panics
    ///
    /// Panics if `target >= total()`.
    #[must_use]
    pub fn select(&self, mut target: u64) -> usize {
        assert!(target < self.total, "select target beyond total weight");
        let mut pos = 0;
        let mut step = self.top_bit;
        while step > 0 {
            let next = pos + step;
            if next <= self.len && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // 0-based index of the selected category
    }

    /// Draws a category with probability proportional to its weight.
    ///
    /// Returns `None` if the total weight is zero.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        Some(self.select(rng.gen_range(0..self.total)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn build_matches_incremental() {
        let weights = [3u64, 0, 7, 1, 0, 0, 5, 2, 9];
        let bulk = FenwickSampler::from_weights(&weights);
        let mut inc = FenwickSampler::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            inc.add(i, w as i64);
        }
        assert_eq!(bulk.total(), inc.total());
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(bulk.weight(i), w);
            assert_eq!(inc.weight(i), w);
            assert_eq!(bulk.prefix_sum(i), inc.prefix_sum(i));
        }
    }

    #[test]
    fn select_walks_cdf_boundaries() {
        let s = FenwickSampler::from_weights(&[2, 0, 3, 1]);
        assert_eq!(s.select(0), 0);
        assert_eq!(s.select(1), 0);
        assert_eq!(s.select(2), 2);
        assert_eq!(s.select(4), 2);
        assert_eq!(s.select(5), 3);
    }

    #[test]
    #[should_panic(expected = "beyond total")]
    fn select_rejects_out_of_range_target() {
        let s = FenwickSampler::from_weights(&[1, 1]);
        let _ = s.select(2);
    }

    #[test]
    fn add_and_remove_roundtrips() {
        let mut s = FenwickSampler::from_weights(&[5, 5, 5]);
        s.add(1, -5);
        assert_eq!(s.weight(1), 0);
        assert_eq!(s.total(), 10);
        s.add(1, 2);
        assert_eq!(s.weight(1), 2);
        assert_eq!(s.total(), 12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn add_rejects_underflow() {
        let mut s = FenwickSampler::from_weights(&[1]);
        s.add(0, -2);
    }

    #[test]
    fn sample_respects_zero_weights() {
        let s = FenwickSampler::from_weights(&[0, 4, 0]);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), Some(1));
        }
    }

    #[test]
    fn sample_none_when_empty_weight() {
        let s = FenwickSampler::from_weights(&[0, 0]);
        let mut rng = SmallRng::seed_from_u64(42);
        assert_eq!(s.sample(&mut rng), None);
    }

    #[test]
    fn sample_frequencies_roughly_proportional() {
        let s = FenwickSampler::from_weights(&[1, 3, 6]);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hits = [0u64; 3];
        let trials = 100_000;
        for _ in 0..trials {
            hits[s.sample(&mut rng).unwrap()] += 1;
        }
        // Expected proportions 0.1 / 0.3 / 0.6 with ±2% slack.
        assert!((hits[0] as f64 / trials as f64 - 0.1).abs() < 0.02);
        assert!((hits[1] as f64 / trials as f64 - 0.3).abs() < 0.02);
        assert!((hits[2] as f64 / trials as f64 - 0.6).abs() < 0.02);
    }

    #[test]
    fn works_at_non_power_of_two_lengths() {
        for len in [1usize, 2, 3, 5, 13, 100, 1000] {
            let weights: Vec<u64> = (0..len as u64).map(|i| i % 7).collect();
            let s = FenwickSampler::from_weights(&weights);
            let total: u64 = weights.iter().sum();
            assert_eq!(s.total(), total);
            // Every boundary target selects the right category.
            let mut acc = 0;
            for (i, &w) in weights.iter().enumerate() {
                if w > 0 {
                    assert_eq!(s.select(acc), i);
                    assert_eq!(s.select(acc + w - 1), i);
                }
                acc += w;
            }
        }
    }
}
